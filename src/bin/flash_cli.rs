//! `flash_cli` — command-line front end for the library: generate
//! datasets, build indexes, persist topologies, and serve/evaluate
//! queries, all over the standard `fvecs`/`ivecs` formats.
//!
//! ```text
//! # 1. synthesize a corpus (or bring your own fvecs files)
//! flash_cli generate --profile laion-like --n 20000 --nq 200 --k 10 \
//!     --base base.fvecs --queries q.fvecs --gt gt.ivecs
//!
//! # 2. build an index and persist the topology
//! flash_cli build --base base.fvecs --method flash --c 128 --r 16 \
//!     --graph index.hfg
//!
//! # 3. serve queries from the persisted topology and score them
//! flash_cli search --base base.fvecs --graph index.hfg --method flash \
//!     --queries q.fvecs --k 10 --ef 128 --gt gt.ivecs --out results.ivecs
//! ```
//!
//! The topology file stores only adjacency (see `graphs::persist`);
//! providers are rebuilt deterministically from the base vectors and the
//! seed, so codes never need separate storage.

use hnsw_flash::prelude::*;
use hnsw_flash::serving::distributed::wire::{read_message, write_message};
use hnsw_flash::serving::distributed::{
    ErrorCode, EventConfig, EventServer, Message, NodeAddr, NodeHandler, NodeServer, RemoteIndex,
    ScrapeServer, SocketTransport, Transport,
};
use metrics::{
    collect_traces, latency_summary, trace_id_for, transport_summary, BurnConfig, Objective,
    SloGuard, SpanRing, TraceContext,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::io::{read_fvecs, read_ivecs, write_fvecs, write_ivecs};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "build" => cmd_build(&opts),
        "search" => cmd_search(&opts),
        "scenario" => cmd_scenario(&opts),
        "hotpath" => cmd_hotpath(&opts),
        "serve-node" => cmd_serve_node(&opts),
        "bench-serve" => cmd_bench_serve(&opts),
        "stats" => cmd_stats(&opts),
        "bench-diff" => cmd_bench_diff(&opts),
        "info" => cmd_info(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
flash_cli — build and serve Flash-accelerated graph ANN indexes

USAGE:
  flash_cli generate --profile <name> --n <N> --base <out.fvecs>
                     [--nq <N> --queries <out.fvecs>] [--k <K> --gt <out.ivecs>]
                     [--seed <u64>]
  flash_cli build    --base <in.fvecs> --graph <out.hfg>
                     [--method flash|hnsw|full|pq|sq|pca|opq|<graph>:<coding>]
                     [--c <C>] [--r <R>]
                     [--df <d_F>] [--mf <M_F>] [--seed <u64>]
  flash_cli search   --base <in.fvecs> --graph <in.hfg> --queries <in.fvecs>
                     [--method ...same as build...] [--k <K>] [--ef <EF>]
                     [--shards <N>] [--replicas <R>] [--routing <policy>]
                     [--nodes <addr,addr,...>] [--timeout-ms <N>]
                     [--threads <N>] [--cache-capacity <N>]
                     [--batch <N>] [--gt <in.ivecs>] [--out <out.ivecs>]
                     [--trace-out <out.jsonl>]
  flash_cli scenario --name steady_zipf|diurnal_burst|churn_lsm|fault_storm|overload
                     [--seed <u64>] [--smoke] [--out <BENCH_name.json>]
                     [--shards <N>] [--replicas <R>] [--routing <policy>]
                     [--nodes <addr,addr,...>] [--timeout-ms <N>]
                     [--cache-capacity <N>] [--threads <N>]
                     [--trace-out <out.jsonl>]
  flash_cli hotpath  [--n <N>] [--queries <N>] [--k <K>] [--ef <EF>]
                     [--c <C>] [--r <R>] [--passes <N>] [--seed <u64>]
                     [--smoke] [--out <BENCH_hotpath.json>]
  flash_cli serve-node --base <in.fvecs> --listen <addr> [--event-loop]
                     [--method ...same as build...] [--c <C>] [--r <R>]
                     [--shards <N> --shard <I>] [--threads <N>] [--seed <u64>]
                     [--metrics-addr <host:port>]
  flash_cli bench-serve [--n <N>] [--queries <N>] [--k <K>] [--ef <EF>]
                     [--clients <N>] [--pipeline <N>] [--flood <N>]
                     [--threads <N>] [--profile <name>]
                     [--method ...same as build...] [--seed <u64>]
  flash_cli stats    --node <addr> [--timeout-ms <N>] [--openmetrics]
  flash_cli bench-diff --old <a.json> --new <b.json> [--timing-ratio <F>]
  flash_cli info     --graph <in.hfg>

METHODS:  legacy HNSW shorthands: flash hnsw full pq sq pca opq
          or <graph>:<coding> with graph in {hnsw nsg taumg vamana hcnng}
          and coding in {full sq pca pq opq flash}, e.g. nsg:flash

SERVING:  --shards N > 1 partitions the base set round-robin and rebuilds
          one deterministic sub-index per shard (the persisted monolithic
          topology cannot be sliced); --replicas R > 1 builds R identical
          copies of every shard behind failover routing (--routing
          primary | round-robin | load-aware, default round-robin) and
          reports retries/mark-downs/probes; the coding codec is trained
          once and shared across all shards and replicas; --threads sets
          the worker pool size (default: shards, or shards*replicas
          capped at 8 when replicated); --cache-capacity N > 0 serves
          repeated queries from an LRU result cache

DISTRIBUTED:
          `serve-node` hosts one (shard of an) index behind a socket:
          --listen tcp:HOST:PORT or unix:/path.sock, with --shards N
          --shard I serving partition I of the round-robin split (every
          node must use the same --base, --method, and --seed). `search
          --nodes addr,addr,...` then scatter-gathers across those
          processes, one node per shard in partition order (--shards /
          --replicas / --graph do not combine with --nodes; remote
          replica placement is not wired up yet). --event-loop swaps the
          thread-per-connection server for the event-driven front-end:
          --threads readiness loops multiplex all connections, pipeline
          frames, batch adaptively, and shed past-deadline requests with
          Overloaded errors (which clients retry on a sibling).
          `bench-serve` builds a synthetic index and drills both servers
          on ephemeral ports — blocking (sequential RPC) vs event-driven
          (pipelined) QPS/p99 with a response-parity check — then floods
          the event server past its admission deadline and verifies every
          request is answered (Ok or Overloaded; none hang)

TRACING:  --trace-out PATH writes one JSON line per query with that
          request's span tree (cache_lookup, route, replica_attempt,
          shard_fanout, gather, rerank, wire_exchange), stitched across
          layers by a deterministic trace id; `stats --node ADDR` asks a
          live serve-node for its identity card, transport counters, and
          retained span buffer as JSON

SCENARIO: `scenario` replays a named deterministic workload (Zipf-skewed
          queries, diurnal/bursty arrivals, LSM churn, scripted fault
          storms) against its default topology — or against --shards /
          --replicas / --nodes overrides — and writes a schema-stable
          BENCH_<name>.json. Identical seed + topology reproduces every
          non-timing field byte-for-byte; --smoke runs the CI-sized
          variant of the same shape

HOTPATH:  `hotpath` builds a Flash HNSW index over a synthetic corpus and
          runs the same queries single-threaded through a naive
          per-neighbor reference kernel and the production CSR +
          pooled-scratch + block-scored kernel, asserting the two return
          bit-identical (dist, id) results and that the steady-state loop
          creates no new scratch. It writes BENCH_hotpath.json with
          reference/hotpath QPS under timing keys, so strip_timings
          leaves a byte-stable structural report for CI diffing; --smoke
          shrinks the corpus to CI size

OBSERVABILITY:
          serve-node --metrics-addr HOST:PORT opens an HTTP scrape plane
          next to the wire listener: GET /metrics renders the process
          metrics registry as OpenMetrics text, /healthz answers 200 ok
          until an SLO burn-rate guard latches a breach (event-loop
          nodes watch their shed fraction; 503 degraded while burning),
          and /varz dumps the node's stats snapshot as JSON. `stats
          --node ADDR --openmetrics` renders a remote node's stats scrape
          in the same exposition format for piping into a collector.
          `bench-diff --old A.json --new B.json` diffs two BENCH reports:
          structural (non-timing) fields must match exactly and timing
          fields must agree within --timing-ratio (default 10x), exiting
          nonzero on any regression — the CI sentinel over committed
          baselines

PROFILES: argilla-like anton-like laion-like imagenet-like cohere-like
          datacomp-like bigcode-like ssnpp-like";

/// Options that are bare boolean flags — present/absent, no value.
/// Everything else is `--key value`.
const FLAG_OPTIONS: &[&str] = &["smoke", "event-loop", "openmetrics"];

/// Parsed `--key value` options.
struct Opts {
    map: HashMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --option, got `{key}`"));
            };
            let value = if FLAG_OPTIONS.contains(&name) {
                "true".to_string()
            } else {
                it.next()
                    .ok_or_else(|| format!("--{name} requires a value"))?
                    .clone()
            };
            if map.insert(name.to_string(), value).is_some() {
                return Err(format!("--{name} given twice"));
            }
        }
        Ok(Self { map })
    }

    /// Whether a boolean flag (see [`FLAG_OPTIONS`]) was given.
    fn flag(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.str(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn path(&self, key: &str) -> Result<PathBuf, String> {
        Ok(PathBuf::from(self.required(key)?))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }
}

fn profile_by_name(name: &str) -> Result<DatasetProfile, String> {
    Ok(match name {
        "argilla-like" => DatasetProfile::ArgillaLike,
        "anton-like" => DatasetProfile::AntonLike,
        "laion-like" => DatasetProfile::LaionLike,
        "imagenet-like" => DatasetProfile::ImagenetLike,
        "cohere-like" => DatasetProfile::CohereLike,
        "datacomp-like" => DatasetProfile::DatacompLike,
        "bigcode-like" => DatasetProfile::BigcodeLike,
        "ssnpp-like" => DatasetProfile::SsnppLike,
        other => {
            return Err(format!(
                "unknown profile `{other}` (see PROFILES in --help)"
            ))
        }
    })
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let profile = profile_by_name(opts.required("profile")?)?;
    let n: usize = opts.num("n", 10_000)?;
    let nq: usize = opts.num("nq", 100)?;
    let seed: u64 = opts.num("seed", 42u64)?;
    let base_path = opts.path("base")?;

    eprintln!("generating {n} vectors ({})...", profile.name());
    let (base, queries) = generate(&profile.spec(), n, nq, seed);
    write_fvecs(&base_path, &base).map_err(io_err("write base"))?;
    eprintln!(
        "wrote {} vectors x {} dims to {}",
        base.len(),
        base.dim(),
        base_path.display()
    );

    if let Some(qp) = opts.str("queries") {
        write_fvecs(Path::new(qp), &queries).map_err(io_err("write queries"))?;
        eprintln!("wrote {} queries to {qp}", queries.len());
        if let Some(gtp) = opts.str("gt") {
            let k: usize = opts.num("k", 10)?;
            eprintln!("computing exact top-{k} ground truth...");
            let gt = ground_truth(&base, &queries, k);
            let rows: Vec<Vec<i32>> = gt
                .iter()
                .map(|nbrs| nbrs.iter().map(|n| n.id as i32).collect())
                .collect();
            write_ivecs(Path::new(gtp), &rows).map_err(io_err("write gt"))?;
            eprintln!("wrote ground truth to {gtp}");
        }
    }
    Ok(())
}

/// Everything needed to rebuild a provider deterministically at serve time.
/// The method string is validated against the engine's `GraphKind` /
/// `Coding` parsers **before** any dataset is read, so a typo fails fast
/// with the accepted set spelled out.
#[derive(Debug)]
struct BuildSpec {
    graph_kind: GraphKind,
    coding: Coding,
    c: usize,
    r: usize,
    /// `--df` override; `FlashParams::auto(dim)` default applies at build
    /// time (the dataset dimensionality is unknown during validation).
    d_f: Option<usize>,
    /// `--mf` override; auto default applies at build time.
    m_f: Option<usize>,
    seed: u64,
}

impl BuildSpec {
    fn from_opts(opts: &Opts) -> Result<Self, String> {
        let (graph_kind, coding) = parse_method(opts.str("method").unwrap_or("flash"))?;
        Ok(Self {
            graph_kind,
            coding,
            c: opts.num("c", 128)?,
            r: opts.num("r", 16)?,
            d_f: opts
                .str("df")
                .map(str::parse)
                .transpose()
                .map_err(|_| "--df: not a number")?,
            m_f: opts
                .str("mf")
                .map(str::parse)
                .transpose()
                .map_err(|_| "--mf: not a number")?,
            seed: opts.num("seed", 0x5EEDu64)?,
        })
    }

    fn method_name(&self) -> String {
        format!("{}:{}", self.graph_kind.name(), self.coding.name())
    }

    /// The engine builder for this spec.
    fn builder(&self, dim: usize, n: usize) -> IndexBuilder {
        let mut builder = IndexBuilder::new(self.graph_kind, self.coding)
            .c(self.c)
            .r(self.r)
            .seed(self.seed);
        if self.coding == Coding::Flash {
            let mut fp = FlashParams::auto(dim);
            fp.d_f = self.d_f.unwrap_or(fp.d_f);
            fp.m_f = self.m_f.unwrap_or(fp.m_f);
            fp.seed = self.seed;
            fp.train_sample = (n / 2).clamp(256, 10_000);
            builder = builder.flash_params(fp);
        }
        builder
    }
}

fn cmd_build(opts: &Opts) -> Result<(), String> {
    // Validate method/options before touching the (possibly huge) dataset.
    let spec = BuildSpec::from_opts(opts)?;
    let graph_path = opts.path("graph")?;
    let base = read_fvecs(&opts.path("base")?).map_err(io_err("read base"))?;
    if base.is_empty() {
        return Err("base dataset is empty".into());
    }

    eprintln!(
        "building method={} over {} vectors (C={}, R={})...",
        spec.method_name(),
        base.len(),
        spec.c,
        spec.r
    );
    let (dim, n) = (base.dim(), base.len());
    let t0 = Instant::now();
    let index = spec.builder(dim, n).build(base);
    let took = t0.elapsed();
    let frozen = index
        .export_graph()
        .ok_or("built index exposes no topology to persist")?;
    frozen.save(&graph_path).map_err(io_err("write graph"))?;
    eprintln!(
        "built in {took:.2?}: {} base edges, {:.1} MB in memory, topology -> {}",
        frozen.base_edges(),
        index.memory_bytes() as f64 / 1e6,
        graph_path.display()
    );
    Ok(())
}

/// Builds (a shard of) an index and serves it behind a socket listener
/// until the process is killed — the node half of distributed serving.
fn cmd_serve_node(opts: &Opts) -> Result<(), String> {
    // Validate method and address before touching the dataset.
    let spec = BuildSpec::from_opts(opts)?;
    let listen: NodeAddr = opts.required("listen")?.parse()?;
    let shards: usize = opts.num("shards", 1)?;
    let shard: usize = opts.num("shard", 0)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if shard >= shards {
        return Err(format!("--shard {shard} out of range (--shards {shards})"));
    }
    let threads: usize = opts.num("threads", 4)?;
    let base = read_fvecs(&opts.path("base")?).map_err(io_err("read base"))?;
    if base.is_empty() {
        return Err("base dataset is empty".into());
    }
    if shards > base.len() {
        return Err(format!(
            "--shards {shards} exceeds the {} base vectors",
            base.len()
        ));
    }
    let (dim, n) = (base.dim(), base.len());
    let builder = spec.builder(dim, n);
    let (index, served): (Arc<dyn AnnIndex>, String) = if shards > 1 {
        // The codec trains on the FULL corpus — identical on every node
        // and on any in-process build from the same base/method/seed —
        // then this node only builds its slice.
        let codec = builder.train_codec(&base);
        let (set, ids) = ShardedIndex::partition(&base, shards, ShardPolicy::RoundRobin)
            .into_iter()
            .nth(shard)
            .expect("shard < shards <= n: the partition is non-empty");
        drop(base);
        let label = format!("shard {shard}/{shards}, {} vectors", ids.len());
        (Arc::from(builder.build_with_codec(set, &codec)), label)
    } else {
        (Arc::from(builder.build(base)), format!("{n} vectors"))
    };
    eprintln!(
        "built method={} ({served}); binding {listen}...",
        spec.method_name()
    );
    let metrics_addr = opts.str("metrics-addr").map(str::to_string);
    if opts.flag("event-loop") {
        let config = EventConfig {
            threads,
            ..EventConfig::default()
        };
        let server = EventServer::bind(&listen, NodeHandler::new(index), config)
            .map_err(|e| format!("cannot serve node: {e}"))?;
        let _scrape = metrics_addr
            .as_deref()
            .map(|addr| {
                // Event-loop nodes guard their shed fraction: /healthz
                // degrades while the admission layer is burning budget.
                let (admitted, shed) = server.admission_counters();
                let sampler = Box::new(move || {
                    (
                        admitted.load(std::sync::atomic::Ordering::Relaxed),
                        shed.load(std::sync::atomic::Ordering::Relaxed),
                    )
                }) as metrics::slo::Sampler;
                let guard = Arc::new(SloGuard::new(
                    BurnConfig::default(),
                    Duration::from_secs(1),
                    vec![(Objective::new("shed_fraction", 0.05), sampler)],
                ));
                bind_scrape(addr, Arc::clone(server.handler()), Some(guard))
            })
            .transpose()?;
        eprintln!(
            "node listening on {} — method={} ({served}), {threads} event loops; Ctrl-C to stop",
            server.addr(),
            spec.method_name()
        );
        loop {
            std::thread::park();
        }
    }
    let server = NodeServer::bind(&listen, NodeHandler::new(index), threads)
        .map_err(|e| format!("cannot serve node: {e}"))?;
    let _scrape = metrics_addr
        .as_deref()
        .map(|addr| bind_scrape(addr, Arc::clone(server.handler()), None))
        .transpose()?;
    eprintln!(
        "node listening on {} — method={} ({served}), {threads} connection workers; Ctrl-C to stop",
        server.addr(),
        spec.method_name()
    );
    loop {
        std::thread::park();
    }
}

/// Opens the HTTP scrape plane and announces its endpoints, publishing
/// the node's live counters into the process registry so `/metrics` has
/// the same ledger a `StatsRequest` answers from.
fn bind_scrape(
    addr: &str,
    handler: Arc<NodeHandler>,
    guard: Option<Arc<SloGuard>>,
) -> Result<ScrapeServer, String> {
    let registry = metrics::MetricsRegistry::global();
    graphs::register_scratch_metrics();
    {
        let h = Arc::clone(&handler);
        registry.register_source("node.transport", move || h.counters().snapshot().to_json());
    }
    {
        let h = Arc::clone(&handler);
        registry.register_source("node.profile", move || h.stats().profile.to_json());
    }
    let scrape = ScrapeServer::bind(addr, handler, guard)
        .map_err(|e| format!("cannot bind metrics endpoint: {e}"))?;
    eprintln!(
        "metrics on http://{0}/metrics (also /healthz, /varz)",
        scrape.addr()
    );
    Ok(scrape)
}

/// What one server drill measured: throughput over the whole query set
/// and the tail of per-request round-trip latencies.
struct DrillOutcome {
    qps: f64,
    p99_ms: f64,
}

/// Drills `clients` concurrent connections against a TCP node listener,
/// each sending its round-robin share of the queries with a sliding
/// window of `window` in-flight frames (1 = strict request/response),
/// and checks every answer against the in-process baseline.
#[allow(clippy::too_many_arguments)]
fn drill_server(
    addr: &NodeAddr,
    queries: &VectorSet,
    k: usize,
    ef: usize,
    rerank: usize,
    clients: usize,
    window: usize,
    expected: &[Vec<u64>],
) -> Result<DrillOutcome, String> {
    let NodeAddr::Tcp(host) = addr else {
        return Err("bench-serve drills TCP listeners only".into());
    };
    let nq = expected.len();
    let t0 = Instant::now();
    // Per client: (query index, returned ids) pairs plus per-query latencies.
    type ClientDrill = (Vec<(usize, Vec<u64>)>, Vec<f64>);
    let per_client: Vec<ClientDrill> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || -> Result<_, String> {
                    let mine: Vec<usize> = (c..nq).step_by(clients).collect();
                    let mut stream = std::net::TcpStream::connect(host.as_str())
                        .map_err(|e| format!("connect {host}: {e}"))?;
                    stream.set_nodelay(true).ok();
                    let mut answers: Vec<(usize, Vec<u64>)> = Vec::with_capacity(mine.len());
                    let mut lat_ms = Vec::with_capacity(mine.len());
                    let mut sent_at: Vec<Instant> = Vec::with_capacity(mine.len());
                    // Sliding window: keep `window` frames in flight so
                    // the pipe never drains mid-drill (window 1 degrades
                    // to strict request/response).
                    let window = window.max(1);
                    let read_reply =
                        |stream: &mut std::net::TcpStream, qi: usize| -> Result<_, String> {
                            let (msg, _, _) = read_message(stream)
                                .map_err(|e| format!("recv: {e}"))?
                                .ok_or("server closed mid-drill")?;
                            match msg {
                                Message::SearchOk(resp) => Ok((qi, resp.ids())),
                                Message::Error(fault) => {
                                    Err(format!("healthy-load request failed: {}", fault.message))
                                }
                                other => Err(format!("unexpected {} frame", other.kind_name())),
                            }
                        };
                    for (i, &qi) in mine.iter().enumerate() {
                        if i >= window {
                            let prev = mine[i - window];
                            answers.push(read_reply(&mut stream, prev)?);
                            lat_ms.push(sent_at[i - window].elapsed().as_secs_f64() * 1e3);
                        }
                        let req = SearchRequest::new(queries.get(qi), k).ef(ef).rerank(rerank);
                        sent_at.push(Instant::now());
                        write_message(&mut stream, &Message::Search(req), 0)
                            .map_err(|e| format!("send: {e}"))?;
                    }
                    for i in mine.len().saturating_sub(window)..mine.len() {
                        answers.push(read_reply(&mut stream, mine[i])?);
                        lat_ms.push(sent_at[i].elapsed().as_secs_f64() * 1e3);
                    }
                    Ok((answers, lat_ms))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| "drill client panicked".to_string())?)
            .collect::<Result<_, String>>()
    })?;
    let wall = t0.elapsed();

    let mut got: Vec<Option<Vec<u64>>> = vec![None; nq];
    let mut lat = Vec::with_capacity(nq);
    for (answers, lat_ms) in per_client {
        for (qi, ids) in answers {
            got[qi] = Some(ids);
        }
        lat.extend(lat_ms);
    }
    for (qi, ids) in got.iter().enumerate() {
        let ids = ids
            .as_ref()
            .ok_or_else(|| format!("query {qi} was never answered"))?;
        if ids != &expected[qi] {
            return Err(format!(
                "parity violation on query {qi}: wire {ids:?} vs local {:?}",
                expected[qi]
            ));
        }
    }
    Ok(DrillOutcome {
        qps: nq as f64 / wall.as_secs_f64().max(1e-9),
        p99_ms: latency_summary(&lat).p99_ms,
    })
}

/// Floods an event-driven listener with `total` requests blasted all at
/// once (every client writes its full share before reading anything) and
/// tallies how each was answered: `(ok, overloaded)`.
fn flood_server(
    addr: &NodeAddr,
    queries: &VectorSet,
    k: usize,
    ef: usize,
    rerank: usize,
    clients: usize,
    total: usize,
) -> Result<(usize, usize), String> {
    let NodeAddr::Tcp(host) = addr else {
        return Err("bench-serve drills TCP listeners only".into());
    };
    let nq = queries.len();
    let counts: Vec<(usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || -> Result<(usize, usize), String> {
                    // Round-robin split of `total` across the clients.
                    let share = total / clients + usize::from(c < total % clients);
                    let mut stream = std::net::TcpStream::connect(host.as_str())
                        .map_err(|e| format!("connect {host}: {e}"))?;
                    stream.set_nodelay(true).ok();
                    for i in 0..share {
                        let qi = (c + i * clients) % nq;
                        let req = SearchRequest::new(queries.get(qi), k).ef(ef).rerank(rerank);
                        write_message(&mut stream, &Message::Search(req), 0)
                            .map_err(|e| format!("send: {e}"))?;
                    }
                    let (mut ok, mut overloaded) = (0, 0);
                    for _ in 0..share {
                        let (msg, _, _) = read_message(&mut stream)
                            .map_err(|e| format!("recv: {e}"))?
                            .ok_or("server closed mid-flood")?;
                        match msg {
                            Message::SearchOk(_) => ok += 1,
                            Message::Error(fault) if fault.code == ErrorCode::Overloaded => {
                                overloaded += 1
                            }
                            Message::Error(fault) => {
                                return Err(format!("flood request failed: {}", fault.message))
                            }
                            other => return Err(format!("unexpected {} frame", other.kind_name())),
                        }
                    }
                    Ok((ok, overloaded))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| "flood client panicked".to_string())?)
            .collect::<Result<_, String>>()
    })?;
    Ok(counts
        .into_iter()
        .fold((0, 0), |(a, b), (ok, ov)| (a + ok, b + ov)))
}

/// Builds a synthetic index and drills the blocking and event-driven node
/// servers side by side on ephemeral ports: strict request/response
/// against `NodeServer`, pipelined frames against `EventServer`, with a
/// response-parity check against in-process search. A deliberately
/// under-provisioned `EventServer` is then flooded past its admission
/// deadline to verify every request is answered — `SearchOk` or
/// `Overloaded`, never silence.
fn cmd_bench_serve(opts: &Opts) -> Result<(), String> {
    let spec = BuildSpec::from_opts(opts)?;
    let n: usize = opts.num("n", 2_000)?;
    let nq: usize = opts.num("queries", 256)?;
    let k: usize = opts.num("k", 10)?;
    let ef: usize = opts.num("ef", 64)?;
    let clients: usize = opts.num("clients", 8)?;
    let pipeline: usize = opts.num("pipeline", 8)?;
    let flood: usize = opts.num("flood", 1_024)?;
    let threads: usize = opts.num("threads", 2)?;
    let profile = profile_by_name(opts.str("profile").unwrap_or("ssnpp-like"))?;
    if n == 0 || nq == 0 || clients == 0 || threads == 0 || flood == 0 {
        return Err("--n/--queries/--clients/--threads/--flood must be positive".into());
    }

    eprintln!(
        "bench-serve: building method={} over {n} synthetic vectors ({})...",
        spec.method_name(),
        profile.name()
    );
    let (base, queries) = generate(&profile.spec(), n, nq, spec.seed);
    let dim = base.dim();
    let rerank = spec.coding.default_rerank();
    let index: Arc<dyn AnnIndex> = Arc::from(spec.builder(dim, n).build(base));

    // Parity baseline: the same requests answered in-process. Both
    // servers must reproduce these ids bit-for-bit under healthy load.
    let expected: Vec<Vec<u64>> = (0..nq)
        .map(|qi| {
            index
                .search(&SearchRequest::new(queries.get(qi), k).ef(ef).rerank(rerank))
                .ids()
        })
        .collect();

    let bind: NodeAddr = "tcp:127.0.0.1:0".parse()?;
    eprintln!(
        "bench-serve: drilling blocking server ({clients} clients, strict RPC, \
         {threads} workers)..."
    );
    let mut blocking = NodeServer::bind(&bind, NodeHandler::new(Arc::clone(&index)), threads)
        .map_err(|e| format!("bind blocking server: {e}"))?;
    let b = drill_server(
        blocking.addr(),
        &queries,
        k,
        ef,
        rerank,
        clients,
        1,
        &expected,
    )?;
    blocking.shutdown();

    eprintln!(
        "bench-serve: drilling event-driven server ({clients} clients, \
         {pipeline}-deep pipelines, {threads} loops)..."
    );
    let mut event = EventServer::bind(
        &bind,
        NodeHandler::new(Arc::clone(&index)),
        EventConfig {
            threads,
            ..EventConfig::default()
        },
    )
    .map_err(|e| format!("bind event server: {e}"))?;
    let e = drill_server(
        event.addr(),
        &queries,
        k,
        ef,
        rerank,
        clients,
        pipeline,
        &expected,
    )?;
    event.shutdown();

    println!(
        "bench-serve: blocking_qps={:.0} event_qps={:.0} blocking_p99={:.3}ms \
         event_p99={:.3}ms parity=ok",
        b.qps, e.qps, b.p99_ms, e.p99_ms
    );

    // Overload drill: a tight queue deadline and a blast of `flood`
    // requests force deadline shedding; admission control must still
    // answer every frame. A zero deadline would shed *everything* — keep
    // it small but nonzero so early arrivals are admitted.
    eprintln!("bench-serve: flooding event server with {flood} requests...");
    let mut over = EventServer::bind(
        &bind,
        NodeHandler::new(Arc::clone(&index)),
        EventConfig {
            threads,
            batch_max: 16,
            batch_deadline: Duration::from_micros(200),
            client_quota: flood,
            queue_deadline: Duration::from_millis(2),
        },
    )
    .map_err(|e| format!("bind overload server: {e}"))?;

    // Scrape plane over the flooded server: /metrics must serve valid
    // OpenMetrics *while* the admission layer sheds, and /healthz must
    // degrade once the shed fraction burns its budget. Single-bucket
    // windows make the verdict a pure function of the cumulative
    // counters at scrape time.
    let (admitted_ctr, shed_ctr) = over.admission_counters();
    let sampler = Box::new(move || {
        (
            admitted_ctr.load(std::sync::atomic::Ordering::Relaxed),
            shed_ctr.load(std::sync::atomic::Ordering::Relaxed),
        )
    }) as metrics::slo::Sampler;
    let guard = Arc::new(SloGuard::new(
        BurnConfig {
            fast_window: 1,
            slow_window: 1,
            fast_burn: 1.0,
            slow_burn: 1.0,
        },
        Duration::from_millis(1),
        vec![(Objective::new("shed_fraction", 0.05), sampler)],
    ));
    let scrape = ScrapeServer::bind("127.0.0.1:0", Arc::clone(over.handler()), Some(guard))
        .map_err(|e| format!("bind scrape endpoint: {e}"))?;
    let scrape_addr = scrape.addr().to_string();
    let stop_scraping = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let addr = scrape_addr.clone();
        let stop = Arc::clone(&stop_scraping);
        std::thread::spawn(move || -> Result<u64, String> {
            let mut scrapes = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let (status, body) = http_get(&addr, "/metrics")?;
                if status != 200 || !body.ends_with("# EOF\n") {
                    return Err(format!(
                        "mid-flood /metrics scrape broke: status {status}, \
                         terminator {}",
                        body.ends_with("# EOF\n")
                    ));
                }
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(scrapes)
        })
    };

    let (ok, overloaded) = flood_server(over.addr(), &queries, k, ef, rerank, clients, flood)?;
    stop_scraping.store(true, std::sync::atomic::Ordering::Release);
    let scrapes = scraper
        .join()
        .map_err(|_| "the concurrent scraper panicked".to_string())??;
    let stats = over.admission_stats();
    let (health_status, _) = http_get(&scrape_addr, "/healthz")?;
    drop(scrape);
    over.shutdown();
    let answered = ok + overloaded;
    println!(
        "overload: submitted={flood} answered={answered} ok={ok} overloaded={overloaded} \
         admitted={} shed={}",
        stats.admitted, stats.shed
    );
    if answered != flood {
        return Err(format!(
            "overload drill lost {} of {flood} requests (every submission must be \
             answered or shed, never dropped)",
            flood - answered
        ));
    }
    if scrapes == 0 {
        return Err("no /metrics scrape landed during the flood".into());
    }
    let shed_fraction = stats.shed as f64 / (stats.admitted + stats.shed).max(1) as f64;
    if shed_fraction > 0.05 && health_status != 503 {
        return Err(format!(
            "shed fraction {shed_fraction:.3} burned the 5% budget but /healthz \
             answered {health_status}, not 503 degraded"
        ));
    }
    println!(
        "scrape: concurrent_scrapes={scrapes} healthz={} (shed_fraction={shed_fraction:.3})",
        if health_status == 503 {
            "degraded"
        } else {
            "ok"
        }
    );
    Ok(())
}

/// One blocking HTTP GET against a scrape endpoint: `(status, body)`.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("{addr}: {e}"))?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{addr}{path}: malformed HTTP response"))?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    // Validate method/options before touching the (possibly huge) datasets.
    let spec = BuildSpec::from_opts(opts)?;
    let nodes: Option<Vec<NodeAddr>> = opts
        .str("nodes")
        .map(|csv| csv.split(',').map(str::parse).collect::<Result<_, _>>())
        .transpose()?;
    if let Some(addrs) = &nodes {
        if addrs.is_empty() {
            return Err("--nodes needs at least one address".into());
        }
        for flag in ["shards", "replicas", "graph"] {
            if opts.str(flag).is_some() {
                return Err(format!(
                    "--{flag} does not combine with --nodes (each node serves one shard; \
                     remote replica placement is not wired up yet)"
                ));
            }
        }
    }
    let shards: usize = match &nodes {
        Some(addrs) => addrs.len(),
        None => opts.num("shards", 1)?,
    };
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let replicas: usize = opts.num("replicas", 1)?;
    if replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    let routing: RoutingPolicy = match opts.str("routing") {
        None => RoutingPolicy::RoundRobin,
        Some(s) => s.parse()?,
    };
    // Default pool size: one worker per shard — and on the replicated
    // path enough workers to also build the replica copies concurrently
    // (capped; serving fan-out is per shard regardless).
    let default_threads = if replicas > 1 {
        (shards * replicas).min(8)
    } else {
        shards
    };
    let threads: usize = opts.num("threads", default_threads)?;
    let cache_capacity: usize = opts.num("cache-capacity", 0)?;
    let batch: usize = opts.num("batch", 32)?;
    let base = read_fvecs(&opts.path("base")?).map_err(io_err("read base"))?;
    let queries = read_fvecs(&opts.path("queries")?).map_err(io_err("read queries"))?;
    if base.is_empty() || queries.is_empty() {
        return Err("base/query dataset is empty".into());
    }
    if base.dim() != queries.dim() {
        return Err(format!(
            "dimension mismatch: base {} vs queries {}",
            base.dim(),
            queries.dim()
        ));
    }
    let k: usize = opts.num("k", 10)?;
    let ef: usize = opts.num("ef", 128)?;
    let (dim, n) = (base.dim(), base.len());
    let rerank = spec.coding.default_rerank();
    // The worker pool only exists on the sharded/replicated/distributed
    // paths; the monolithic serve path runs single-threaded regardless of
    // --threads.
    let threads_used = if shards > 1 || replicas > 1 || nodes.is_some() {
        threads
    } else {
        1
    };

    // Kept alongside the type-erased serving handle so failover stats
    // stay readable after the workload drains.
    let mut replicated: Option<Arc<ReplicatedIndex>> = None;
    // Likewise for the per-node transport counters on the --nodes path.
    let mut transports: Vec<Arc<SocketTransport>> = Vec::new();
    let index: Arc<dyn AnnIndex> = if let Some(addrs) = &nodes {
        // Distributed serving: each address hosts one shard of the same
        // round-robin partition (`serve-node --shards N --shard I`); the
        // coordinator only needs the id maps, which it recomputes from
        // the shared base file.
        eprintln!(
            "distributed serving: scatter-gather across {} nodes...",
            addrs.len()
        );
        let timeout_ms: u64 = opts.num("timeout-ms", 5_000)?;
        // Only the local→global id maps are needed — under the
        // round-robin placement shard `s` holds exactly the ids
        // `s, s + shards, ...`, so no vector data is copied.
        let id_maps =
            (0..addrs.len()).map(|s| ((s as u64)..n as u64).step_by(addrs.len()).collect());
        let remote_parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = addrs
            .iter()
            .zip(id_maps)
            .map(|(addr, ids): (_, Vec<u64>)| {
                let transport = SocketTransport::connect(addr.clone())
                    .map_err(|e| e.to_string())?
                    .with_timeout(std::time::Duration::from_millis(timeout_ms.max(1)));
                let transport = Arc::new(transport);
                let remote = RemoteIndex::connect(Arc::clone(&transport) as Arc<dyn Transport>)
                    .map_err(|e| format!("{addr}: {e}"))?;
                if FallibleIndex::len(&remote) != ids.len() || FallibleIndex::dim(&remote) != dim {
                    return Err(format!(
                        "{addr} serves {} vectors x {} dims, but shard {} of this base \
                         has {} x {dim} — check the node's --base/--shards/--shard",
                        FallibleIndex::len(&remote),
                        FallibleIndex::dim(&remote),
                        transports.len(),
                        ids.len()
                    ));
                }
                transports.push(transport);
                Ok((Box::new(remote) as Box<dyn AnnIndex>, ids))
            })
            .collect::<Result<_, String>>()?;
        Arc::new(ShardedIndex::from_parts(
            remote_parts,
            ShardPolicy::RoundRobin,
            Arc::new(WorkerPool::new(threads)),
        ))
    } else if replicas > 1 {
        // Replicas are deterministic rebuilds too (and every shard×replica
        // shares one globally-trained codec), so --graph is not read.
        eprintln!(
            "replicated serving: building {shards} x {replicas} {} shard replicas \
             on {threads} threads ({routing} routing)...",
            spec.method_name()
        );
        let r = Arc::new(ReplicatedIndex::build(
            base,
            &spec.builder(dim, n),
            shards,
            replicas,
            ShardPolicy::RoundRobin,
            routing,
            HealthConfig::default(),
            threads,
        ));
        replicated = Some(Arc::clone(&r));
        r
    } else if shards > 1 {
        // The persisted topology is one monolithic graph, which cannot be
        // sliced; sharded serving rebuilds one deterministic sub-index per
        // shard from the base vectors instead (--graph is not read).
        eprintln!(
            "sharded serving: building {shards} {} shards on {threads} threads...",
            spec.method_name()
        );
        Arc::new(ShardedIndex::build(
            base,
            &spec.builder(dim, n),
            shards,
            ShardPolicy::RoundRobin,
            threads,
        ))
    } else {
        let graph =
            graphs::GraphLayers::load(&opts.path("graph")?).map_err(io_err("read graph"))?;
        if graph.len() != n {
            return Err(format!(
                "graph covers {} nodes but base has {n} vectors",
                graph.len()
            ));
        }
        eprintln!(
            "re-deriving {} provider over {n} vectors...",
            spec.method_name()
        );
        Arc::from(spec.builder(dim, n).serve(base, graph)?)
    };
    let cached = (cache_capacity > 0)
        .then(|| Arc::new(CachedIndex::new(Arc::clone(&index), cache_capacity)));
    let serving: Arc<dyn AnnIndex> = match &cached {
        Some(c) => Arc::clone(c) as Arc<dyn AnnIndex>,
        None => index,
    };

    eprintln!(
        "searching {} queries (k={k}, ef={ef}, rerank={rerank}, batch={batch})...",
        queries.len()
    );
    // --trace-out: every request carries a deterministic trace id
    // (derived from the build seed and query index) recording into one
    // ring sized so no span is dropped.
    let trace_out = opts.str("trace-out").map(PathBuf::from);
    let trace_ring = trace_out.as_ref().map(|_| {
        Arc::new(SpanRing::new(
            (queries.len().max(1) * 64).clamp(1024, 1 << 21),
        ))
    });
    let mut executor = BatchExecutor::new(serving).batch_size(batch);
    executor.submit_all((0..queries.len()).map(|qi| {
        let mut req = SearchRequest::new(queries.get(qi), k).ef(ef).rerank(rerank);
        if let Some(ring) = &trace_ring {
            req = req.trace(TraceContext::new(
                Arc::clone(ring),
                trace_id_for(spec.seed, qi as u64),
            ));
        }
        req
    }));
    let report = executor.run();
    let found: Vec<Vec<u32>> = report
        .responses
        .iter()
        .map(|r| r.hits.iter().map(|h| h.id as u32).collect())
        .collect();
    let latency = report.latency();
    let cache_line = match &cached {
        Some(c) => format!("{:.1}%", c.cache().stats().hit_rate() * 100.0),
        None => "off".to_string(),
    };
    let failover_line = match &replicated {
        Some(r) => {
            let f = r.failover_stats();
            format!(
                " replicas={} routing={} retries={} markdowns={} probes={}",
                r.replica_count(),
                r.routing(),
                f.retries,
                f.markdowns,
                f.probes,
            )
        }
        None => String::new(),
    };
    let transport_line = if transports.is_empty() {
        String::new()
    } else {
        let t = transport_summary(&transports.iter().map(|t| t.stats()).collect::<Vec<_>>());
        format!(
            " nodes={} frames={} bytes={} timeouts={}",
            transports.len(),
            t.frames_sent + t.frames_received,
            t.bytes_sent + t.bytes_received,
            t.timeouts,
        )
    };
    println!(
        "serving: shards={shards} threads={threads_used} qps={:.0} p50={:.3}ms p99={:.3}ms cache={cache_line}{failover_line}{transport_line}",
        report.qps.qps(),
        latency.p50_ms,
        latency.p99_ms,
    );
    println!(
        "QPS: {:.0}  mean latency: {:.3} ms",
        report.qps.qps(),
        report.qps.mean_latency_ms()
    );

    if let Some(gtp) = opts.str("gt") {
        let rows = read_ivecs(Path::new(gtp)).map_err(io_err("read gt"))?;
        if rows.len() != queries.len() {
            return Err(format!(
                "ground truth has {} rows for {} queries",
                rows.len(),
                queries.len()
            ));
        }
        let truth: Vec<Vec<vecstore::Neighbor>> = rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&id| vecstore::Neighbor {
                        id: id as u32,
                        dist_sq: 0.0,
                    })
                    .collect()
            })
            .collect();
        let recall = recall_at_k(&found, &truth, k).recall();
        println!("recall@{k}: {recall:.4}");
    }

    if let Some(outp) = opts.str("out") {
        let rows: Vec<Vec<i32>> = found
            .iter()
            .map(|ids| ids.iter().map(|&id| id as i32).collect())
            .collect();
        write_ivecs(Path::new(outp), &rows).map_err(io_err("write results"))?;
        eprintln!("wrote result ids to {outp}");
    }

    if let (Some(path), Some(ring)) = (&trace_out, &trace_ring) {
        let ids: Vec<u64> = (0..queries.len())
            .map(|qi| trace_id_for(spec.seed, qi as u64))
            .collect();
        write_trace_lines(path, &collect_traces(ring, &ids))?;
        eprintln!("wrote {} trace lines to {}", ids.len(), path.display());
    }
    Ok(())
}

/// Writes traces as JSON lines: one compact document per line.
fn write_trace_lines(path: &Path, traces: &[metrics::Json]) -> Result<(), String> {
    let mut out = String::with_capacity(traces.len() * 256);
    for t in traces {
        out.push_str(&t.to_compact_string());
        out.push('\n');
    }
    std::fs::write(path, out).map_err(io_err("write trace-out"))
}

/// Scrapes a live serve-node's observability snapshot — identity card,
/// server-side transport counters, retained span buffer — over one
/// `StatsRequest` frame and prints it as JSON.
fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let addr: NodeAddr = opts.required("node")?.parse()?;
    let timeout_ms: u64 = opts.num("timeout-ms", 5_000)?;
    let transport = SocketTransport::connect(addr.clone())
        .map_err(|e| format!("{addr}: {e}"))?
        .with_timeout(std::time::Duration::from_millis(timeout_ms.max(1)));
    match transport
        .exchange(&Message::StatsRequest)
        .map_err(|e| format!("{addr}: {e}"))?
    {
        Message::StatsResponse(stats) => {
            if opts.flag("openmetrics") {
                // Re-expose the scrape through a private registry so the
                // node's counters come out in collector-ready exposition
                // format (spans are a trace payload, not a metric family).
                let json = stats.to_json();
                let registry = metrics::MetricsRegistry::new();
                for section in ["info", "transport", "profile"] {
                    let value = json.get(section).cloned().unwrap_or(metrics::Json::Null);
                    registry.register_source(&format!("node.{section}"), move || value.clone());
                }
                print!("{}", registry.render_openmetrics());
            } else {
                print!("{}", stats.to_json().to_pretty_string());
            }
            Ok(())
        }
        Message::Error(fault) => Err(format!(
            "{addr}: node refused the stats scrape: {}",
            fault.message
        )),
        other => Err(format!(
            "{addr}: node answered the stats scrape with a {} frame",
            other.kind_name()
        )),
    }
}

/// Diffs two `BENCH_*.json` reports as the CI regression sentinel:
/// structural (non-timing) fields must match byte-for-byte after
/// `strip_timings`, timing fields must agree within a ratio band, and any
/// difference exits nonzero with every divergent path listed.
fn cmd_bench_diff(opts: &Opts) -> Result<(), String> {
    let old_path = opts.path("old")?;
    let new_path = opts.path("new")?;
    let ratio: f64 = opts.num("timing-ratio", 10.0)?;
    if ratio < 1.0 || ratio.is_nan() {
        return Err("--timing-ratio must be a number >= 1".into());
    }
    let load = |path: &Path| -> Result<metrics::Json, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let json = metrics::Json::parse(&text)
            .map_err(|e| format!("{} does not parse as JSON: {e}", path.display()))?;
        metrics::BenchReport::validate(&json)
            .map_err(|e| format!("{} fails the BENCH schema: {e}", path.display()))?;
        Ok(json)
    };
    let old = load(&old_path)?;
    let new = load(&new_path)?;
    let mut diffs: Vec<String> = Vec::new();
    diff_structural(
        &metrics::strip_timings(&old),
        &metrics::strip_timings(&new),
        "$",
        &mut diffs,
    );
    diff_timings(&old, &new, "$", ratio, &mut diffs);
    if diffs.is_empty() {
        println!(
            "bench-diff: {} and {} agree (structural exact, timings within {ratio}x)",
            old_path.display(),
            new_path.display()
        );
        return Ok(());
    }
    for d in &diffs {
        eprintln!("bench-diff: {d}");
    }
    Err(format!(
        "{} difference(s) between {} and {}",
        diffs.len(),
        old_path.display(),
        new_path.display()
    ))
}

/// Recursive exact comparison of two timing-stripped reports, recording
/// every divergent JSON path.
fn diff_structural(old: &metrics::Json, new: &metrics::Json, path: &str, diffs: &mut Vec<String>) {
    use metrics::Json;
    match (old, new) {
        (Json::Obj(po), Json::Obj(_)) => {
            for (key, vo) in po {
                match new.get(key) {
                    Some(vn) => diff_structural(vo, vn, &format!("{path}.{key}"), diffs),
                    None => diffs.push(format!("{path}.{key}: missing from the new report")),
                }
            }
            if let Json::Obj(pn) = new {
                for (key, _) in pn {
                    if old.get(key).is_none() {
                        diffs.push(format!("{path}.{key}: only in the new report"));
                    }
                }
            }
        }
        (Json::Arr(ao), Json::Arr(an)) => {
            if ao.len() != an.len() {
                diffs.push(format!("{path}: array length {} -> {}", ao.len(), an.len()));
                return;
            }
            for (i, (vo, vn)) in ao.iter().zip(an).enumerate() {
                diff_structural(vo, vn, &format!("{path}[{i}]"), diffs);
            }
        }
        (a, b) => {
            if a != b {
                diffs.push(format!(
                    "{path}: structural value changed: {} -> {}",
                    a.to_pretty_string().replace('\n', " "),
                    b.to_pretty_string().replace('\n', " ")
                ));
            }
        }
    }
}

/// Walks both reports in parallel and, under every [`metrics::TIMING_KEYS`]
/// subtree, checks each pair of numeric leaves stays within `ratio`.
/// Shape mismatches are the structural pass's job, not this one's.
fn diff_timings(
    old: &metrics::Json,
    new: &metrics::Json,
    path: &str,
    ratio: f64,
    diffs: &mut Vec<String>,
) {
    use metrics::Json;
    match (old, new) {
        (Json::Obj(po), Json::Obj(_)) => {
            for (key, vo) in po {
                let Some(vn) = new.get(key) else { continue };
                let sub = format!("{path}.{key}");
                if metrics::TIMING_KEYS.contains(&key.as_str()) {
                    compare_timing(vo, vn, &sub, ratio, diffs);
                } else {
                    diff_timings(vo, vn, &sub, ratio, diffs);
                }
            }
        }
        (Json::Arr(ao), Json::Arr(an)) => {
            for (i, (vo, vn)) in ao.iter().zip(an).enumerate() {
                diff_timings(vo, vn, &format!("{path}[{i}]"), ratio, diffs);
            }
        }
        _ => {}
    }
}

/// Numeric tolerance inside a timing subtree: each leaf pair must be
/// within a factor of `ratio` (values under 10µs-scale noise compare
/// equal; latency vectors are compared by aggregate, not element).
fn compare_timing(
    old: &metrics::Json,
    new: &metrics::Json,
    path: &str,
    ratio: f64,
    diffs: &mut Vec<String>,
) {
    use metrics::Json;
    match (old, new) {
        (Json::Obj(po), Json::Obj(_)) => {
            for (key, vo) in po {
                if let Some(vn) = new.get(key) {
                    compare_timing(vo, vn, &format!("{path}.{key}"), ratio, diffs);
                }
            }
        }
        // Per-query latency vectors differ in every element run to run;
        // their aggregate (the latency summary object) is what the band
        // applies to, so element lists only have to agree in magnitude.
        (Json::Arr(ao), Json::Arr(an)) => {
            let mean = |items: &[Json]| {
                let xs: Vec<f64> = items.iter().filter_map(Json::as_f64).collect();
                xs.iter().sum::<f64>() / xs.len().max(1) as f64
            };
            check_timing_pair(mean(ao), mean(an), &format!("{path}[mean]"), ratio, diffs);
        }
        (a, b) => {
            if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
                check_timing_pair(x, y, path, ratio, diffs);
            }
        }
    }
}

/// One timing leaf: both below noise floor passes, otherwise the larger
/// magnitude must be within `ratio` times the smaller.
fn check_timing_pair(old: f64, new: f64, path: &str, ratio: f64, diffs: &mut Vec<String>) {
    const NOISE_FLOOR: f64 = 0.01;
    let (lo, hi) = (old.abs().min(new.abs()), old.abs().max(new.abs()));
    if hi < NOISE_FLOOR || hi <= lo.max(NOISE_FLOOR / ratio) * ratio {
        return;
    }
    diffs.push(format!(
        "{path}: timing drifted beyond {ratio}x: {old} -> {new}"
    ));
}

/// Replays a named scenario workload and writes its `BENCH_*.json`,
/// self-checking the emitted file against the report schema.
fn cmd_scenario(opts: &Opts) -> Result<(), String> {
    use scenario::TopologySpec;

    let name = opts.required("name")?;
    let smoke = opts.flag("smoke");
    let preset = scenario::by_name(name, smoke)?;
    let mut spec = preset.spec.clone();
    spec.seed = opts.num("seed", spec.seed)?;
    if let Some(r) = opts.str("routing") {
        spec.routing = r.parse()?;
    }

    let nodes: Option<Vec<NodeAddr>> = opts
        .str("nodes")
        .map(|csv| csv.split(',').map(str::parse).collect::<Result<_, _>>())
        .transpose()?;
    let topology = if let Some(addrs) = nodes {
        if addrs.is_empty() {
            return Err("--nodes needs at least one address".into());
        }
        for flag in ["shards", "replicas"] {
            if opts.str(flag).is_some() {
                return Err(format!("--{flag} does not combine with --nodes"));
            }
        }
        TopologySpec::Remote {
            nodes: addrs,
            timeout_ms: opts.num("timeout-ms", 5_000u64)?,
        }
    } else {
        let shards: usize = opts.num("shards", 0)?;
        let replicas: usize = opts.num("replicas", 0)?;
        match (shards, replicas) {
            (0, 0) => preset.default_topology.clone(),
            (s, 0) if s <= 1 => TopologySpec::Flat,
            (s, 0) => TopologySpec::Sharded { shards: s },
            (s, r) => TopologySpec::Replicated {
                shards: s.max(1),
                replicas: r.max(1),
            },
        }
    };
    let cache_capacity: usize = opts.num("cache-capacity", preset.default_cache)?;
    let threads: usize = opts.num("threads", 0)?;
    let out = PathBuf::from(
        opts.str("out")
            .map(str::to_string)
            .unwrap_or_else(|| format!("BENCH_{name}.json")),
    );

    eprintln!(
        "scenario {name}{}: {} — topology {}, seed {}...",
        if smoke { " (smoke)" } else { "" },
        preset.stresses,
        topology.label(&spec, cache_capacity),
        spec.seed,
    );
    let trace_out = opts.str("trace-out").map(PathBuf::from);
    let (report, traces) = scenario::ScenarioRunner::new(preset.name, spec, topology)
        .cache_capacity(cache_capacity)
        .threads(threads)
        .run_traced()?;
    let text = report.to_pretty_string();
    std::fs::write(&out, &text).map_err(io_err("write report"))?;
    if let Some(path) = &trace_out {
        write_trace_lines(path, &traces)?;
        eprintln!("wrote {} trace lines to {}", traces.len(), path.display());
    }

    // Self-check: the bytes on disk must parse back and satisfy the
    // BENCH schema, so downstream diff tooling can trust the artifact.
    let reread = std::fs::read_to_string(&out).map_err(io_err("re-read report"))?;
    let json =
        metrics::Json::parse(&reread).map_err(|e| format!("emitted report does not parse: {e}"))?;
    metrics::BenchReport::validate(&json)
        .map_err(|e| format!("emitted report fails schema validation: {e}"))?;

    println!(
        "scenario={} topology={} queries={} qps={:.0} p50={:.3}ms p99={:.3}ms p999={:.3}ms recall@{}={:.4}",
        report.scenario,
        report.topology,
        report.queries,
        report.qps,
        report.latency.p50_ms,
        report.latency.p99_ms,
        report.latency.p999_ms,
        report.k,
        report.recall_at_k,
    );
    if let Some(c) = &report.cache {
        println!(
            "cache: hits={} misses={} uncacheable={} hit_rate={:.1}%",
            c.hits,
            c.misses,
            c.uncacheable,
            c.hit_rate() * 100.0
        );
    }
    if let Some(f) = &report.failover {
        println!(
            "failover: retries={} markdowns={} probes={} recoveries={}",
            f.retries, f.markdowns, f.probes, f.recoveries
        );
    }
    if let Some(t) = &report.transport {
        println!(
            "transport: frames={} bytes={} timeouts={}",
            t.frames_sent + t.frames_received,
            t.bytes_sent + t.bytes_received,
            t.timeouts
        );
    }
    if let Some(a) = &report.admission {
        println!(
            "admission: submitted={} admitted={} shed={} retried={} max_depth={}",
            a.submitted, a.admitted, a.shed, a.retried, a.max_depth
        );
    }
    if let Some(t) = &report.trace {
        let spans: Vec<String> = t
            .span_counts
            .iter()
            .map(|(name, n)| format!("{name}={n}"))
            .collect();
        println!(
            "trace: traces={} dropped={} {}",
            t.traces,
            t.dropped,
            spans.join(" ")
        );
    }
    println!(
        "mutations: inserts={} deletes={} generation={}",
        report.mutations.inserts, report.mutations.deletes, report.mutations.generation
    );
    eprintln!("wrote {}", out.display());
    Ok(())
}

/// The retired per-neighbor beam search, kept here verbatim as the
/// measurement baseline for `hotpath`: greedy descent and an `ef`-wide
/// base beam with a fresh `vec![false; n]` visited map, fresh
/// `BinaryHeap`s, and one `dist_to` call per neighbor — exactly the
/// allocation and memory-access pattern the CSR + pooled-scratch +
/// block-scored kernel replaced. Must stay bit-identical to
/// `graphs::search_layers` (distances have no side effects, and both
/// loops re-read the current worst before every admission).
fn reference_search_layers(
    provider: &FlashProvider,
    graph: &graphs::GraphLayers,
    query: &[f32],
    k: usize,
    ef: usize,
) -> Vec<graphs::Hit> {
    use graphs::OrdF32;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if graph.is_empty() {
        return Vec::new();
    }
    let ef = ef.max(k).max(1);
    let ctx = provider.prepare_query(query);

    let mut cur = graph.entry;
    let mut cur_d = provider.dist_to(&ctx, cur);
    for layer in (1..=graph.max_layer).rev() {
        loop {
            let mut improved = false;
            for &nb in graph.neighbors(layer, cur) {
                let d = provider.dist_to(&ctx, nb);
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    let mut visited = vec![false; graph.len()];
    visited[cur as usize] = true;
    let mut results: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();
    let mut frontier: BinaryHeap<(Reverse<OrdF32>, u32)> = BinaryHeap::new();
    results.push((OrdF32(cur_d), cur));
    frontier.push((Reverse(OrdF32(cur_d)), cur));
    while let Some((Reverse(OrdF32(d)), u)) = frontier.pop() {
        let worst = results
            .peek()
            .map(|&(OrdF32(w), _)| w)
            .unwrap_or(f32::INFINITY);
        if d > worst && results.len() >= ef {
            break;
        }
        for &nb in graph.neighbors(0, u) {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            let nd = provider.dist_to(&ctx, nb);
            let worst = results
                .peek()
                .map(|&(OrdF32(w), _)| w)
                .unwrap_or(f32::INFINITY);
            if results.len() < ef || nd <= worst {
                results.push((OrdF32(nd), nb));
                if results.len() > ef {
                    results.pop();
                }
                frontier.push((Reverse(OrdF32(nd)), nb));
            }
        }
    }
    let mut out: Vec<graphs::Hit> = results
        .into_iter()
        .map(|(OrdF32(dist), id)| graphs::Hit {
            id: u64::from(id),
            dist,
        })
        .collect();
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    out.truncate(k);
    out
}

/// Benchmarks the flash-path search hot path: the naive per-neighbor
/// reference kernel vs the CSR + pooled-scratch + block-scored production
/// kernel, single-threaded over identical queries, with a bit-exactness
/// check and a zero-allocation check on the steady-state loop. Emits
/// `BENCH_hotpath.json` through the standard report schema (QPS and wall
/// clock under timing keys, everything else structural).
fn cmd_hotpath(opts: &Opts) -> Result<(), String> {
    let smoke = opts.flag("smoke");
    let n: usize = opts.num("n", if smoke { 1_500 } else { 6_000 })?;
    let nq: usize = opts.num("queries", if smoke { 96 } else { 256 })?;
    let k: usize = opts.num("k", 10)?;
    let ef: usize = opts.num("ef", if smoke { 64 } else { 96 })?;
    let c: usize = opts.num("c", if smoke { 48 } else { 96 })?;
    let r: usize = opts.num("r", if smoke { 8 } else { 12 })?;
    // Enough passes that each kernel's timed window is hundreds of
    // milliseconds — single-pass windows are a few ms and pure noise.
    let passes: usize = opts.num("passes", if smoke { 40 } else { 60 })?;
    let seed: u64 = opts.num("seed", 0x5EEDu64)?;
    if n == 0 || nq == 0 || k == 0 || passes == 0 {
        return Err("--n/--queries/--k/--passes must be positive".into());
    }
    let out = PathBuf::from(opts.str("out").unwrap_or("BENCH_hotpath.json"));

    let profile = DatasetProfile::SsnppLike;
    eprintln!(
        "hotpath: building flash HNSW over {n} synthetic vectors ({}, C={c}, R={r})...",
        profile.name()
    );
    let (base, queries) = generate(&profile.spec(), n, nq, seed);
    let dim = base.dim();
    let mut fp = FlashParams::auto(dim);
    fp.seed = seed;
    fp.train_sample = (n / 2).clamp(256, 10_000);
    let index = FlashHnsw::build_flash(base, fp, HnswParams { c, r, seed });
    let graph = index.freeze();
    let provider = index.provider();
    // The serving-side access-aware layout: every node's neighbor
    // codeword block built once, so expansions read instead of rebuild.
    let payloads = graphs::NodePayloads::build(provider, &graph);

    // Parity: both kernels must return the same (dist, id) lists on every
    // query before any timing is trusted.
    eprintln!("hotpath: checking reference/hotpath parity over {nq} queries...");
    for qi in 0..nq {
        let q = queries.get(qi);
        let naive = reference_search_layers(provider, &graph, q, k, ef);
        let fast = graphs::search_layers_cached(provider, &graph, &payloads, q, k, ef);
        let plain = graphs::search_layers(provider, &graph, q, k, ef);
        if naive.len() != fast.len()
            || naive
                .iter()
                .zip(&fast)
                .any(|(a, b)| a.id != b.id || a.dist != b.dist)
            || plain.len() != fast.len()
            || plain
                .iter()
                .zip(&fast)
                .any(|(a, b)| a.id != b.id || a.dist != b.dist)
        {
            return Err(format!(
                "parity violation on query {qi}: reference {naive:?} vs hotpath {fast:?}"
            ));
        }
    }

    // Timed passes, single thread, identical query stream. The kernels
    // alternate pass-by-pass and each is scored by its *best* pass, so
    // clock-frequency drift hits both equally instead of whichever ran
    // second. The parity loop above doubles as the warm-up, so the scratch
    // pool is already primed: any `created` growth during the timed loop
    // is an allocation bug.
    let total = nq * passes;
    eprintln!("hotpath: timing {passes} interleaved passes x {nq} queries per kernel...");
    let scratch_before = graphs::scratch_stats();
    let mut lat_ms = Vec::with_capacity(total);
    let mut reference_wall = 0.0f64;
    let mut hotpath_wall = 0.0f64;
    let mut reference_best = f64::INFINITY;
    let mut hotpath_best = f64::INFINITY;
    for _ in 0..passes {
        let t0 = Instant::now();
        for qi in 0..nq {
            let hits = reference_search_layers(provider, &graph, queries.get(qi), k, ef);
            std::hint::black_box(&hits);
        }
        let pass_wall = t0.elapsed().as_secs_f64();
        reference_wall += pass_wall;
        reference_best = reference_best.min(pass_wall);

        let t0 = Instant::now();
        for qi in 0..nq {
            let tq = Instant::now();
            let hits =
                graphs::search_layers_cached(provider, &graph, &payloads, queries.get(qi), k, ef);
            lat_ms.push(tq.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(&hits);
        }
        let pass_wall = t0.elapsed().as_secs_f64();
        hotpath_wall += pass_wall;
        hotpath_best = hotpath_best.min(pass_wall);
    }
    let scratch_after = graphs::scratch_stats();
    let zero_alloc = scratch_after.created == scratch_before.created;
    if !zero_alloc {
        return Err(format!(
            "steady-state searches created {} new scratch states (expected 0)",
            scratch_after.created - scratch_before.created
        ));
    }
    if scratch_after.checkouts - scratch_before.checkouts != total as u64 {
        return Err("scratch checkouts do not match the query count".into());
    }

    // Best-pass QPS: the least-interfered-with window for each kernel.
    let reference_qps = nq as f64 / reference_best.max(1e-9);
    let hotpath_qps = nq as f64 / hotpath_best.max(1e-9);
    let speedup = hotpath_qps / reference_qps.max(1e-9);

    // Recall against the exact oracle is structural: same seed, same
    // binary, same number — it pins search quality across refactors. The
    // same pass yields the kernel's structural cost profile (hops,
    // distance evaluations, bytes), deterministic per seed.
    let truth = ground_truth(provider.base(), &queries, k);
    graphs::profile_reset();
    let found: Vec<Vec<u32>> = (0..nq)
        .map(|qi| {
            graphs::search_layers_cached(provider, &graph, &payloads, queries.get(qi), k, ef)
                .iter()
                .map(|h| h.id as u32)
                .collect()
        })
        .collect();
    let cost = graphs::profile_take();
    let recall = recall_at_k(&found, &truth, k).recall();

    use metrics::Json;
    let report = BenchReport {
        scenario: "hotpath".into(),
        seed,
        topology: "single-thread".into(),
        config: vec![
            ("base_n".into(), Json::uint(n as u64)),
            ("dim".into(), Json::uint(dim as u64)),
            ("ef".into(), Json::uint(ef as u64)),
            ("c".into(), Json::uint(c as u64)),
            ("r".into(), Json::uint(r as u64)),
            ("passes".into(), Json::uint(passes as u64)),
            ("parity".into(), Json::Bool(true)),
            ("zero_alloc_steady_state".into(), Json::Bool(zero_alloc)),
            // Per-kernel throughput nests under keys `strip_timings`
            // removes, so the structural remainder stays byte-stable.
            (
                "reference".into(),
                Json::Obj(vec![
                    ("qps".into(), Json::num(reference_qps)),
                    ("wall_seconds".into(), Json::num(reference_wall)),
                ]),
            ),
            (
                "hotpath".into(),
                Json::Obj(vec![
                    ("qps".into(), Json::num(hotpath_qps)),
                    ("wall_seconds".into(), Json::num(hotpath_wall)),
                ]),
            ),
            (
                "speedup".into(),
                Json::Obj(vec![("qps".into(), Json::num(speedup))]),
            ),
        ],
        queries: total as u64,
        wall_seconds: hotpath_wall,
        qps: hotpath_qps,
        latency: latency_summary(&lat_ms),
        k,
        recall_samples: nq as u64,
        recall_at_k: recall,
        cache: None,
        failover: None,
        transport: None,
        admission: None,
        profile: cost,
        slo: None,
        trace: None,
        mutations: metrics::MutationSummary::default(),
        tenants: Vec::new(),
    };
    let text = report.to_pretty_string();
    std::fs::write(&out, &text).map_err(io_err("write report"))?;

    // Self-check the artifact the same way `scenario` does.
    let reread = std::fs::read_to_string(&out).map_err(io_err("re-read report"))?;
    let json =
        metrics::Json::parse(&reread).map_err(|e| format!("emitted report does not parse: {e}"))?;
    metrics::BenchReport::validate(&json)
        .map_err(|e| format!("emitted report fails schema validation: {e}"))?;

    println!(
        "hotpath: queries={total} reference_qps={reference_qps:.0} hotpath_qps={hotpath_qps:.0} \
         speedup={speedup:.2}x parity=ok zero_alloc=ok recall@{k}={recall:.4}"
    );
    eprintln!("wrote {}", out.display());
    Ok(())
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let path = opts.path("graph")?;
    let graph = graphs::GraphLayers::load(&path).map_err(io_err("read graph"))?;
    println!("topology: {}", path.display());
    println!("  nodes:       {}", graph.len());
    println!("  layers:      {}", graph.max_layer + 1);
    println!("  entry point: {}", graph.entry);
    println!("  base edges:  {}", graph.base_edges());
    println!(
        "  mean degree: {:.2}",
        graph.base_edges() as f64 / graph.len().max(1) as f64
    );
    println!(
        "  adjacency:   {:.1} MB",
        graph.adjacency_bytes() as f64 / 1e6
    );
    Ok(())
}

fn io_err(what: &'static str) -> impl Fn(std::io::Error) -> String {
    move |e| format!("{what}: {e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> Opts {
        let args: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Opts::parse(&args).unwrap()
    }

    #[test]
    fn parses_key_value_pairs() {
        let o = opts(&[("n", "500"), ("base", "x.fvecs")]);
        assert_eq!(o.num("n", 0usize).unwrap(), 500);
        assert_eq!(o.required("base").unwrap(), "x.fvecs");
        assert!(o.str("missing").is_none());
        assert_eq!(o.num("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed_args() {
        assert!(Opts::parse(&["n".into()]).is_err(), "missing --");
        assert!(Opts::parse(&["--n".into()]).is_err(), "missing value");
        assert!(
            Opts::parse(&["--n".into(), "1".into(), "--n".into(), "2".into()]).is_err(),
            "duplicate option"
        );
    }

    #[test]
    fn boolean_flags_need_no_value() {
        let o = Opts::parse(&["--smoke".into(), "--n".into(), "5".into()]).unwrap();
        assert!(o.flag("smoke"));
        assert_eq!(o.num("n", 0usize).unwrap(), 5);
        let o = Opts::parse(&["--n".into(), "5".into()]).unwrap();
        assert!(!o.flag("smoke"));
        assert!(
            Opts::parse(&["--smoke".into(), "--smoke".into()]).is_err(),
            "duplicate flag"
        );
    }

    #[test]
    fn rejects_bad_numbers_and_profiles() {
        let o = opts(&[("n", "abc")]);
        assert!(o.num("n", 0usize).is_err());
        assert!(profile_by_name("nope").is_err());
        assert!(profile_by_name("laion-like").is_ok());
    }

    #[test]
    fn build_spec_defaults_follow_auto() {
        let o = opts(&[]);
        let spec = BuildSpec::from_opts(&o).unwrap();
        assert_eq!(spec.graph_kind, GraphKind::Hnsw);
        assert_eq!(spec.coding, Coding::Flash);
        // df/mf are unset: the auto defaults apply at build time.
        assert_eq!(spec.d_f, None);
        assert_eq!(spec.m_f, None);
    }

    #[test]
    fn unknown_method_fails_before_any_io() {
        // Validation happens at option-parse time, not deep in execution,
        // and the error names the accepted set.
        let o = opts(&[("method", "bogus")]);
        let err = BuildSpec::from_opts(&o).unwrap_err();
        assert!(err.contains("unknown method"), "{err}");
        assert!(
            err.contains("nsg"),
            "error must list accepted methods: {err}"
        );
        let o = opts(&[("method", "nsg:bogus")]);
        assert!(BuildSpec::from_opts(&o).is_err());
    }

    #[test]
    fn combined_method_strings_parse() {
        let o = opts(&[("method", "vamana:flash")]);
        let spec = BuildSpec::from_opts(&o).unwrap();
        assert_eq!(spec.graph_kind, GraphKind::Vamana);
        assert_eq!(spec.coding, Coding::Flash);
    }
}
