//! # hnsw-flash
//!
//! A Rust reproduction of **"Accelerating Graph Indexing for ANNS on Modern
//! CPUs"** (SIGMOD 2025): the **Flash** compact coding strategy and
//! access-aware memory layout that speed up HNSW/NSG/τ-MG construction by
//! an order of magnitude, plus every baseline and substrate the paper's
//! evaluation depends on — all served through one engine API.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! | Module | Contents |
//! |---|---|
//! | [`engine`] | **the serving API**: `AnnIndex`, `SearchRequest`/`SearchResponse`, `IndexBuilder`, `GraphKind` × `Coding` |
//! | [`serving`] | **the query runtime**: `ShardedIndex` scatter-gather, `ReplicaGroup` failover routing, `BatchExecutor`, `QueryCache`, `FaultPlan` injection, cross-process nodes (`serving::distributed`) |
//! | [`scenario`] | **the workload harness**: seeded `WorkloadSpec` → deterministic event streams (Zipf, diurnal, churn, fault storms), `ScenarioRunner` over any topology, `BENCH_*.json` reports |
//! | [`flash`] | the paper's contribution: `FlashCodec`, `FlashProvider`, `FlashHnsw` |
//! | [`graphs`] | generic HNSW, NSG, τ-MG, Vamana, HCNNG; filtered search; ADSampling & VBase search variants |
//! | [`quantizers`] | PQ / SQ / PCA baselines, OPQ, + the Theorem-1 reliability estimator |
//! | [`maintenance`] | LSM lifecycle: memtable, Flash segments, tombstones, rebuild |
//! | [`vecstore`] | datasets, generators, `fvecs` I/O, ground truth |
//! | [`simdops`] | runtime-dispatched SIMD kernels (SSE/AVX2/AVX-512) |
//! | [`metrics`] | recall, ADR, QPS, phase timers; request tracing (`TraceContext`/`SpanRing`) and the named metrics registry |
//! | [`cachesim`] | the software cache model used for the memory ablations |
//! | [`linalg`] | dense matrices, covariance, Jacobi eigendecomposition |
//!
//! ## Quickstart
//!
//! Pick a graph algorithm and a coding method, build, and search — every
//! combination serves through the same [`engine::AnnIndex`] trait object:
//!
//! ```
//! use hnsw_flash::prelude::*;
//!
//! // Synthetic stand-in for an embedding dataset (see `vecstore::gen`).
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 1_000, 10, 7);
//!
//! // Build HNSW through Flash codes: PCA → 4-bit subspace codewords →
//! // register-resident distance tables.
//! let index = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash)
//!     .c(96)
//!     .r(12)
//!     .seed(1)
//!     .build(base);
//!
//! // Search with exact reranking on the original vectors.
//! let response = index.search(&SearchRequest::new(queries.get(0), 5).ef(64).rerank(8));
//! assert_eq!(response.hits.len(), 5);
//! ```
//!
//! ## Sharded serving
//!
//! For heavy traffic, wrap the same builder in the [`serving`] runtime:
//! partition the dataset across shards searched by a worker-thread pool,
//! put a result cache in front, and drive batched workloads with
//! latency/QPS accounting (see `examples/sharded_serving.rs`):
//!
//! ```
//! use hnsw_flash::prelude::*;
//! use std::sync::Arc;
//!
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 1_000, 10, 7);
//! let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash).c(96).r(12).seed(1);
//!
//! // 4 shards, 4 worker threads, 1 024 cached responses — still an AnnIndex.
//! let sharded = ShardedIndex::build(base, &builder, 4, ShardPolicy::RoundRobin, 4);
//! let index: Arc<dyn AnnIndex> = Arc::new(CachedIndex::new(Arc::new(sharded), 1_024));
//!
//! let mut executor = BatchExecutor::new(index).batch_size(8);
//! executor.submit_all((0..queries.len()).map(|qi| {
//!     SearchRequest::new(queries.get(qi), 5).ef(64).rerank(8)
//! }));
//! let report = executor.run();
//! assert_eq!(report.responses.len(), queries.len());
//! println!("QPS {:.0}, p99 {:.3} ms", report.qps.qps(), report.latency().p99_ms);
//! ```
//!
//! ## Replicated serving with failover
//!
//! To survive replica loss, build R copies of every shard behind failover
//! routing: the coding codec is trained **once** on the full corpus and
//! shared by every shard × replica, construction is deterministic, so the
//! copies are bit-identical — and a replica failure is transparently
//! retried on a sibling with *identical* results. Failed replicas are
//! marked down after [`serving::HealthConfig::error_threshold`]
//! consecutive errors and probed back with live traffic after
//! `probe_after` calls; every transition bumps a generation you can sync
//! into a `QueryCache` (see `examples/replicated_serving.rs`):
//!
//! ```
//! use hnsw_flash::prelude::*;
//!
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 1_000, 10, 7);
//! let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash).c(96).r(12).seed(1);
//!
//! // 4 shards x 2 replicas, round-robin routing, 4 worker threads.
//! let fleet = ReplicatedIndex::build(
//!     base,
//!     &builder,
//!     4,
//!     2,
//!     ShardPolicy::RoundRobin,
//!     RoutingPolicy::RoundRobin,
//!     HealthConfig::default(),
//!     4,
//! );
//! let response = fleet.search(&SearchRequest::new(queries.get(0), 5).ef(64).rerank(8));
//! assert_eq!(response.hits.len(), 5);
//! let stats = fleet.failover_stats(); // retries / mark-downs / probes
//! assert_eq!(stats.markdowns, 0);
//! ```
//!
//! Routing policies ([`serving::RoutingPolicy`]):
//!
//! | Policy | Placement | Use when |
//! |---|---|---|
//! | `Primary` | Lowest-indexed healthy replica; siblings are failover spares | Warm caches matter more than spreading load |
//! | `RoundRobin` | Rotate across healthy replicas call by call | Uniform load, uniform replicas (the default in `flash_cli`) |
//! | `LoadAware` | Healthy replica with the least accumulated search latency | Heterogeneous or intermittently slow replicas |
//!
//! Faults are injected deterministically for tests and demos via
//! [`serving::FaultPlan`] (error-on-Nth-call, latency spikes, permanent
//! death, scripted recovery) wrapped around any index with
//! [`serving::FaultyIndex`]; `tests/replication.rs` proves bit-identical
//! failover for every routing policy with each replica killed in turn.
//!
//! ## Distributed serving
//!
//! Shards and replicas can live in **other processes**
//! ([`serving::distributed`]): a node hosts any `AnnIndex` behind a
//! socket ([`serving::NodeServer`], or `flash_cli serve-node`), and the
//! coordinator's [`serving::RemoteIndex`] client implements both
//! `AnnIndex` *and* [`serving::FallibleIndex`] — so remote nodes compose
//! under the existing `ShardedIndex` / `ReplicaGroup` / `CachedIndex`
//! stack unchanged, and a node crash is handled by the same mark-down +
//! probed-recovery path as a local fault (the probe re-dials, so a
//! restarted node rejoins by itself). The wire protocol is versioned,
//! length-prefixed, checksummed, explicit little-endian; predicate
//! filters don't cross the wire (closures have no byte form — label
//! filters do).
//!
//! Node side (one process per shard or replica):
//!
//! ```no_run
//! use hnsw_flash::prelude::*;
//! use hnsw_flash::serving::distributed::{NodeAddr, NodeHandler, NodeServer};
//! use std::sync::Arc;
//!
//! # let (base, _) = generate(&DatasetProfile::SsnppLike.spec(), 1_000, 1, 7);
//! let index: Arc<dyn AnnIndex> =
//!     Arc::from(IndexBuilder::new(GraphKind::Hnsw, Coding::Flash).seed(1).build(base));
//! let server = NodeServer::bind(
//!     &"tcp:0.0.0.0:4810".parse::<NodeAddr>().unwrap(),
//!     NodeHandler::new(index),
//!     4, // concurrent coordinator connections
//! ).expect("bind");
//! println!("serving on {}", server.addr());
//! ```
//!
//! Coordinator side — remote nodes under the unchanged serving stack
//! (shown with the in-memory loopback transport; swap in
//! [`serving::SocketTransport`]`::connect("tcp:host:4810".parse()?)` for
//! real sockets, see `examples/distributed_serving.rs`):
//!
//! ```
//! use hnsw_flash::prelude::*;
//! use hnsw_flash::serving::distributed::{LoopbackTransport, NodeHandler, RemoteIndex};
//! use std::sync::Arc;
//!
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 600, 4, 7);
//! let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash).c(48).r(8).seed(1);
//!
//! // One "remote" node per shard (same codec + partition as the nodes).
//! let codec = builder.train_codec(&base);
//! let parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> =
//!     ShardedIndex::partition(&base, 2, ShardPolicy::RoundRobin)
//!         .into_iter()
//!         .map(|(set, ids)| {
//!             let node: Arc<dyn AnnIndex> = Arc::from(builder.build_with_codec(set, &codec));
//!             let transport = Arc::new(LoopbackTransport::new(NodeHandler::new(node)));
//!             let remote = RemoteIndex::connect(transport).expect("handshake");
//!             (Box::new(remote) as Box<dyn AnnIndex>, ids)
//!         })
//!         .collect();
//! let coordinator = ShardedIndex::from_parts(
//!     parts,
//!     ShardPolicy::RoundRobin,
//!     Arc::new(WorkerPool::new(2)),
//! );
//! let response = coordinator.search(&SearchRequest::new(queries.get(0), 5).ef(64).rerank(8));
//! assert_eq!(response.hits.len(), 5);
//! ```
//!
//! Transports ([`serving::distributed::Transport`]):
//!
//! | Transport | Reaches | Use when |
//! |---|---|---|
//! | [`serving::LoopbackTransport`] | This process (full codec round-trip, zero I/O) | Tests, demos, deterministic fault drills |
//! | [`serving::SocketTransport`] + `unix:/path.sock` | Another process on this host | Lowest-overhead local fleets |
//! | [`serving::SocketTransport`] + `tcp:host:port` | Another machine | Real distribution |
//!
//! For replica fault tolerance across processes, put one `RemoteIndex`
//! per replica node into a [`serving::ReplicaGroup`] per shard (the
//! `examples/distributed_serving.rs` demo kills a node mid-run and the
//! results don't change); `flash_cli search --nodes a,b,...` drives the
//! one-node-per-shard layout from the command line.
//!
//! ## Serving under load
//!
//! [`serving::NodeServer`] dedicates a pooled worker to each connection —
//! simple, but a fleet of slow clients parks the whole pool.
//! [`serving::EventServer`] is the event-driven front-end behind the same
//! [`serving::NodeHandler`] and wire protocol (`flash_cli serve-node
//! --event-loop`): each of [`serving::EventConfig::threads`] readiness
//! loops multiplexes *all* of its connections over non-blocking sockets,
//! so one loop serves any number of clients and a connection can keep
//! many frames in flight (pipelining) — replies always return in that
//! connection's request order.
//!
//! Parsed requests enter a per-loop admission queue that executes as an
//! adaptive batch — closing on size (`batch_max`) **or** age
//! (`batch_deadline`), whichever comes first, the same policy
//! [`serving::AdaptiveBatcher`] exposes for in-process use. Two knobs
//! bound the queue:
//!
//! * `client_quota` — per-connection in-flight cap; past it the loop
//!   simply stops reading that socket, and TCP backpressure slows the
//!   sender (no frames are dropped).
//! * `queue_deadline` — admission deadline; a request still queued past
//!   it is **shed** with an `Overloaded` error frame instead of being
//!   served late.
//!
//! `Overloaded` maps to [`serving::FaultKind::Transient`] on the client,
//! so a [`serving::ReplicaGroup`] retries a shed request on a sibling —
//! sustained shedding marks the replica down and probes it back, the
//! same path a crash takes. Under overload every submitted frame is
//! answered — results or `Overloaded`, never silence. Admission is
//! observable end to end: [`serving::EventServer::admission_stats`]
//! counts admitted/shed, the registry exports
//! `serving.frontend.{admitted,shed,queue_depth,admission_wait_ns}`, a
//! traced request that queued records a `queue_wait` span, and
//! `flash_cli bench-serve` drills blocking vs event-driven servers and
//! an overload flood from the command line. The `overload` scenario
//! replays the same policy in virtual time, so its
//! admitted/shed/retried counters are byte-reproducible across runs.
//!
//! ## Scenario benchmarking
//!
//! Point benchmarks answer "how fast is a search"; the [`scenario`]
//! harness answers "how does the whole serving stack behave under
//! realistic traffic, and did this commit change that". A
//! [`scenario::WorkloadSpec`] lowers a seed into a deterministic event
//! stream — Zipf-skewed query popularity over a pool, Poisson arrivals
//! shaped steady/diurnal/bursty, labeled and predicate-filtered queries,
//! multi-tenant attribution, interleaved LSM insert/delete bursts, and
//! scripted replica fault storms — and [`scenario::ScenarioRunner`]
//! replays it against any topology (flat, sharded, replicated, cached,
//! remote nodes), checks a sampled query subset against a brute-force
//! oracle over the *live* vector set, and emits a `metrics::BenchReport`.
//!
//! The named catalog ([`scenario::SCENARIO_NAMES`], also
//! `flash_cli scenario --name <id> [--smoke]`):
//!
//! | Scenario | Stresses | Key metric |
//! |---|---|---|
//! | `steady_zipf` | sharded fan-out + `QueryCache` under Zipf-skewed popularity | cache hit rate |
//! | `diurnal_burst` | batch executor + QPS through trough-to-peak diurnal swings | p99 / p999 latency |
//! | `churn_lsm` | LSM overlay merge + cache generation invalidation under churn | recall\@k under churn |
//! | `fault_storm` | replica markdown, probing, recovery (replica 0 survives) | recall parity + failover counters |
//! | `overload` | admission control: bursty queueing, deadline shedding, `Overloaded` retries | admitted/shed/retried counters |
//!
//! Each run writes `BENCH_<scenario>.json` with a stable schema:
//! `schema_version`, `scenario`, `seed`, `topology`, `config` (the spec
//! echo), `queries`, `qps`, `latency_ms` (`mean`/`p50`/`p95`/`p99`/
//! `p999`/`max`), `recall` (`k`/`samples`/`recall_at_k`), `cache`
//! (hits/misses/uncacheable), `failover` (retries/markdowns/probes/
//! recoveries), `transport` (frames/bytes/timeouts), `admission`
//! (submitted/admitted/shed/retried/max_depth), `mutations`, and
//! per-tenant latency summaries. Identical seed + topology reproduces
//! every **non-timing** field byte-for-byte — `metrics::strip_timings`
//! removes exactly the timing keys (`qps`, `wall_seconds`, `latency_ms`)
//! so trajectories can be diffed across commits:
//!
//! ```
//! use hnsw_flash::prelude::*;
//!
//! // A tiny custom workload; `scenario::by_name("steady_zipf", true)`
//! // gives the catalog presets instead.
//! let mut spec = WorkloadSpec::base(42);
//! spec.base_n = 300;
//! spec.ticks = 4;
//! spec.arrival = ArrivalShape::Steady { rate: 10.0 };
//! spec.build_c = 32;
//!
//! let report = ScenarioRunner::new("demo", spec, TopologySpec::Flat)
//!     .cache_capacity(64)
//!     .run()
//!     .unwrap();
//! let json = metrics::Json::parse(&report.to_pretty_string()).unwrap();
//! metrics::BenchReport::validate(&json).unwrap();
//! assert!(report.queries > 0);
//! assert_eq!(strip_timings(&json), strip_timings(&json));
//! ```
//!
//! ## Observability
//!
//! The stack traces itself deterministically: attach a
//! [`metrics::TraceContext`] to a [`engine::SearchRequest`] and every
//! serving layer the request crosses records typed spans into a
//! lock-free [`metrics::SpanRing`] — trace ids derive from
//! `(seed, sequence)` via [`metrics::trace_id_for`], never from the
//! clock, so two identically-seeded runs produce byte-identical span
//! structure (only `elapsed_ns` differs, and
//! [`metrics::strip_timings`] removes it).
//!
//! The span taxonomy, one layer per row:
//!
//! | Span | Recorded by | Payload |
//! |---|---|---|
//! | `cache_lookup` | [`serving::CachedIndex`] | `hit` |
//! | `route` | [`serving::ReplicaGroup`] | `candidates` planned |
//! | `replica_attempt` | [`serving::ReplicaGroup`] | `replica`, `outcome` (`ok`/`transient`/`dead`/`malformed`) |
//! | `shard_fanout` | [`serving::ShardedIndex`] | `shards` |
//! | `gather` | [`serving::ShardedIndex`] | `merged` candidates |
//! | `rerank` | scenario runner / CLI | full-precision `pool` size |
//! | `wire_exchange` | [`serving::distributed::Transport`] + node | exact `bytes_out` / `bytes_in` |
//! | `queue_wait` | [`serving::EventServer`] admission queue / scenario runner | queue `depth` at enqueue |
//!
//! Spans carry a *lane* (`None` = coordinator strand, `Some(shard)` =
//! that shard's strand) so concurrent fan-out still folds into one
//! canonical order. Across the wire, the frame header carries the trace
//! id, the node records its own `wire_exchange` spans into its ring,
//! and a `Message::StatsRequest` scrape (`flash_cli stats --node
//! <addr>`) returns them with the node's transport ledger for stitching.
//!
//! ```
//! use hnsw_flash::prelude::*;
//! use std::sync::Arc;
//!
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 600, 4, 7);
//! let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash).c(48).r(8).seed(1);
//! let sharded = ShardedIndex::build(base, &builder, 2, ShardPolicy::RoundRobin, 2);
//! let index = CachedIndex::new(Arc::new(sharded), 64);
//!
//! // One ring per process (or per run); one context per request.
//! let ring = Arc::new(SpanRing::new(1024));
//! let id = trace_id_for(42, 0); // (seed, sequence) — no wall clock
//! let req = SearchRequest::new(queries.get(0), 5)
//!     .ef(64)
//!     .rerank(8)
//!     .trace(TraceContext::new(Arc::clone(&ring), id));
//! assert_eq!(index.search(&req).hits.len(), 5);
//!
//! // The spans tell the request's story: a cache miss fanned out to
//! // both shards, whose candidates were gathered and merged.
//! let spans = ring.for_trace(id);
//! assert!(spans.iter().any(|s| matches!(s.kind, SpanKind::CacheLookup { hit: false })));
//! assert!(spans.iter().any(|s| matches!(s.kind, SpanKind::ShardFanout { shards: 2 })));
//! assert!(spans.iter().any(|s| matches!(s.kind, SpanKind::Gather { .. })));
//!
//! // Live named metrics: `layer.component.metric` names, JSON snapshot.
//! let registry = MetricsRegistry::global();
//! registry.counter("docs.example.requests").inc();
//! assert!(registry.names().iter().any(|n| n == "docs.example.requests"));
//! assert!(registry.snapshot().to_pretty_string().contains("docs.example.requests"));
//! ```
//!
//! Registry names follow `layer.component.metric` (dotted lower-snake,
//! e.g. `serving.cache.query_cache`, `serving.replica.failover`,
//! `scenario.trace.ring`); [`scenario::ScenarioRunner`] publishes its
//! stack's live counters under those names on every run, and
//! [`metrics::MetricsRegistry::register_source`] adopts any existing
//! stats object without changing its type.
//!
//! From the command line: `flash_cli search … --trace-out spans.jsonl`
//! and `flash_cli scenario --name steady_zipf --trace-out spans.jsonl`
//! write one compact JSON span tree per query;
//! `flash_cli stats --node tcp:host:4810` scrapes a live node's
//! info/transport/span snapshot. `BENCH_*.json` reports carry a `trace`
//! summary (span counts structural, per-stage milliseconds
//! timing-stripped).
//!
//! ### Query cost profiles
//!
//! Every [`engine::SearchResponse`] carries a
//! [`metrics::QueryProfile`]: structural counters of the work done to
//! serve that request, accumulated branchlessly inside the pooled
//! search scratch, deterministic per `(seed, topology)`. The glossary:
//!
//! | Counter | Counts |
//! |---|---|
//! | `hops_upper` | node expansions above the base layer (greedy descent) |
//! | `hops_base` | node expansions in the base-layer beam |
//! | `dist_coded` | distance evaluations through a coded provider (PQ/SQ/PCA/OPQ/Flash) |
//! | `dist_exact` | full-precision distance evaluations (flat scans, rerank) |
//! | `rows_scored` | neighbor-block rows scored by the block kernel |
//! | `codeword_bytes` | compressed payload bytes streamed through the kernel |
//! | `visited_inserts` | visited-set insertions (frontier pressure) |
//! | `rerank_pool` | candidates re-scored at full precision |
//! | `scratch_checkouts` | pooled scratch checkouts (1 per frozen-graph search) |
//!
//! Leaf indexes measure; every aggregating layer —
//! [`serving::ShardedIndex`], [`serving::ReplicaGroup`],
//! [`serving::distributed::RemoteIndex`] (the nine counters ride the
//! wire next to the hits) — *sums* the profiles of the leaf searches it
//! fanned out to, and a [`serving::CachedIndex`] hit reports an
//! all-zero profile, so a coordinator's aggregate reconciles exactly
//! with the node-side ledgers ([`serving::distributed::NodeStats`]
//! `profile`, summed over every search a node served):
//!
//! ```
//! use hnsw_flash::prelude::*;
//! use std::sync::Arc;
//!
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 600, 2, 7);
//! let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash).c(48).r(8).seed(1);
//! let sharded = ShardedIndex::build(base, &builder, 2, ShardPolicy::RoundRobin, 2);
//! let index = CachedIndex::new(Arc::new(sharded), 64);
//!
//! // The cache miss pays the graph walk, and its profile proves it...
//! let miss = index.search(&SearchRequest::new(queries.get(0), 5).ef(64).rerank(8));
//! assert!(miss.profile.hops_base > 0, "a real search hops the base layer");
//! assert!(miss.profile.dist_coded + miss.profile.dist_exact > 0);
//!
//! // ...while the repeat is served from memory with an all-zero
//! // profile, keeping coordinator sums equal to node-side work.
//! let hit = index.search(&SearchRequest::new(queries.get(0), 5).ef(64).rerank(8));
//! assert_eq!(hit.profile, hnsw_flash::metrics::QueryProfile::new());
//! ```
//!
//! ### The scrape plane and SLO guardrails
//!
//! `flash_cli serve-node … --metrics-addr 127.0.0.1:9100` opens an HTTP
//! responder ([`serving::distributed::ScrapeServer`]) next to the wire
//! listener. `GET /metrics` renders the process registry in OpenMetrics
//! text exposition (counters as `_total` families, log₂ histograms as
//! cumulative `le` buckets, `# EOF` terminated), `/healthz` answers
//! `200 ok` / `503 degraded`, `/varz` dumps the node's stats snapshot:
//!
//! ```text
//! $ curl -s http://127.0.0.1:9100/metrics
//! # TYPE graphs_scratch_checkouts gauge
//! # HELP graphs_scratch_checkouts graphs.scratch.checkouts
//! graphs_scratch_checkouts 4096
//! # TYPE node_profile_dist_coded gauge
//! ...
//! # EOF
//! $ curl -s http://127.0.0.1:9100/healthz
//! ok
//! ```
//!
//! The names a scrape can rely on, `layer.component.metric` dotted (the
//! exposition sanitizes dots to underscores):
//!
//! | Name | Source |
//! |---|---|
//! | `graphs.scratch.{created,checkouts}` | pooled-scratch lifetime counters ([`graphs::scratch_stats`]) |
//! | `node.profile.*` | the node's cumulative [`metrics::QueryProfile`] ledger |
//! | `node.transport.*` | node-side frame/byte counters (reconcile against `StatsRequest`) |
//! | `serving.frontend.{admitted,shed,queue_depth,admission_wait_ns}` | [`serving::EventServer`] admission control |
//! | `serving.cache.query_cache` / `serving.replica.failover` | scenario-run stack sources |
//! | `scenario.trace.dropped` | spans lost to ring wrap (alert when nonzero) |
//! | `scenario.slo` | the last run's [`metrics::SloSummary`] verdict |
//!
//! Health is judged by multi-window burn rates ([`metrics::SloTracker`]
//! on virtual ticks in scenarios, [`metrics::SloGuard`] on wall time in
//! serving): an objective breaches when both its fast- and slow-window
//! error-budget burn exceed their thresholds, which flips `/healthz` to
//! degraded (event-loop nodes watch their shed fraction) and lands in
//! `BenchReport.slo`. `flash_cli bench-diff --old A.json --new B.json`
//! then gates CI: structural fields exact, timing fields within a ratio
//! band, nonzero exit on regression.
//!
//! ## Memory layout
//!
//! Graph search is memory-bound — the paper's profiles (Table 2, Figure
//! 15) show most cycles stall on cache misses chasing neighbor lists and
//! codes, not arithmetic — so the frozen representation and the search
//! kernels are built around three layout decisions:
//!
//! 1. **CSR adjacency.** Builders ([`graphs::Hnsw`], [`graphs::Nsg`],
//!    [`graphs::TauMg`], [`graphs::Vamana`], [`graphs::Hcnng`]) grow
//!    nested `Vec<Vec<u32>>` lists under per-node locks, then `freeze()`
//!    once into [`graphs::CsrLayer`]: a flat pool of 64-byte-aligned
//!    cache lines ([`graphs::LINE_U32S`] = 16 neighbor ids per line) plus
//!    per-node start/length tables. Every neighbor list begins on a line
//!    boundary, so expanding a node touches `ceil(degree/16)` lines and
//!    never straddles one unnecessarily. Frozen graphs are constructed
//!    via [`graphs::GraphLayers::from_nested`] /
//!    [`graphs::FlatGraph::from_nested`] and read through
//!    `neighbors(layer, node)` — the adjacency fields themselves are
//!    private, so the layout can keep evolving without breaking callers.
//!
//! 2. **Pooled, allocation-free search state.** Each query checks a
//!    `SearchScratch` out of a thread-local pool instead of allocating a
//!    fresh `vec![false; n]` visited map and new `BinaryHeap`s: the
//!    visited set is epoch-stamped (clearing is a counter bump, not a
//!    memset), and the frontier/result heaps and block-score buffers are
//!    reused across queries. [`graphs::scratch_stats`] exposes
//!    `created`/`checkouts` counters; in steady state `created` stays
//!    flat while `checkouts` climbs — the zero-allocation property the
//!    test suite asserts directly.
//!
//! 3. **Block-scored expansion with prefetch.** Kernels score a whole
//!    neighbor line through [`graphs::DistanceProvider::dist_to_neighbors`]
//!    (register-resident `lut16_batch` shuffles on the Flash path)
//!    instead of per-neighbor `dist_to` calls, and while the current
//!    block is scored they issue [`graphs::DistanceProvider::prefetch`]
//!    for the next frontier candidate's codes plus a software prefetch of
//!    its neighbor line — the lines are in flight before the beam
//!    arrives. For frozen-topology *serving*, [`graphs::NodePayloads`]
//!    prebuilds every node's codeword block once (the serving half of the
//!    paper's access-aware layout) and
//!    [`graphs::search_layers_cached`] reads it instead of rebuilding a
//!    block per expansion. All of this is bit-exact: the same
//!    `(dist, id)` results as the naive loop, enforced by the parity
//!    suites.
//!
//! `flash_cli hotpath` measures the payoff: it runs the same queries
//! through a naive per-neighbor reference kernel and the production
//! hot path, asserts the results are identical, and emits
//! `BENCH_hotpath.json` through the usual metrics schema. Read it as
//! `config.reference.qps` vs `config.hotpath.qps` (plus the
//! `speedup` ratio); [`metrics::strip_timings`] removes the QPS numbers
//! so the structural remainder is byte-stable for CI diffing.
//!
//! ## Migrating from the per-type APIs
//!
//! The concrete index types still exist (construction-time features like
//! streaming inserts and freezing live there), but serving code should use
//! the engine. Old entry points map as follows:
//!
//! | Pre-engine call | Engine call |
//! |---|---|
//! | `FlashHnsw::build_flash(base, fp, hp)` | `IndexBuilder::new(GraphKind::Hnsw, Coding::Flash).flash_params(fp).c(hp.c).r(hp.r).seed(hp.seed).build(base)` |
//! | `Hnsw::build(FullPrecision::new(base), hp)` | `IndexBuilder::new(GraphKind::Hnsw, Coding::Full)…build(base)` |
//! | `Hnsw::build(PqProvider::new(…), hp)` (likewise SQ/PCA/OPQ) | `IndexBuilder::new(GraphKind::Hnsw, Coding::Pq)…build(base)` |
//! | `build_flash_nsg` / `build_flash_taumg` / `build_flash_vamana` / `build_flash_hcnng` | `IndexBuilder::new(GraphKind::Nsg \| TauMg \| Vamana \| Hcnng, Coding::Flash)…build(base)` |
//! | `index.search(q, k, ef)` | `index.search(&SearchRequest::new(q, k).ef(ef))` |
//! | `index.search_rerank(q, k, ef, f)` | `…SearchRequest::new(q, k).ef(ef).rerank(f)` |
//! | `index.search_filtered(q, k, ef, &accept)` | `…SearchRequest::new(q, k).ef(ef).filter(accept)` |
//! | `search_vbase(provider, &graph, q, k, w)` | `…SearchRequest::new(q, k).vbase(w)` |
//! | `AdSampler::new(…).search(…)` | `…SearchRequest::new(q, k).adsampling(AdSamplingOptions::default())` |
//! | `LabeledHnsw::build(…)` + `search(q, label, k, ef)` | `IndexBuilder…build_labeled(…)` + `…SearchRequest::new(q, k).label(label)` |
//! | `search_layers(provider, &loaded, …)` (serve a persisted topology) | `IndexBuilder…serve(base, loaded)` |
//! | `graphs::SearchResult` / `maintenance::Hit` | the single [`engine::Hit`] (`id: u64`) |
//!
//! The legacy free functions and inherent methods delegate to the same
//! internals the engine uses, so mixed codebases stay consistent during a
//! migration. One layout-driven exception: the deprecated
//! `graphs::SearchResult` alias survives, but code that built
//! [`graphs::GraphLayers`] / [`graphs::FlatGraph`] values by filling
//! their fields must switch to `from_nested` / `from_flat` and the
//! `neighbors()` accessors — the nested `Vec<Vec<u32>>` fields were
//! replaced by the private CSR layout described under
//! [Memory layout](#memory-layout).

pub use cachesim;
pub use engine;
pub use flash;
pub use graphs;
pub use linalg;
pub use maintenance;
pub use metrics;
pub use quantizers;
pub use scenario;
pub use serving;
pub use simdops;
pub use vecstore;

/// The most common imports in one place.
pub mod prelude {
    pub use engine::{
        parse_method, AdSamplingOptions, AnnIndex, Coding, FlatIndex, GraphKind, Hit, IndexBuilder,
        SearchRequest, SearchResponse, TrainedCodec,
    };
    pub use flash::{
        build_flash_hcnng, build_flash_nsg, build_flash_taumg, build_flash_vamana,
        tune_flash_params, BuildFlash, FlashCodec, FlashHcnng, FlashHnsw, FlashNsg, FlashParams,
        FlashProvider, FlashTauMg, FlashVamana, TuneOptions, TuneOutcome,
    };
    pub use graphs::providers::{FullPrecision, OpqProvider, PcaProvider, PqProvider, SqProvider};
    #[allow(deprecated)] // kept for pre-engine call sites; prefer `Hit`
    pub use graphs::SearchResult;
    pub use graphs::{
        DistanceProvider, Hcnng, HcnngParams, Hnsw, HnswParams, LabeledHnsw, LabeledParams, Nsg,
        NsgParams, TauMg, TauMgParams, Vamana, VamanaParams,
    };
    pub use maintenance::{CycleWorkload, LsmConfig, LsmVectorIndex};
    pub use metrics::{
        average_distance_ratio, collect_traces, measure_qps, recall_at_k, strip_timings,
        trace_id_for, BenchReport, MetricsRegistry, PhaseTimer, SpanKind, SpanRecord, SpanRing,
        TraceContext,
    };
    pub use quantizers::{
        comparison_reliability, OptimizedProductQuantizer, PcaCodec, ProductQuantizer,
        ScalarQuantizer,
    };
    pub use scenario::{
        AdmissionSpec, ArrivalShape, FaultStorm, Scenario, ScenarioCorpus, ScenarioRunner,
        TopologySpec, WorkloadSpec,
    };
    pub use serving::{
        AdaptiveBatcher, AdmissionStats, BatchExecutor, BatchReport, CachedIndex, EventConfig,
        EventServer, FallibleIndex, FaultError, FaultKind, FaultPlan, FaultyIndex, HealthConfig,
        LoopbackTransport, NodeAddr, NodeHandler, NodeInfo, NodeServer, NodeStats, QueryCache,
        RemoteIndex, ReplicaGroup, ReplicatedIndex, Router, RoutingPolicy, ShardPolicy,
        ShardedIndex, SocketTransport, Transport, WorkerPool,
    };
    pub use simdops::{set_level_override, SimdLevel};
    pub use vecstore::{generate, ground_truth, DatasetProfile, DatasetSpec, VectorSet};
}
