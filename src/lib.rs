//! # hnsw-flash
//!
//! A Rust reproduction of **"Accelerating Graph Indexing for ANNS on Modern
//! CPUs"** (SIGMOD 2025): the **Flash** compact coding strategy and
//! access-aware memory layout that speed up HNSW/NSG/τ-MG construction by
//! an order of magnitude, plus every baseline and substrate the paper's
//! evaluation depends on.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! | Module | Contents |
//! |---|---|
//! | [`flash`] | the paper's contribution: `FlashCodec`, `FlashProvider`, `FlashHnsw` |
//! | [`graphs`] | generic HNSW, NSG, τ-MG, Vamana, HCNNG; filtered search; ADSampling & VBase search variants |
//! | [`quantizers`] | PQ / SQ / PCA baselines, OPQ, + the Theorem-1 reliability estimator |
//! | [`maintenance`] | LSM lifecycle: memtable, Flash segments, tombstones, rebuild |
//! | [`vecstore`] | datasets, generators, `fvecs` I/O, ground truth |
//! | [`simdops`] | runtime-dispatched SIMD kernels (SSE/AVX2/AVX-512) |
//! | [`metrics`] | recall, ADR, QPS, phase timers |
//! | [`cachesim`] | the software cache model used for the memory ablations |
//! | [`linalg`] | dense matrices, covariance, Jacobi eigendecomposition |
//!
//! ## Quickstart
//!
//! ```
//! use hnsw_flash::prelude::*;
//!
//! // Synthetic stand-in for an embedding dataset (see `vecstore::gen`).
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 1_000, 10, 7);
//!
//! // Build HNSW through Flash codes: PCA → 4-bit subspace codewords →
//! // register-resident distance tables.
//! let index = FlashHnsw::build_flash(
//!     base,
//!     FlashParams::auto(256),
//!     HnswParams { c: 96, r: 12, seed: 1 },
//! );
//!
//! // Search with exact reranking on the original vectors.
//! let hits = index.search_rerank(queries.get(0), 5, 64, 8);
//! assert_eq!(hits.len(), 5);
//! ```

pub use cachesim;
pub use flash;
pub use graphs;
pub use linalg;
pub use maintenance;
pub use metrics;
pub use quantizers;
pub use simdops;
pub use vecstore;

/// The most common imports in one place.
pub mod prelude {
    pub use flash::{
        build_flash_hcnng, build_flash_nsg, build_flash_taumg, build_flash_vamana,
        tune_flash_params, BuildFlash, FlashCodec, FlashHcnng, FlashHnsw, FlashNsg, FlashParams,
        FlashProvider, FlashTauMg, FlashVamana, TuneOptions, TuneOutcome,
    };
    pub use graphs::providers::{FullPrecision, OpqProvider, PcaProvider, PqProvider, SqProvider};
    pub use graphs::{
        DistanceProvider, Hcnng, HcnngParams, Hnsw, HnswParams, LabeledHnsw, LabeledParams, Nsg,
        NsgParams, SearchResult, TauMg, TauMgParams, Vamana, VamanaParams,
    };
    pub use maintenance::{CycleWorkload, LsmConfig, LsmVectorIndex};
    pub use metrics::{average_distance_ratio, measure_qps, recall_at_k, PhaseTimer};
    pub use quantizers::{
        comparison_reliability, OptimizedProductQuantizer, PcaCodec, ProductQuantizer,
        ScalarQuantizer,
    };
    pub use simdops::{set_level_override, SimdLevel};
    pub use vecstore::{generate, ground_truth, DatasetProfile, DatasetSpec, VectorSet};
}
