//! Offline stand-in for `rayon`.
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! `par_iter` / `into_par_iter` / `par_iter_mut` entry points the workspace
//! uses, executing **sequentially** on the calling thread. Each adapter
//! returns the corresponding standard iterator, so every downstream
//! combinator (`map`, `filter`, `for_each`, `collect`, `sum`, …) is the
//! `std::iter` one.
//!
//! Sequential execution is a feature here, not just a fallback: graph
//! construction becomes fully deterministic for a given seed, which the
//! engine-parity tests in `tests/engine_api.rs` rely on. When a real
//! `rayon` is available again, swapping the path dependency back restores
//! parallelism without touching any call site (the parity tests then
//! compare like-built indexes, so they keep passing).

pub mod iter {
    //! Sequential "parallel iterator" entry points.

    /// A sequential iterator posing as a rayon parallel iterator.
    ///
    /// Delegates [`Iterator`] wholesale; the inherent `map` / `filter` /
    /// `reduce` mirror the rayon signatures that differ from `std` (rayon's
    /// `reduce` takes an identity closure), staying inside `SeqIter` so the
    /// rayon-shaped methods remain reachable mid-chain.
    pub struct SeqIter<I>(pub I);

    impl<I: Iterator> Iterator for SeqIter<I> {
        type Item = I::Item;
        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: Iterator> SeqIter<I> {
        /// rayon-compatible `map`.
        pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> SeqIter<std::iter::Map<I, F>> {
            SeqIter(self.0.map(f))
        }

        /// rayon-compatible `filter`.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> SeqIter<std::iter::Filter<I, F>> {
            SeqIter(self.0.filter(f))
        }

        /// rayon's `flat_map_iter` (sequentially identical to `flat_map`).
        pub fn flat_map_iter<U, F>(self, f: F) -> SeqIter<std::iter::FlatMap<I, U, F>>
        where
            U: IntoIterator,
            F: FnMut(I::Item) -> U,
        {
            SeqIter(self.0.flat_map(f))
        }

        /// rayon's identity-seeded reduce.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }
    }

    /// By-value conversion, mirroring `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item;
        /// The (sequential) iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts `self` into an iterator; upstream this is the parallel
        /// entry point, here it is `into_iter`.
        fn into_par_iter(self) -> SeqIter<Self::Iter>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> SeqIter<Self::Iter> {
            SeqIter(self.into_iter())
        }
    }

    /// By-shared-reference conversion, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type.
        type Item: 'data;
        /// The (sequential) iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates `&self`.
        fn par_iter(&'data self) -> SeqIter<Self::Iter>;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> SeqIter<Self::Iter> {
            SeqIter(self.into_iter())
        }
    }

    /// By-mutable-reference conversion, mirroring
    /// `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The element type.
        type Item: 'data;
        /// The (sequential) iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates `&mut self`.
        fn par_iter_mut(&'data mut self) -> SeqIter<Self::Iter>;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Item = <&'data mut C as IntoIterator>::Item;
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> SeqIter<Self::Iter> {
            SeqIter(self.into_iter())
        }
    }
}

pub mod prelude {
    //! Everything call sites import via `use rayon::prelude::*`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

/// Runs both closures (sequentially) and returns both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (oper_a(), oper_b())
}

/// Number of "worker threads": always 1 in the sequential stand-in.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_over_range() {
        let total: u32 = (0u32..10).into_par_iter().filter(|&x| x % 2 == 0).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn par_iter_and_mut() {
        let mut v = vec![1, 2, 3];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 6);
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, vec![2, 4, 6]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
