//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` / `read()` / `write()` return guards directly). A poisoned
//! std lock — possible only after a panic while holding the guard — is
//! recovered by taking the inner value, matching `parking_lot`'s
//! "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion, `parking_lot`-style (no poisoning, no `unwrap`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock, `parking_lot`-style.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
