//! Offline stand-in for `criterion`.
//!
//! The build environment cannot fetch crates.io, so this crate keeps the
//! benchmark suites *compiling and runnable*: each benchmark closure is
//! executed once with wall-clock timing printed, rather than being
//! statistically sampled. Swapping back to real criterion is a one-line
//! change in the workspace manifests; no bench source changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark body.
pub struct Bencher {
    last: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (upstream: many sampled runs).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.last = t0.elapsed();
    }

    /// Times one execution of `routine` on a fresh `setup()` input, with
    /// the setup excluded from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.last = t0.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            last: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {}/{id}: {:?} (single smoke run)", self.name, b.last);
    }

    /// Sampling size — accepted and ignored by the stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement budget — accepted and ignored by the stand-in.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Warm-up budget — accepted and ignored by the stand-in.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks `f` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {}

impl Default for Criterion {
    fn default() -> Self {
        Self {}
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            last: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {id}: {:?} (single smoke run)", b.last);
        self
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
