//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact subset* of the `rand 0.8` API its code uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen` / `gen_range` / `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — fast, high-quality, and fully
//! deterministic for a given seed, which is what every consumer in this
//! workspace (level sampling, dataset synthesis, k-means init) relies on.
//!
//! Sequences differ from upstream `rand`'s `SmallRng`, which is fine:
//! nothing in the workspace depends on a specific stream, only on
//! determinism per seed.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the type's "standard" distribution (`[0, 1)` for
    /// floats, full range for integers).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable over a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty => $std:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the excluded bound.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32 => f32, f64 => f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the same family upstream `SmallRng` uses on 64-bit
    /// targets. Not cryptographically secure; excellent for simulation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0..17usize);
            assert!(u < 17);
            let i = rng.gen_range(0..=3u32);
            assert!(i <= 3);
            let p = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distinct_seeds_disagree() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }
}
