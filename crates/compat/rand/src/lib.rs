//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact subset* of the `rand 0.8` API its code uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen` / `gen_range` / `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — fast, high-quality, and fully
//! deterministic for a given seed, which is what every consumer in this
//! workspace (level sampling, dataset synthesis, k-means init) relies on.
//!
//! Sequences differ from upstream `rand`'s `SmallRng`, which is fine:
//! nothing in the workspace depends on a specific stream, only on
//! determinism per seed.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the type's "standard" distribution (`[0, 1)` for
    /// floats, full range for integers).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable over a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty => $std:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the excluded bound.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32 => f32, f64 => f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod distributions {
    //! Non-uniform distributions used by the workload generators.
    //!
    //! Upstream `rand` delegates these to `rand_distr`; this workspace only
    //! needs two shapes — Zipf for skewed query popularity and Poisson for
    //! arrival counts — so they live here next to the generator they feed.

    use super::{RngCore, SampleStandard};

    /// Zipf distribution over ranks `0..n`: rank `i` is drawn with
    /// probability proportional to `1 / (i + 1)^s`.
    ///
    /// Sampling is inverse-CDF over a precomputed table (O(n) memory,
    /// O(log n) per sample), which keeps the stream a pure function of the
    /// generator state — no rejection steps whose acceptance could differ
    /// across platforms.
    #[derive(Debug, Clone)]
    pub struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// Builds the distribution over `n` ranks with exponent `s ≥ 0`
        /// (`s = 0` is uniform; larger `s` concentrates mass on the head).
        ///
        /// # Panics
        /// Panics if `n == 0` or `s` is negative or non-finite.
        pub fn new(n: usize, s: f64) -> Self {
            assert!(n > 0, "Zipf over an empty rank set");
            assert!(
                s >= 0.0 && s.is_finite(),
                "Zipf exponent must be finite and >= 0"
            );
            let mut cdf = Vec::with_capacity(n);
            let mut acc = 0.0f64;
            for i in 0..n {
                acc += ((i + 1) as f64).powf(-s);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            // Guard against rounding leaving the last bucket unreachable.
            *cdf.last_mut().unwrap() = 1.0;
            Self { cdf }
        }

        /// Number of ranks.
        pub fn n(&self) -> usize {
            self.cdf.len()
        }

        /// Draws one rank in `0..n`, head rank (`0`) most likely.
        pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            let u = f64::sample_standard(rng);
            self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
        }
    }

    /// Poisson distribution with mean `lambda`.
    ///
    /// Uses Knuth's product-of-uniforms method. For large means the product
    /// would underflow `exp(-lambda)`, so the draw is split into chunks of
    /// mean ≤ 30 and summed — Poisson is additive, and the chunking is a
    /// fixed function of `lambda`, so streams stay deterministic per seed.
    #[derive(Debug, Clone, Copy)]
    pub struct Poisson {
        lambda: f64,
    }

    impl Poisson {
        /// Maximum per-chunk mean for the Knuth loop.
        const CHUNK: f64 = 30.0;

        /// Builds the distribution.
        ///
        /// # Panics
        /// Panics if `lambda` is negative or non-finite.
        pub fn new(lambda: f64) -> Self {
            assert!(
                lambda >= 0.0 && lambda.is_finite(),
                "Poisson mean must be finite and >= 0"
            );
            Self { lambda }
        }

        /// The distribution mean.
        pub fn lambda(&self) -> f64 {
            self.lambda
        }

        /// Draws one count.
        pub fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
            let mut remaining = self.lambda;
            let mut count = 0u64;
            while remaining > 0.0 {
                let chunk = remaining.min(Self::CHUNK);
                remaining -= chunk;
                let limit = (-chunk).exp();
                let mut product = f64::sample_standard(rng);
                while product > limit {
                    count += 1;
                    product *= f64::sample_standard(rng);
                }
            }
            count
        }
    }

    #[cfg(test)]
    mod tests {
        use super::super::rngs::SmallRng;
        use super::super::SeedableRng;
        use super::{Poisson, Zipf};

        #[test]
        fn zipf_streams_are_deterministic_per_seed() {
            let z = Zipf::new(100, 1.1);
            let mut a = SmallRng::seed_from_u64(7);
            let mut b = SmallRng::seed_from_u64(7);
            let sa: Vec<usize> = (0..256).map(|_| z.sample(&mut a)).collect();
            let sb: Vec<usize> = (0..256).map(|_| z.sample(&mut b)).collect();
            assert_eq!(sa, sb);
            let mut c = SmallRng::seed_from_u64(8);
            let sc: Vec<usize> = (0..256).map(|_| z.sample(&mut c)).collect();
            assert_ne!(sa, sc);
        }

        #[test]
        fn zipf_frequency_ranks_are_sane() {
            // Head rank strictly most frequent and the head of the
            // distribution monotone by rank, given enough samples.
            let z = Zipf::new(50, 1.2);
            let mut rng = SmallRng::seed_from_u64(42);
            let mut counts = vec![0u64; z.n()];
            for _ in 0..60_000 {
                counts[z.sample(&mut rng)] += 1;
            }
            for w in counts[..8].windows(2) {
                assert!(w[0] > w[1], "head counts not monotone: {:?}", &counts[..8]);
            }
            // The tail decays: rank 0 dwarfs deep-tail ranks.
            assert!(counts[0] > 8 * counts[40]);
        }

        #[test]
        fn zipf_zero_exponent_is_roughly_uniform() {
            let z = Zipf::new(4, 0.0);
            let mut rng = SmallRng::seed_from_u64(3);
            let mut counts = [0u64; 4];
            for _ in 0..40_000 {
                counts[z.sample(&mut rng)] += 1;
            }
            for &c in &counts {
                assert!((9_000..11_000).contains(&c), "not uniform: {counts:?}");
            }
        }

        #[test]
        fn poisson_streams_are_deterministic_per_seed() {
            let p = Poisson::new(6.5);
            let mut a = SmallRng::seed_from_u64(11);
            let mut b = SmallRng::seed_from_u64(11);
            let sa: Vec<u64> = (0..256).map(|_| p.sample(&mut a)).collect();
            let sb: Vec<u64> = (0..256).map(|_| p.sample(&mut b)).collect();
            assert_eq!(sa, sb);
        }

        #[test]
        fn poisson_mean_tracks_lambda() {
            for &lambda in &[0.5f64, 4.0, 37.0, 120.0] {
                let p = Poisson::new(lambda);
                let mut rng = SmallRng::seed_from_u64(5);
                let n = 20_000;
                let sum: u64 = (0..n).map(|_| p.sample(&mut rng)).sum();
                let mean = sum as f64 / n as f64;
                let tol = 0.05 * lambda + 0.05;
                assert!(
                    (mean - lambda).abs() < tol,
                    "lambda {lambda}: empirical mean {mean}"
                );
            }
        }

        #[test]
        fn poisson_zero_lambda_is_always_zero() {
            let p = Poisson::new(0.0);
            let mut rng = SmallRng::seed_from_u64(1);
            for _ in 0..100 {
                assert_eq!(p.sample(&mut rng), 0);
            }
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the same family upstream `SmallRng` uses on 64-bit
    /// targets. Not cryptographically secure; excellent for simulation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0..17usize);
            assert!(u < 17);
            let i = rng.gen_range(0..=3u32);
            assert!(i <= 3);
            let p = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distinct_seeds_disagree() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }
}
