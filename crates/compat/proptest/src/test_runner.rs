//! The per-case RNG driving strategy generation.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Deterministic per-case generator: case `n` of every test in a process
/// uses the same stream, so failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// The RNG for case number `case`.
    pub fn for_case(case: u64) -> Self {
        Self(SmallRng::seed_from_u64(
            0x9027_7E57 ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
