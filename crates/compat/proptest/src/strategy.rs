//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};

/// A generator of random values for property tests. Unlike upstream
/// proptest there is no value tree / shrinking — `generate` draws one
/// concrete value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; sampling retries until `f` accepts (with
    /// a retry cap to keep pathological filters from hanging).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `choices`.
    ///
    /// # Panics
    /// Panics if `choices` is empty.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !choices.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Self { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.choices.len());
        self.choices[i].generate(rng)
    }
}

/// Numeric ranges are strategies over their contents.
impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn map_and_tuple() {
        let mut rng = TestRng::for_case(2);
        let s = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn union_draws_from_all_choices() {
        let mut rng = TestRng::for_case(3);
        let u = Union::new(vec![(0u32..1).boxed(), (10u32..11).boxed()]);
        let mut saw = [false, false];
        for _ in 0..100 {
            match u.generate(&mut rng) {
                0 => saw[0] = true,
                10 => saw[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }
}
