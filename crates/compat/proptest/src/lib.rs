//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / `prop_assume!`,
//! range and collection strategies, `prop_oneof!`, `prop_map`, and
//! `any::<T>()`. Each test runs `ProptestConfig::cases` seeded random
//! cases; there is **no shrinking** — a failure reports the case number
//! and the formatted assertion instead of a minimized input. Case seeds
//! are deterministic, so failures reproduce exactly.

use std::fmt;

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` — the type's canonical full-range strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy over a type's full value range.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T` (full range for integers).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<u32>() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Accepted size specifications: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element`-generated values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_array {
        ($name:ident, $strat:ident, $n:literal) => {
            /// Strategy producing `[S::Value; N]` from one element strategy.
            pub struct $strat<S>(S);

            /// An array of `$n` independent draws from `element`.
            pub fn $name<S: Strategy>(element: S) -> $strat<S> {
                $strat(element)
            }

            impl<S: Strategy> Strategy for $strat<S> {
                type Value = [S::Value; $n];
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.0.generate(rng))
                }
            }
        };
    }

    uniform_array!(uniform2, UniformArray2, 2);
    uniform_array!(uniform3, UniformArray3, 3);
    uniform_array!(uniform4, UniformArray4, 4);
}

pub mod prop {
    //! The `prop::` path the prelude exposes (`prop::collection::vec`, …).
    pub use crate::{array, collection};
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass: a real failure or a `prop_assume!`
/// rejection (rejected cases are skipped, not failed).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case was rejected by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// A rejection carrying `message`.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::Reject(message.into())
    }

    /// Whether this is a `prop_assume!` rejection.
    pub fn is_rejection(&self) -> bool {
        matches!(self, Self::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "{m}"),
            Self::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

pub mod prelude {
    //! Everything `use proptest::prelude::*` must bring into scope.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Defines property tests: each `fn name(arg in strategy, …) { … }` becomes
/// a `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(case as u64);
                $(let $pat =
                    $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(e) if e.is_rejection() => {}
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case {case} failed: {e}")
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// A strategy choosing uniformly among the listed strategies (all must
/// share one `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
