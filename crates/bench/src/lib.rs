//! Shared harness for the per-figure/per-table experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (Section 4) at a scale controlled by environment
//! variables, so the same code runs as a quick smoke test on CI and as a
//! long-form reproduction on a large machine:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `FLASH_N` | database vectors per dataset | `4000` |
//! | `FLASH_QUERIES` | query count | `100` |
//! | `FLASH_C` | HNSW `C` (efConstruction) | `128` |
//! | `FLASH_R` | HNSW `R` (max neighbors) | `16` |
//!
//! Output is GitHub-flavored markdown, one row per configuration, matching
//! the rows/series of the corresponding paper figure.

use flash::{BuildFlash, FlashHnsw, FlashParams};
use graphs::providers::{FullPrecision, PcaProvider, PqProvider, SqProvider};
use graphs::{Hit, Hnsw, HnswParams};
use std::time::{Duration, Instant};
use vecstore::{generate, DatasetProfile, VectorSet};

/// Experiment scale, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Database vectors per dataset.
    pub n: usize,
    /// Held-out queries.
    pub queries: usize,
    /// HNSW candidate bound `C`.
    pub c: usize,
    /// HNSW degree bound `R`.
    pub r: usize,
}

impl Scale {
    /// Reads `FLASH_N` / `FLASH_QUERIES` / `FLASH_C` / `FLASH_R`.
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Self {
            n: get("FLASH_N", 4000),
            queries: get("FLASH_QUERIES", 100),
            c: get("FLASH_C", 128),
            r: get("FLASH_R", 16),
        }
    }

    /// The HNSW parameters for this scale.
    pub fn hnsw(&self) -> HnswParams {
        HnswParams {
            c: self.c,
            r: self.r,
            seed: 0xBEEF,
        }
    }
}

/// The five construction methods of the paper's main comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Baseline full-precision HNSW.
    Hnsw,
    /// HNSW-PQ (ADC/SDC).
    HnswPq,
    /// HNSW-SQ (8-bit integer codes).
    HnswSq,
    /// HNSW-PCA (0.9-variance projection).
    HnswPca,
    /// HNSW-Flash (the paper's method).
    HnswFlash,
}

impl Method {
    /// All methods, Flash first (paper figure order: A..E).
    pub const ALL: [Method; 5] = [
        Method::HnswFlash,
        Method::HnswPca,
        Method::HnswSq,
        Method::HnswPq,
        Method::Hnsw,
    ];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Method::Hnsw => "HNSW",
            Method::HnswPq => "HNSW-PQ",
            Method::HnswSq => "HNSW-SQ",
            Method::HnswPca => "HNSW-PCA",
            Method::HnswFlash => "HNSW-Flash",
        }
    }
}

/// A built index of any method, searchable uniformly.
pub enum AnyIndex {
    /// Baseline.
    Full(Hnsw<FullPrecision>),
    /// HNSW-PQ.
    Pq(Hnsw<PqProvider>),
    /// HNSW-SQ.
    Sq(Hnsw<SqProvider>),
    /// HNSW-PCA.
    Pca(Hnsw<PcaProvider>),
    /// HNSW-Flash.
    Flash(FlashHnsw),
}

impl AnyIndex {
    /// Builds `method` over `base`, returning the index and the wall-clock
    /// indexing time (including coding preprocessing, as the paper does).
    pub fn build(method: Method, base: VectorSet, scale: Scale) -> (AnyIndex, Duration) {
        let dim = base.dim();
        let params = scale.hnsw();
        let train = (base.len() / 2).clamp(256, 10_000);
        let t0 = Instant::now();
        let index = match method {
            Method::Hnsw => AnyIndex::Full(Hnsw::build(FullPrecision::new(base), params)),
            Method::HnswPq => {
                // M_PQ via the paper's convention: 1 subspace per ~48 dims,
                // L_PQ = 8 (their tuned setting).
                let m = (dim / 48).clamp(4, 64);
                AnyIndex::Pq(Hnsw::build(PqProvider::new(base, m, 8, train, 0xA), params))
            }
            Method::HnswSq => AnyIndex::Sq(Hnsw::build(SqProvider::new(base, 8), params)),
            Method::HnswPca => AnyIndex::Pca(Hnsw::build(
                PcaProvider::with_variance(base, 0.9, train),
                params,
            )),
            Method::HnswFlash => {
                let mut fp = FlashParams::auto(dim);
                fp.train_sample = train;
                AnyIndex::Flash(FlashHnsw::build_flash(base, fp, params))
            }
        };
        (index, t0.elapsed())
    }

    /// k-NN search with the method's standard pipeline (compressed methods
    /// rerank on the original vectors, as the paper's Flash search does).
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        match self {
            AnyIndex::Full(i) => i.search(query, k, ef),
            AnyIndex::Pq(i) => i.search_rerank(query, k, ef, 8),
            AnyIndex::Sq(i) => i.search_rerank(query, k, ef, 4),
            AnyIndex::Pca(i) => i.search_rerank(query, k, ef, 4),
            AnyIndex::Flash(i) => i.search_rerank(query, k, ef, 8),
        }
    }

    /// Index size in bytes (adjacency + codes/vectors + payloads).
    pub fn index_bytes(&self) -> usize {
        match self {
            AnyIndex::Full(i) => i.index_bytes(),
            AnyIndex::Pq(i) => i.index_bytes(),
            AnyIndex::Sq(i) => i.index_bytes(),
            AnyIndex::Pca(i) => i.index_bytes(),
            AnyIndex::Flash(i) => i.index_bytes(),
        }
    }
}

/// Generates the workload for one paper dataset at the harness scale.
pub fn workload(profile: DatasetProfile, scale: Scale) -> (VectorSet, VectorSet) {
    generate(&profile.spec(), scale.n, scale.queries, 0xDA7A)
}

/// Formats a duration as seconds with 2 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Computes recall@k of `index` on the given queries/ground truth.
pub fn index_recall(
    index: &AnyIndex,
    queries: &VectorSet,
    gt: &[Vec<vecstore::Neighbor>],
    k: usize,
    ef: usize,
) -> f64 {
    let found: Vec<Vec<u32>> = (0..queries.len())
        .map(|qi| {
            index
                .search(queries.get(qi), k, ef)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        })
        .collect();
    metrics::recall_at_k(&found, gt, k).recall()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        let s = Scale::from_env();
        assert!(s.n > 0 && s.queries > 0 && s.c >= s.r);
    }

    #[test]
    fn all_methods_build_and_search_tiny() {
        let scale = Scale {
            n: 300,
            queries: 5,
            c: 32,
            r: 8,
        };
        let (base, queries) = workload(DatasetProfile::SsnppLike, scale);
        for method in Method::ALL {
            let (index, took) = AnyIndex::build(method, base.clone(), scale);
            assert!(took.as_nanos() > 0);
            let hits = index.search(queries.get(0), 3, 32);
            assert_eq!(hits.len(), 3, "{}", method.name());
            assert!(index.index_bytes() > 0);
        }
    }
}
