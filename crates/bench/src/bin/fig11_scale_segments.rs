//! Figure 11: scalability over segment count — cumulative indexing time
//! when the collection is sharded into segments of constant size (the
//! LSM-style deployment of Section 2.1.4).

use bench::{AnyIndex, Method, Scale};
use vecstore::{generate, split_into_segments, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Figure 11: scaling over segment count (segment size = {})\n",
        scale.n
    );
    for profile in [DatasetProfile::LaionLike, DatasetProfile::SsnppLike] {
        println!("## {}\n", profile.name());
        println!("| segments | HNSW total (s) | Flash total (s) | speedup |");
        println!("|---:|---:|---:|---:|");
        for n_segments in [2usize, 4, 6, 8] {
            let (all, _) = generate(&profile.spec(), scale.n * n_segments, 1, 0xDA7A);
            let segments = split_into_segments(&all, n_segments);
            let mut t_full = 0.0;
            let mut t_flash = 0.0;
            for seg in &segments {
                let (_, t) = AnyIndex::build(Method::Hnsw, seg.clone(), scale);
                t_full += t.as_secs_f64();
                let (_, t) = AnyIndex::build(Method::HnswFlash, seg.clone(), scale);
                t_flash += t.as_secs_f64();
            }
            println!(
                "| {n_segments} | {t_full:.2} | {t_flash:.2} | {:.1}x |",
                t_full / t_flash
            );
        }
        println!();
    }
    println!("paper: per-segment speedup accumulates linearly with segment count.");
}
