//! Figure 7: index sizes of the five methods with compression ratios over
//! baseline HNSW (red annotations in the paper).

use bench::{workload, AnyIndex, Method, Scale};
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 7: index sizes (n = {} per dataset)\n", scale.n);
    println!("| dataset | Flash (MB) | PCA (MB) | SQ (MB) | PQ (MB) | HNSW (MB) | Flash ratio |");
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for profile in DatasetProfile::ALL {
        let (base, _) = workload(profile, scale);
        let mut sizes = Vec::new();
        for method in Method::ALL {
            let (index, _) = AnyIndex::build(method, base.clone(), scale);
            sizes.push(index.index_bytes() as f64 / 1e6);
        }
        println!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1}x |",
            profile.name(),
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3],
            sizes[4],
            sizes[4] / sizes[0],
        );
    }
    println!("\npaper: PQ compresses most (~10–13x); Flash ~4–5x (codes stored twice: globally and inline with neighbor ids).");
}
