//! Table 2: L1 cache misses before vs after the Flash layout.
//!
//! The paper reads hardware counters; we replay the *same* graph traversal
//! through a software L1 model under the two memory layouts:
//!
//! * baseline: neighbor ids in the node record, vectors fetched from a
//!   separate region — one random `D*4`-byte access per visited neighbor;
//! * Flash: neighbor codewords inline with the ids (one contiguous block
//!   per node), the ADT register-resident, the SDT in a 4 KB shared table.
//!
//! Using one traversal for both layouts isolates the layout effect, which
//! is exactly what the paper's "consistent indexing parameters" aim at.

use bench::{workload, Scale};
use cachesim::{l1d_default, CacheSim};
use graphs::providers::FullPrecision;
use graphs::{DistanceProvider, Hnsw};
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Table 2: simulated L1 miss rate during CA traversals (n = {})\n",
        scale.n
    );
    println!("| dataset | w/o Flash layout | w. Flash layout |");
    println!("|---|---:|---:|");

    for profile in DatasetProfile::ALL {
        let (base, queries) = workload(profile, scale);
        let dim = base.dim();
        let provider = FullPrecision::new(base);
        let index = Hnsw::build(provider, scale.hnsw());
        let graph = index.freeze();

        // Layout constants.
        let m_f = 16usize; // Flash subspaces at paper defaults
        let r0 = scale.r * 2;
        let vec_bytes = dim * 4;
        let adj_stride = (1 + r0) * 4;
        let flash_stride = adj_stride + r0.div_ceil(16) * m_f * 16;
        const VECTORS: u64 = 0x1000_0000;
        const ADJ: u64 = 0x8000_0000;
        const FLASH_NODES: u64 = 0xA000_0000;
        const SDT: u64 = 0xC000_0000;

        let mut sim_base = CacheSim::new(l1d_default());
        let mut sim_flash = CacheSim::new(l1d_default());

        // Replay greedy beam traversals for the query sample.
        for qi in 0..queries.len() {
            let q = queries.get(qi);
            // Reconstruct the visit sequence with a simple beam search.
            let mut visited = vec![false; graph.len()];
            let mut frontier = vec![graph.entry];
            visited[graph.entry as usize] = true;
            let mut hops = 0;
            while let Some(u) = frontier.pop() {
                hops += 1;
                if hops > 64 {
                    break;
                }
                let nbrs = graph.neighbors(0, u);
                // Both layouts read the node record.
                sim_base.access_range(ADJ + u as u64 * adj_stride as u64, (1 + nbrs.len()) * 4);
                sim_flash.access_range(
                    FLASH_NODES + u as u64 * flash_stride as u64,
                    (1 + nbrs.len()) * 4 + nbrs.len().div_ceil(16) * m_f * 16,
                );
                let mut best: Option<(f32, u32)> = None;
                for &v in nbrs {
                    if visited[v as usize] {
                        continue;
                    }
                    visited[v as usize] = true;
                    // Baseline fetches the neighbor's vector; Flash does not.
                    sim_base.access_range(VECTORS + v as u64 * vec_bytes as u64, vec_bytes);
                    let d = simdops::l2_sq(q, index.provider().base().get(v as usize));
                    if best.map_or(true, |(bd, _)| d < bd) {
                        best = Some((d, v));
                    }
                }
                if let Some((_, v)) = best {
                    frontier.push(v);
                }
            }
            // NS stage: candidate-pair distances — vectors for the baseline,
            // SDT lookups for Flash.
            let cands: Vec<u32> = (0..scale.r.min(graph.len()) as u32).collect();
            for (i, &a) in cands.iter().enumerate() {
                for &b in cands.iter().skip(i + 1) {
                    sim_base.access_range(VECTORS + a as u64 * vec_bytes as u64, vec_bytes);
                    sim_base.access_range(VECTORS + b as u64 * vec_bytes as u64, vec_bytes);
                    for s in 0..m_f {
                        sim_flash.access_range(
                            SDT + (s * 256 + (a as usize % 16) * 16 + b as usize % 16) as u64,
                            1,
                        );
                    }
                }
            }
        }

        println!(
            "| {} | {:.2}% | {:.2}% |",
            profile.name(),
            100.0 * sim_base.stats().miss_rate(),
            100.0 * sim_flash.stats().miss_rate(),
        );
    }
    println!("\npaper: 19.1–26.0 % without vs 4.9–7.9 % with the Flash layout.");
}
