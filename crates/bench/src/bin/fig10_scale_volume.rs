//! Figure 10: scalability over data volume — indexing time of HNSW vs
//! HNSW-Flash as the single-segment dataset grows (speedup annotated).

use bench::{workload, AnyIndex, Method, Scale};
use vecstore::DatasetProfile;

fn main() {
    let base_scale = Scale::from_env();
    println!("# Figure 10: scaling over data volume\n");
    for profile in [DatasetProfile::LaionLike, DatasetProfile::SsnppLike] {
        println!("## {}\n", profile.name());
        println!("| n | HNSW (s) | HNSW-Flash (s) | speedup |");
        println!("|---:|---:|---:|---:|");
        for mult in 1..=5usize {
            let scale = Scale {
                n: base_scale.n * mult,
                ..base_scale
            };
            let (base, _) = workload(profile, scale);
            let (_, t_full) = AnyIndex::build(Method::Hnsw, base.clone(), scale);
            let (_, t_flash) = AnyIndex::build(Method::HnswFlash, base, scale);
            println!(
                "| {} | {:.2} | {:.2} | {:.1}x |",
                scale.n,
                t_full.as_secs_f64(),
                t_flash.as_secs_f64(),
                t_full.as_secs_f64() / t_flash.as_secs_f64(),
            );
        }
        println!();
    }
    println!("paper: speedup stays in the 15–20x band across volumes.");
}
