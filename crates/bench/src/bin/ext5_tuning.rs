//! Extension 5: the Section-3.1 tuning loop, end to end — run the
//! Theorem-1 triple estimator over a `(d_F, M_F)` grid, pick the cheapest
//! configuration that preserves comparisons, and verify the choice by
//! building real indexes at the chosen vs. default parameters.

use bench::{workload, Scale};
use flash::{tune_flash_params, BuildFlash, FlashHnsw, FlashParams, TuneOptions};
use std::time::Instant;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let (base, queries) = workload(DatasetProfile::LaionLike, scale);
    let gt = ground_truth(&base, &queries, k);
    let mut base_params = FlashParams::auto(base.dim());
    base_params.train_sample = (scale.n / 2).clamp(256, 10_000);

    println!(
        "# Ext 5: Theorem-1 parameter tuning (LAION-like, n = {})\n",
        scale.n
    );

    let opts = TuneOptions {
        d_f_grid: vec![16, 32, 48, 64, 96, 128],
        m_f_grid: vec![4, 8, 16, 32],
        target_agreement: 0.9,
        triples: 300,
        sample: (scale.n / 2).clamp(256, 4_000),
        seed: 0x7E57,
    };
    let t0 = Instant::now();
    let outcome = tune_flash_params(&base, base_params, &opts);
    let tune_secs = t0.elapsed().as_secs_f64();

    println!("## Candidate grid (agreement = fraction of comparisons preserved)\n");
    println!("| M_F | d_F | guaranteed | agreement |");
    println!("|---:|---:|---:|---:|");
    for c in &outcome.candidates {
        println!(
            "| {} | {} | {:.3} | {:.3} |",
            c.m_f,
            c.d_f,
            c.report.guaranteed_fraction(),
            c.report.agreement_fraction()
        );
    }
    println!(
        "\nchosen: d_F = {}, M_F = {} (target {} {}, tuned in {tune_secs:.1} s)\n",
        outcome.params.d_f,
        outcome.params.m_f,
        opts.target_agreement,
        if outcome.met_target {
            "met"
        } else {
            "NOT met — best effort"
        },
    );

    // Validate: build at the tuned vs the default parameters.
    println!("## Validation builds\n");
    println!("| config | d_F | M_F | build (s) | recall@{k} (ef=128) |");
    println!("|---|---:|---:|---:|---:|");
    for (name, params) in [("default", base_params), ("tuned", outcome.params)] {
        let t0 = Instant::now();
        let index = FlashHnsw::build_flash(base.clone(), params, scale.hnsw());
        let secs = t0.elapsed().as_secs_f64();
        let found: Vec<Vec<u32>> = (0..queries.len())
            .map(|qi| {
                index
                    .search_rerank(queries.get(qi), k, 128, 8)
                    .iter()
                    .map(|r| r.id as u32)
                    .collect()
            })
            .collect();
        let recall = metrics::recall_at_k(&found, &gt, k).recall();
        println!(
            "| {name} | {} | {} | {secs:.2} | {recall:.4} |",
            params.d_f, params.m_f
        );
    }
    println!("\nexpected: the estimator picks a small config whose end-to-end recall matches the default at equal or lower build cost — the paper's 'appropriate compression error' made operational.");
}
