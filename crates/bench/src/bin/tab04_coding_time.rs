//! Table 4: coding time (CT) vs total indexing time (TIT) for HNSW-Flash —
//! the paper shows preprocessing (PCA fit, codebooks, encoding) is ~10 % of
//! the total.

use bench::{workload, Scale};
use flash::{FlashParams, FlashProvider};
use graphs::Hnsw;
use std::time::Instant;
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Table 4: coding time vs total indexing time (n = {})\n",
        scale.n
    );
    println!("| dataset | CT (s) | TIT (s) | CT/TIT |");
    println!("|---|---:|---:|---:|");
    for profile in DatasetProfile::ALL {
        let (base, _) = workload(profile, scale);
        let mut fp = FlashParams::auto(base.dim());
        fp.train_sample = (scale.n / 2).clamp(256, 10_000);
        let t0 = Instant::now();
        let provider = FlashProvider::new(base, fp);
        let coding = provider.coding_ns() as f64 / 1e9;
        let index = Hnsw::build(provider, scale.hnsw());
        let total = t0.elapsed().as_secs_f64();
        let _ = index.len();
        println!(
            "| {} | {coding:.2} | {total:.2} | {:.0}% |",
            profile.name(),
            100.0 * coding / total
        );
    }
    println!("\npaper: coding is ~3–16 % of total indexing time across the datasets.");
}
