//! Table 3: Flash indexing time without vs with the SIMD lookup kernel
//! (scalar table walks vs `pshufb` batches; everything else identical).

use bench::{workload, Scale};
use flash::{FlashParams, FlashProvider};
use graphs::Hnsw;
use std::time::Instant;
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Table 3: indexing time w/o vs w. SIMD lookups (n = {})\n",
        scale.n
    );
    println!("| dataset | w/o SIMD (s) | w. SIMD (s) | reduction |");
    println!("|---|---:|---:|---:|");
    for profile in DatasetProfile::ALL {
        let (base, _) = workload(profile, scale);
        let mut fp = FlashParams::auto(base.dim());
        fp.train_sample = (scale.n / 2).clamp(256, 10_000);

        let t0 = Instant::now();
        let provider = FlashProvider::new(base.clone(), fp).with_simd(false);
        let _ = Hnsw::build(provider, scale.hnsw());
        let t_scalar = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let provider = FlashProvider::new(base, fp).with_simd(true);
        let _ = Hnsw::build(provider, scale.hnsw());
        let t_simd = t0.elapsed().as_secs_f64();

        println!(
            "| {} | {t_scalar:.2} | {t_simd:.2} | {:.0}% |",
            profile.name(),
            100.0 * (1.0 - t_simd / t_scalar),
        );
    }
    println!("\npaper: SIMD lookups cut indexing time by up to 45 % (coding time is unaffected).");
}
