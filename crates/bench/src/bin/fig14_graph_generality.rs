//! Figure 14: generality across graph algorithms — NSG and τ-MG built with
//! and without Flash: indexing time plus QPS-recall.

use bench::{workload, Scale};
use flash::{build_flash_nsg, build_flash_taumg, FlashParams};
use graphs::providers::FullPrecision;
use graphs::{Nsg, NsgParams, TauMg, TauMgParams};
use metrics::measure_qps;
use std::time::Instant;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let (base, queries) = workload(DatasetProfile::LaionLike, scale);
    let gt = ground_truth(&base, &queries, k);
    let flat = NsgParams {
        r: scale.r,
        c: scale.c,
        seed: 0xF14,
    };
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = (scale.n / 2).clamp(256, 10_000);

    println!(
        "# Figure 14: NSG and τ-MG with/without Flash (n = {})\n",
        scale.n
    );
    println!("| algorithm | build (s) | ef | recall@{k} | QPS |");
    println!("|---|---:|---:|---:|---:|");

    let report = |name: &str, secs: f64, search: &mut dyn FnMut(usize, usize) -> Vec<u32>| {
        for ef in [64usize, 128] {
            let mut found: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
            let qps = measure_qps(queries.len(), |qi| found.push(search(qi, ef)));
            let recall = metrics::recall_at_k(&found, &gt, k).recall();
            println!(
                "| {name} | {secs:.2} | {ef} | {recall:.4} | {:.0} |",
                qps.qps()
            );
        }
    };

    {
        let t0 = Instant::now();
        let nsg = Nsg::build(FullPrecision::new(base.clone()), flat);
        let secs = t0.elapsed().as_secs_f64();
        report("NSG", secs, &mut |qi, ef| {
            nsg.search(queries.get(qi), k, ef)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let nsg = build_flash_nsg(base.clone(), fp, flat);
        let secs = t0.elapsed().as_secs_f64();
        report("NSG-Flash", secs, &mut |qi, ef| {
            nsg.search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let tmg = TauMg::build(
            FullPrecision::new(base.clone()),
            TauMgParams { flat, tau: 0.5 },
        );
        let secs = t0.elapsed().as_secs_f64();
        report("tau-MG", secs, &mut |qi, ef| {
            tmg.search(queries.get(qi), k, ef)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let tmg = build_flash_taumg(base.clone(), fp, TauMgParams { flat, tau: 0.5 });
        let secs = t0.elapsed().as_secs_f64();
        report("tau-MG-Flash", secs, &mut |qi, ef| {
            // τ-MG has no rerank helper; rerank here with exact distances.
            let pool = tmg.search(queries.get(qi), k * 8, ef);
            let mut exact: Vec<(f32, u32)> = pool
                .iter()
                .map(|r| {
                    (
                        simdops::l2_sq(queries.get(qi), base.get(r.id as usize)),
                        r.id as u32,
                    )
                })
                .collect();
            exact.sort_by(|a, b| a.0.total_cmp(&b.0));
            exact.truncate(k);
            exact.into_iter().map(|(_, id)| id).collect()
        });
    }
    println!("\npaper: Flash accelerates both builders ~11–12x with comparable QPS-recall.");
}
