//! Figure 9: QPS–ADR curves (average distance ratio instead of recall) on
//! the two datasets the paper shows (LAION-like, SSNPP-like).

use bench::{workload, AnyIndex, Method, Scale};
use metrics::{average_distance_ratio, measure_qps};
use simdops::l2_sq;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    println!("# Figure 9: QPS–ADR (k = {k}, n = {})\n", scale.n);
    for profile in [DatasetProfile::LaionLike, DatasetProfile::SsnppLike] {
        let (base, queries) = workload(profile, scale);
        let gt = ground_truth(&base, &queries, k);
        println!("## {}\n", profile.name());
        println!("| method | ef | ADR | QPS |");
        println!("|---|---:|---:|---:|");
        for method in Method::ALL {
            let (index, _) = AnyIndex::build(method, base.clone(), scale);
            for ef in [16usize, 64, 256] {
                let mut dists: Vec<Vec<f32>> = Vec::with_capacity(queries.len());
                let qps = measure_qps(queries.len(), |qi| {
                    // Exact distances of the returned ids (ADR is defined on
                    // true geometry, not the provider's approximation).
                    let q = queries.get(qi);
                    dists.push(
                        index
                            .search(q, k, ef)
                            .iter()
                            .map(|r| l2_sq(q, base.get(r.id as usize)))
                            .collect(),
                    );
                });
                for row in &mut dists {
                    row.sort_by(f32::total_cmp);
                }
                let adr = average_distance_ratio(&dists, &gt, k);
                println!("| {} | {ef} | {adr:.4} | {:.0} |", method.name(), qps.qps());
            }
        }
        println!();
    }
    println!(
        "paper: Flash attains the lowest ADR at a given QPS (results closest to ground truth)."
    );
}
