//! Figure 3: effect of PQ parameters on HNSW-PQ.
//!
//! (a) sweep codeword bits `L_PQ` at fixed `M_PQ`; (b) sweep subspaces
//! `M_PQ` at fixed `L_PQ`. The paper finds indexing time grows with
//! `L_PQ` (bigger codebooks), is U-shaped in `M_PQ`, and recall improves
//! with both.

use bench::{secs, workload, Scale};
use graphs::{providers::PqProvider, Hnsw};
use std::time::Instant;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let (base, queries) = workload(DatasetProfile::LaionLike, scale);
    let k = 1;
    let gt = ground_truth(&base, &queries, k);
    let train = (scale.n / 2).clamp(256, 5_000);

    let run = |m: usize, bits: u8| {
        let t0 = Instant::now();
        let index = Hnsw::build(
            PqProvider::new(base.clone(), m, bits, train, 3),
            scale.hnsw(),
        );
        let took = t0.elapsed();
        let found: Vec<Vec<u32>> = (0..queries.len())
            .map(|qi| {
                index
                    .search_rerank(queries.get(qi), k, 64, 8)
                    .iter()
                    .map(|r| r.id as u32)
                    .collect()
            })
            .collect();
        let recall = metrics::recall_at_k(&found, &gt, k).recall();
        (took, recall)
    };

    println!("# Figure 3a: L_PQ sweep (LAION-like, M_PQ = 8)\n");
    println!("| L_PQ | indexing time (s) | recall@1 |");
    println!("|---:|---:|---:|");
    for bits in [4u8, 6, 8] {
        let (took, recall) = run(8, bits);
        println!("| {bits} | {} | {recall:.3} |", secs(took));
    }

    println!("\n# Figure 3b: M_PQ sweep (LAION-like, L_PQ = 8)\n");
    println!("| M_PQ | indexing time (s) | recall@1 |");
    println!("|---:|---:|---:|");
    for m in [4usize, 8, 16, 32, 64] {
        let (took, recall) = run(m, 8);
        println!("| {m} | {} | {recall:.3} |", secs(took));
    }
    println!("\npaper: time rises with L_PQ, is U-shaped in M_PQ; recall rises with both.");
}
