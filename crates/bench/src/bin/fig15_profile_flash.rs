//! Figure 15: profile of HNSW-Flash graph-construction time — the distance
//! share collapses to ~12 % once tables are register/cache resident.

use bench::{workload, Scale};
use flash::{FlashParams, FlashProvider};
use graphs::stats::Instrumented;
use graphs::Hnsw;
use std::time::Instant;
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Figure 15: HNSW-Flash construction profile (n = {})\n",
        scale.n
    );
    println!("| dataset | graph-build (s) | distance % | layout-sync % | other % |");
    println!("|---|---:|---:|---:|---:|");
    for profile in [DatasetProfile::LaionLike, DatasetProfile::ArgillaLike] {
        let (base, _) = workload(profile, scale);
        let mut fp = FlashParams::auto(base.dim());
        fp.train_sample = (scale.n / 2).clamp(256, 10_000);
        let provider = Instrumented::new(FlashProvider::new(base, fp));
        let t0 = Instant::now();
        let index = Hnsw::build(provider, scale.hnsw());
        let total = t0.elapsed().as_nanos() as f64;
        let t = index.provider().timings();
        let dist_pct = 100.0 * t.dist_ns as f64 / total;
        let sync_pct = 100.0 * t.sync_ns as f64 / total;
        println!(
            "| {} | {:.2} | {dist_pct:.1} | {sync_pct:.1} | {:.1} |",
            profile.name(),
            total / 1e9,
            (100.0 - dist_pct - sync_pct).max(0.0),
        );
    }
    println!(
        "\npaper: distance computation is ~12 % of Flash's graph-construction time (was >90 %)."
    );
}
