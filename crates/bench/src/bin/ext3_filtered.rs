//! Extension 3: attribute-constrained (hybrid) ANNS — the construction-cost
//! amplification the paper's introduction cites ("a specialized HNSW index
//! for attribute-constrained ANNS takes 33× longer"), and Flash's effect
//! on it.
//!
//! Two deployment shapes over the same labeled corpus:
//!
//! * **Shared graph + filtered search**: one build, predicate applied at
//!   query time; recall/QPS degrade as selectivity drops.
//! * **Specialized per-label sub-indexes**: construction cost multiplies
//!   with label count — with and without Flash, showing the amplified cost
//!   is exactly where construction speedup matters most.

use bench::{workload, Scale};
use flash::{FlashParams, FlashProvider};
use graphs::providers::FullPrecision;
use graphs::{Hnsw, LabeledHnsw, LabeledParams};
use metrics::measure_qps;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let (base, queries) = workload(DatasetProfile::LaionLike, scale);
    let params = scale.hnsw();

    // Assign labels: power-of-two label counts to sweep selectivity.
    let mut rng = SmallRng::seed_from_u64(0xF117);
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = (scale.n / 2).clamp(256, 10_000);

    println!(
        "# Ext 3: attribute-constrained ANNS (n = {}, {} labels swept)\n",
        scale.n, 3
    );

    // --- Shape 1: shared graph, filtered search -------------------------
    println!("## Shared graph + query-time filter (one standard build)\n");
    let t0 = Instant::now();
    let shared = Hnsw::build(FullPrecision::new(base.clone()), params);
    let shared_build = t0.elapsed().as_secs_f64();
    println!("single build: {shared_build:.2} s\n");
    println!("| labels | selectivity | filtered recall@{k} | QPS |");
    println!("|---:|---:|---:|---:|");
    for labels in [4usize, 16, 64] {
        let assignment: Vec<u32> = (0..base.len())
            .map(|_| rng.gen_range(0..labels as u32))
            .collect();
        // Filtered ground truth per query for label 0.
        let accept_label = 0u32;
        let gt: Vec<Vec<u32>> = (0..queries.len())
            .map(|qi| {
                let q = queries.get(qi);
                let mut all: Vec<(f32, u32)> = (0..base.len())
                    .filter(|&i| assignment[i] == accept_label)
                    .map(|i| (simdops::l2_sq(q, base.get(i)), i as u32))
                    .collect();
                all.sort_by(|a, b| a.0.total_cmp(&b.0));
                all.into_iter().take(k).map(|(_, i)| i).collect()
            })
            .collect();
        let assignment_ref = &assignment;
        let accept = move |id: u32| assignment_ref[id as usize] == accept_label;
        let mut found: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
        let qps = measure_qps(queries.len(), |qi| {
            found.push(
                shared
                    .search_filtered(queries.get(qi), k, 128, &accept)
                    .iter()
                    .map(|r| r.id as u32)
                    .collect(),
            )
        });
        let mut hit = 0usize;
        let mut total = 0usize;
        for (f, t) in found.iter().zip(gt.iter()) {
            total += t.len();
            hit += t.iter().filter(|id| f.contains(id)).count();
        }
        let recall = if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        };
        println!(
            "| {labels} | {:.3} | {recall:.4} | {:.0} |",
            1.0 / labels as f64,
            qps.qps()
        );
    }

    // --- Shape 2: specialized per-label indexes -------------------------
    // Flash's codec is trained ONCE on the whole corpus and shared across
    // partitions (training is a fixed cost; retraining per tiny partition
    // would dominate and is never the right deployment).
    println!("\n## Specialized per-label builds (cost amplification)\n");
    println!("| labels | HNSW build (s) | amplification | Flash build (s) | Flash speedup |");
    println!("|---:|---:|---:|---:|---:|");
    let codec = flash::FlashCodec::train(&base, fp);
    for labels in [4usize, 16] {
        let assignment: Vec<u32> = (0..base.len())
            .map(|_| rng.gen_range(0..labels as u32))
            .collect();
        let lp = LabeledParams {
            hnsw: params,
            min_graph_size: 32,
        };

        let t0 = Instant::now();
        let _full = LabeledHnsw::build(&base, &assignment, lp, FullPrecision::new);
        let full_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let _flash = LabeledHnsw::build(&base, &assignment, lp, |subset| {
            FlashProvider::from_codec(subset, codec.clone())
        });
        let flash_s = t0.elapsed().as_secs_f64();

        println!(
            "| {labels} | {full_s:.2} | {:.1}x | {flash_s:.2} | {:.1}x |",
            full_s / shared_build.max(1e-9),
            full_s / flash_s.max(1e-9)
        );
    }
    println!("\nexpected: filtered recall/QPS fall with selectivity on the shared graph; specialized build cost grows with label count and Flash compresses it.");
}
