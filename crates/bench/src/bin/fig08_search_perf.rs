//! Figure 8: QPS–recall curves of the five methods.
//!
//! Sweeps the search beam `ef` and prints one (recall, QPS) point per
//! setting. By default three representative datasets are run; set
//! `FLASH_ALL=1` for all eight.

use bench::{workload, AnyIndex, Method, Scale};
use metrics::measure_qps;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let profiles: Vec<DatasetProfile> = if std::env::var("FLASH_ALL").is_ok() {
        DatasetProfile::ALL.to_vec()
    } else {
        vec![
            DatasetProfile::SsnppLike,
            DatasetProfile::LaionLike,
            DatasetProfile::ArgillaLike,
        ]
    };

    println!("# Figure 8: QPS–recall (k = {k}, n = {})\n", scale.n);
    for profile in profiles {
        let (base, queries) = workload(profile, scale);
        let gt = ground_truth(&base, &queries, k);
        println!("## {}\n", profile.name());
        println!("| method | ef | recall@{k} | QPS |");
        println!("|---|---:|---:|---:|");
        for method in Method::ALL {
            let (index, _) = AnyIndex::build(method, base.clone(), scale);
            for ef in [16usize, 32, 64, 128, 256] {
                let mut found: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
                let qps = measure_qps(queries.len(), |qi| {
                    found.push(
                        index
                            .search(queries.get(qi), k, ef)
                            .iter()
                            .map(|r| r.id as u32)
                            .collect(),
                    );
                });
                let recall = metrics::recall_at_k(&found, &gt, k).recall();
                println!(
                    "| {} | {ef} | {recall:.4} | {:.0} |",
                    method.name(),
                    qps.qps()
                );
            }
        }
        println!();
    }
    println!("paper: Flash matches or beats baseline HNSW search; PQ trails (index quality).");
}
