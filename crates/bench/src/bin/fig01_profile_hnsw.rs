//! Figure 1: profile of baseline HNSW indexing time.
//!
//! The paper reports >90 % of construction spent in distance computation
//! (memory accesses + arithmetic), measured with `perf`. We reproduce the
//! breakdown with the instrumented provider: wall-clock inside distance
//! kernels vs. context preparation vs. everything else (structure
//! maintenance).

use bench::{workload, Scale};
use graphs::stats::Instrumented;
use graphs::{providers::FullPrecision, Hnsw};
use std::time::Instant;
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 1: HNSW indexing-time profile (n = {})\n", scale.n);
    println!("| dataset | total (s) | distance % | prepare % | other % |");
    println!("|---|---:|---:|---:|---:|");
    for profile in [DatasetProfile::LaionLike, DatasetProfile::ArgillaLike] {
        let (base, _) = workload(profile, scale);
        let provider = Instrumented::new(FullPrecision::new(base));
        let t0 = Instant::now();
        let index = Hnsw::build(provider, scale.hnsw());
        let total = t0.elapsed();
        let t = index.provider().timings();
        let total_ns = total.as_nanos() as u64;
        let dist_pct = 100.0 * t.dist_ns as f64 / total_ns as f64;
        let prep_pct = 100.0 * t.prepare_ns as f64 / total_ns as f64;
        println!(
            "| {} | {} | {:.1} | {:.1} | {:.1} |",
            profile.name(),
            bench::secs(total),
            dist_pct,
            prep_pct,
            (100.0 - dist_pct - prep_pct).max(0.0),
        );
    }
    println!("\npaper: distance computation ≈ 90.8–90.9 % on LAION-1M / ARGILLA-1M.");
}
