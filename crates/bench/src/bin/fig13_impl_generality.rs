//! Figure 13: generality across optimized HNSW implementations.
//!
//! ADSampling and VBase keep the standard construction loop, so Flash can
//! build their graph; their search-side optimizations then run on the
//! Flash-built topology. We report QPS–recall with and without Flash for
//! both variants on LAION-like data.

use bench::{workload, AnyIndex, Method, Scale};
use graphs::adsampling::AdSampler;
use graphs::providers::FullPrecision;
use graphs::vbase::search_vbase;
use graphs::DistanceProvider as _;
use metrics::measure_qps;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let (base, queries) = workload(DatasetProfile::LaionLike, scale);
    let gt = ground_truth(&base, &queries, k);

    // Two graphs over the same data: baseline-built and Flash-built.
    let (full_index, t_full) = AnyIndex::build(Method::Hnsw, base.clone(), scale);
    let (flash_index, t_flash) = AnyIndex::build(Method::HnswFlash, base.clone(), scale);
    let g_full = match &full_index {
        AnyIndex::Full(i) => i.freeze(),
        _ => unreachable!(),
    };
    let g_flash = match &flash_index {
        AnyIndex::Flash(i) => i.freeze(),
        _ => unreachable!(),
    };
    println!(
        "# Figure 13: ADSampling / VBase on baseline vs Flash graphs (build: {:.2}s vs {:.2}s)\n",
        t_full.as_secs_f64(),
        t_flash.as_secs_f64()
    );

    println!("| variant | graph | ef/window | recall@{k} | QPS |");
    println!("|---|---|---:|---:|---:|");

    let sampler = AdSampler::new(&base, 2.1, 32, 9);
    for (graph_name, graph) in [("HNSW", &g_full), ("Flash", &g_flash)] {
        for ef in [32usize, 64, 128] {
            let mut found: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
            let qps = measure_qps(queries.len(), |qi| {
                let (hits, _) = sampler.search(graph, queries.get(qi), k, ef);
                found.push(hits.iter().map(|r| r.id as u32).collect());
            });
            let recall = metrics::recall_at_k(&found, &gt, k).recall();
            println!(
                "| ADSampling | {graph_name} | {ef} | {recall:.4} | {:.0} |",
                qps.qps()
            );
        }
    }

    let full_provider = FullPrecision::new(base.clone());
    for (graph_name, graph) in [("HNSW", &g_full), ("Flash", &g_flash)] {
        for window in [16usize, 48, 128] {
            let mut found: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
            let qps = measure_qps(queries.len(), |qi| {
                let hits = search_vbase(&full_provider, graph, queries.get(qi), k, window);
                found.push(hits.iter().map(|r| r.id as u32).collect());
            });
            let recall = metrics::recall_at_k(&found, &gt, k).recall();
            println!(
                "| VBase | {graph_name} | {window} | {recall:.4} | {:.0} |",
                qps.qps()
            );
        }
    }
    let _ = full_provider.len();
    println!("\npaper: Flash-built graphs serve both variants at equal or better QPS-recall, at ~1/15 the build cost.");
}
