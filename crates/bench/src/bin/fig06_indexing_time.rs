//! Figure 6: indexing time of the five methods on all eight datasets, with
//! speedup ratios over baseline HNSW (the red annotations in the paper).

use bench::{workload, AnyIndex, Method, Scale};
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 6: indexing times (n = {} per dataset)\n", scale.n);
    println!("| dataset | Flash (s) | PCA (s) | SQ (s) | PQ (s) | HNSW (s) | Flash speedup |");
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for profile in DatasetProfile::ALL {
        let (base, _) = workload(profile, scale);
        let mut times = Vec::new();
        for method in Method::ALL {
            let (_, took) = AnyIndex::build(method, base.clone(), scale);
            times.push(took.as_secs_f64());
        }
        let speedup = times[4] / times[0];
        println!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {speedup:.1}x |",
            profile.name(),
            times[0],
            times[1],
            times[2],
            times[3],
            times[4],
        );
    }
    println!("\npaper: Flash speedups of 10.4x–22.9x across the eight datasets.");
}
