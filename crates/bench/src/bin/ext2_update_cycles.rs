//! Extension 2: the maintenance story of the paper's introduction,
//! measured — update cycles without rebuild erode search quality, the
//! periodic rebuild repairs it, and Flash shrinks the rebuild window.
//!
//! Two runs of the same churn workload (replace 10 % of the corpus per
//! cycle): one never rebuilds (segments and tombstones accumulate, the
//! FreshDiskANN-style decay the paper cites as 0.95 → 0.88 over 20
//! cycles), one rebuilds every 5 cycles. A final table times the compaction
//! itself with full-precision HNSW vs HNSW-Flash over the same live set.

use bench::Scale;
use flash::{BuildFlash, FlashHnsw, FlashParams};
use graphs::providers::FullPrecision;
use graphs::{Hnsw, HnswParams};
use maintenance::cycles::gaussian_generator;
use maintenance::{simulate_cycles, CycleWorkload, LsmConfig};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let dim = 64;
    let n = scale.n.max(1000);
    let cycles = 20;

    let mut config = LsmConfig::for_dim(dim);
    config.memtable_cap = (n / 8).max(256);
    config.hnsw = HnswParams {
        c: scale.c.min(96),
        r: scale.r.min(12),
        seed: 0x10,
    };

    let workload = |rebuild_every| CycleWorkload {
        n,
        churn: 0.10,
        cycles,
        queries: scale.queries.min(50),
        k: 10,
        ef: 96,
        rebuild_every,
        seed: 0xC1C,
    };

    println!("# Ext 2: update cycles — recall decay without rebuild vs periodic Flash rebuild");
    println!("(n = {n}, dim = {dim}, 10% churn/cycle, {cycles} cycles)\n");
    println!("| cycle | no-rebuild recall@10 | latency (ms) | segments | tombstones | rebuild-every-5 recall@10 | latency (ms) | segments | rebuild (s) |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|---:|");

    let never = simulate_cycles(config, workload(0), gaussian_generator(dim));
    let every5 = simulate_cycles(config, workload(5), gaussian_generator(dim));
    for (a, b) in never.iter().zip(every5.iter()) {
        println!(
            "| {} | {:.4} | {:.2} | {} | {} | {:.4} | {:.2} | {} | {:.2} |",
            a.cycle,
            a.recall,
            a.latency.as_secs_f64() * 1e3,
            a.segments,
            a.dead,
            b.recall,
            b.latency.as_secs_f64() * 1e3,
            b.segments,
            b.rebuild_time.as_secs_f64(),
        );
    }

    // Rebuild-window comparison on a fresh corpus of the same size.
    println!("\n## Rebuild window: full-precision HNSW vs HNSW-Flash over the live set\n");
    let (base, _) = vecstore::generate(
        &vecstore::DatasetSpec::new(dim, 8, 0.98, 0.25, 0xB11D),
        n,
        1,
        7,
    );
    let params = config.hnsw;
    let t0 = Instant::now();
    let _full = Hnsw::build(FullPrecision::new(base.clone()), params);
    let full_s = t0.elapsed().as_secs_f64();
    let mut fp = FlashParams::auto(dim);
    fp.train_sample = (n / 2).clamp(256, 10_000);
    let t0 = Instant::now();
    let _flash = FlashHnsw::build_flash(base, fp, params);
    let flash_s = t0.elapsed().as_secs_f64();
    println!("| method | rebuild (s) | speedup |");
    println!("|---|---:|---:|");
    println!("| HNSW (full precision) | {full_s:.2} | 1.0x |");
    println!(
        "| HNSW-Flash | {flash_s:.2} | {:.1}x |",
        full_s / flash_s.max(1e-9)
    );
    println!("\nexpected: no-rebuild recall drifts down as tombstones/segments accumulate; rebuild resets it; Flash cuts the rebuild window by the Figure-6 factor.");
}
