//! Extension 1: generality beyond Figure 14 — Vamana (α-RNG / DiskANN) and
//! HCNNG (MST family) built with and without Flash.
//!
//! Vamana shares the CA+NS skeleton, so the paper's argument predicts a
//! Figure-14-like speedup. HCNNG has *no* candidate pools (its distances
//! are partition tests and MST edge weights), so only the cheap-distance
//! effect of compact codes applies — a useful boundary case for the claim
//! that Flash's wins come from the CA/NS access pattern.

use bench::{workload, Scale};
use flash::{build_flash_hcnng, build_flash_vamana, FlashParams};
use graphs::providers::FullPrecision;
use graphs::{Hcnng, HcnngParams, Vamana, VamanaParams};
use metrics::measure_qps;
use std::time::Instant;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let (base, queries) = workload(DatasetProfile::LaionLike, scale);
    let gt = ground_truth(&base, &queries, k);
    let vparams = VamanaParams {
        r: scale.r,
        c: scale.c,
        alpha: 1.2,
        seed: 0xE1,
    };
    let hparams = HcnngParams {
        trees: 10,
        leaf_size: (scale.n / 64).clamp(24, 96),
        mst_degree: 3,
        seed: 0xE2,
    };
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = (scale.n / 2).clamp(256, 10_000);

    println!(
        "# Ext 1: Vamana and HCNNG with/without Flash (n = {})\n",
        scale.n
    );
    println!("| algorithm | build (s) | ef | recall@{k} | QPS |");
    println!("|---|---:|---:|---:|---:|");

    let report = |name: &str, secs: f64, search: &mut dyn FnMut(usize, usize) -> Vec<u32>| {
        for ef in [64usize, 128] {
            let mut found: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
            let qps = measure_qps(queries.len(), |qi| found.push(search(qi, ef)));
            let recall = metrics::recall_at_k(&found, &gt, k).recall();
            println!(
                "| {name} | {secs:.2} | {ef} | {recall:.4} | {:.0} |",
                qps.qps()
            );
        }
    };

    {
        let t0 = Instant::now();
        let v = Vamana::build(FullPrecision::new(base.clone()), vparams);
        let secs = t0.elapsed().as_secs_f64();
        report("Vamana", secs, &mut |qi, ef| {
            v.search(queries.get(qi), k, ef)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let v = build_flash_vamana(base.clone(), fp, vparams);
        let secs = t0.elapsed().as_secs_f64();
        report("Vamana-Flash", secs, &mut |qi, ef| {
            v.search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let h = Hcnng::build(FullPrecision::new(base.clone()), hparams);
        let secs = t0.elapsed().as_secs_f64();
        report("HCNNG", secs, &mut |qi, ef| {
            h.search(queries.get(qi), k, ef)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let h = build_flash_hcnng(base.clone(), fp, hparams);
        let secs = t0.elapsed().as_secs_f64();
        report("HCNNG-Flash", secs, &mut |qi, ef| {
            h.search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    println!("\nexpected: Vamana speedup mirrors NSG/τ-MG (CA+NS family); HCNNG speedup is smaller (cheap distances only, no layout effect).");
}
