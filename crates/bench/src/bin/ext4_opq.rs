//! Extension 4: the "optimized variant" question of Section 3.2.4 — does
//! swapping PQ for OPQ (learned rotation) change the indexing-time /
//! index-quality trade inside HNSW construction?
//!
//! The paper's Remark (1) predicts the answer: variants must avoid
//! excessive preprocessing overhead, and OPQ's alternating optimization is
//! exactly such overhead. The run reports training + encoding + build time
//! and the resulting search quality, next to HNSW-PQ and HNSW-Flash.

use bench::{workload, Scale};
use flash::{BuildFlash, FlashHnsw, FlashParams};
use graphs::providers::{OpqProvider, PqProvider};
use graphs::Hnsw;
use metrics::measure_qps;
use std::time::Instant;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let k = 10;
    let (base, queries) = workload(DatasetProfile::SsnppLike, scale);
    let gt = ground_truth(&base, &queries, k);
    let params = scale.hnsw();
    let dim = base.dim();
    let m = (dim / 32).clamp(4, 64);
    let train = (scale.n / 2).clamp(256, 4_000);

    println!(
        "# Ext 4: HNSW-OPQ vs HNSW-PQ vs HNSW-Flash (SSNPP-like, n = {})\n",
        scale.n
    );
    println!("| method | indexing time (s) | ef | recall@{k} | QPS |");
    println!("|---|---:|---:|---:|---:|");

    let report = |name: &str, secs: f64, search: &mut dyn FnMut(usize, usize) -> Vec<u32>| {
        for ef in [64usize, 128] {
            let mut found: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
            let qps = measure_qps(queries.len(), |qi| found.push(search(qi, ef)));
            let recall = metrics::recall_at_k(&found, &gt, k).recall();
            println!(
                "| {name} | {secs:.2} | {ef} | {recall:.4} | {:.0} |",
                qps.qps()
            );
        }
    };

    {
        let t0 = Instant::now();
        let index = Hnsw::build(PqProvider::new(base.clone(), m, 8, train, 0xA1), params);
        let secs = t0.elapsed().as_secs_f64();
        report("HNSW-PQ", secs, &mut |qi, ef| {
            index
                .search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    {
        let t0 = Instant::now();
        let index = Hnsw::build(OpqProvider::new(base.clone(), m, 8, 4, train, 0xA2), params);
        let secs = t0.elapsed().as_secs_f64();
        report("HNSW-OPQ", secs, &mut |qi, ef| {
            index
                .search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    {
        let mut fp = FlashParams::auto(dim);
        fp.train_sample = train;
        let t0 = Instant::now();
        let index = FlashHnsw::build_flash(base.clone(), fp, params);
        let secs = t0.elapsed().as_secs_f64();
        report("HNSW-Flash", secs, &mut |qi, ef| {
            index
                .search_rerank(queries.get(qi), k, ef, 8)
                .iter()
                .map(|r| r.id as u32)
                .collect()
        });
    }
    println!("\nexpected: OPQ's rotation buys some recall over PQ at the same code size but pays a visible training overhead; Flash dominates on indexing time (paper Remark 1).");
}
