//! Figure 12: Flash indexing time under different SIMD instruction sets
//! (SSE 128-bit, AVX 256-bit, AVX-512), plus the scalar floor.
//!
//! The dispatch tier is capped process-wide via `simdops::set_level_override`;
//! tiers not supported by the host CPU are skipped.

use bench::{workload, AnyIndex, Method, Scale};
use simdops::{set_level_override, supported_levels};
use vecstore::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Figure 12: Flash indexing time per SIMD tier (n = {})\n",
        scale.n
    );
    for profile in [DatasetProfile::LaionLike, DatasetProfile::SsnppLike] {
        println!("## {}\n", profile.name());
        println!("| tier | register bits | indexing time (s) |");
        println!("|---|---:|---:|");
        for level in supported_levels() {
            set_level_override(Some(level));
            let (base, _) = workload(profile, scale);
            let (_, took) = AnyIndex::build(Method::HnswFlash, base, scale);
            println!(
                "| {} | {} | {:.2} |",
                level.name(),
                level.register_bits(),
                took.as_secs_f64()
            );
        }
        set_level_override(None);
        println!();
    }
    println!(
        "paper: wider registers are faster, sub-linearly (memory effects + instruction latencies)."
    );
}
