//! Figure 16: Flash parameter sensitivity — d_F at fixed M_F (a), M_F at
//! fixed d_F (b); indexing time plus recall at a fixed search setting.

use bench::{workload, Scale};
use flash::{BuildFlash, FlashHnsw, FlashParams};
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let (base, queries) = workload(DatasetProfile::LaionLike, scale);
    let k = 1;
    let gt = ground_truth(&base, &queries, k);
    let train = (scale.n / 2).clamp(256, 10_000);

    let run = |d_f: usize, m_f: usize| {
        let fp = FlashParams {
            d_f,
            m_f,
            train_sample: train,
            kmeans_iters: 12,
            seed: 0xF1A5,
            grid_quantile: 0.5,
        };
        let t0 = std::time::Instant::now();
        let index = FlashHnsw::build_flash(base.clone(), fp, scale.hnsw());
        let took = t0.elapsed().as_secs_f64();
        let found: Vec<Vec<u32>> = (0..queries.len())
            .map(|qi| {
                index
                    .search_rerank(queries.get(qi), k, 64, 8)
                    .iter()
                    .map(|r| r.id as u32)
                    .collect()
            })
            .collect();
        (took, metrics::recall_at_k(&found, &gt, k).recall())
    };

    println!("# Figure 16a: d_F sweep (LAION-like, M_F = 16)\n");
    println!("| d_F | indexing time (s) | recall@1 |");
    println!("|---:|---:|---:|");
    for d_f in [16usize, 32, 48, 64, 96, 128] {
        let (took, recall) = run(d_f, 16);
        println!("| {d_f} | {took:.2} | {recall:.3} |");
    }

    println!("\n# Figure 16b: M_F sweep (LAION-like, d_F = 64)\n");
    println!("| M_F | indexing time (s) | recall@1 |");
    println!("|---:|---:|---:|");
    for m_f in [4usize, 8, 16, 32, 64] {
        let (took, recall) = run(64, m_f);
        println!("| {m_f} | {took:.2} | {recall:.3} |");
    }
    println!("\npaper: recall peaks at moderate d_F (info loss below, bit dilution above); time grows with M_F.");
}
