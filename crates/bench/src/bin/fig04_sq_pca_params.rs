//! Figure 4: parameter effects on HNSW-SQ (a) and HNSW-PCA (b).
//!
//! (a) `L_SQ` ∈ {2, 4, 8, 16}: the paper finds a time minimum at 8 bits
//! (sub-byte codes still occupy a `u8`; 16-bit codes double the traffic)
//! while recall rises monotonically.
//! (b) `d_PCA` sweep: indexing time rises with retained dimensionality,
//! recall rises as well, with the sweet spot below the full dimension.

use bench::{secs, workload, Scale};
use graphs::providers::{PcaProvider, Sq16Provider, SqProvider};
use graphs::Hnsw;
use std::time::Instant;
use vecstore::{ground_truth, DatasetProfile};

fn main() {
    let scale = Scale::from_env();
    let (base, queries) = workload(DatasetProfile::LaionLike, scale);
    let k = 1;
    let gt = ground_truth(&base, &queries, k);
    let train = (scale.n / 2).clamp(256, 5_000);

    let recall_of = |found: &[Vec<u32>]| metrics::recall_at_k(found, &gt, k).recall();

    println!("# Figure 4a: L_SQ sweep (LAION-like, HNSW-SQ)\n");
    println!("| L_SQ | indexing time (s) | recall@1 |");
    println!("|---:|---:|---:|");
    for bits in [2u8, 4, 8] {
        let t0 = Instant::now();
        let index = Hnsw::build(SqProvider::new(base.clone(), bits), scale.hnsw());
        let took = t0.elapsed();
        let found: Vec<Vec<u32>> = (0..queries.len())
            .map(|qi| {
                index
                    .search_rerank(queries.get(qi), k, 64, 8)
                    .iter()
                    .map(|r| r.id as u32)
                    .collect()
            })
            .collect();
        println!("| {bits} | {} | {:.3} |", secs(took), recall_of(&found));
    }
    {
        let t0 = Instant::now();
        let index = Hnsw::build(Sq16Provider::new(base.clone()), scale.hnsw());
        let took = t0.elapsed();
        let found: Vec<Vec<u32>> = (0..queries.len())
            .map(|qi| {
                index
                    .search_rerank(queries.get(qi), k, 64, 8)
                    .iter()
                    .map(|r| r.id as u32)
                    .collect()
            })
            .collect();
        println!("| 16 | {} | {:.3} |", secs(took), recall_of(&found));
    }

    println!("\n# Figure 4b: d_PCA sweep (LAION-like, HNSW-PCA)\n");
    println!("| d_PCA | indexing time (s) | recall@1 |");
    println!("|---:|---:|---:|");
    for d in [64usize, 128, 256, 512, 768] {
        let t0 = Instant::now();
        let index = Hnsw::build(PcaProvider::new(base.clone(), d, train), scale.hnsw());
        let took = t0.elapsed();
        let found: Vec<Vec<u32>> = (0..queries.len())
            .map(|qi| {
                index
                    .search_rerank(queries.get(qi), k, 64, 4)
                    .iter()
                    .map(|r| r.id as u32)
                    .collect()
            })
            .collect();
        println!("| {d} | {} | {:.3} |", secs(took), recall_of(&found));
    }
    println!("\npaper: SQ time minimal at 8 bits; PCA time grows with d_PCA, recall too.");
}
