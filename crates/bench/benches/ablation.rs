//! Ablations of the design choices DESIGN.md calls out:
//!
//! * PCA-before-subspacing vs raw subspacing (bit utilization);
//! * batched subspace-major code layout vs per-neighbor single lookups;
//! * SIMD vs scalar LUT walks inside the Flash provider.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash::{FlashBlocks, FlashParams, FlashProvider};
use graphs::DistanceProvider;
use std::hint::black_box;
use vecstore::{generate, DatasetProfile};

fn provider(use_simd: bool) -> FlashProvider {
    let (base, _) = generate(&DatasetProfile::SsnppLike.spec(), 2_000, 1, 0xAB);
    FlashProvider::new(
        base,
        FlashParams {
            d_f: 64,
            m_f: 16,
            train_sample: 1_000,
            kmeans_iters: 8,
            seed: 1,
            grid_quantile: 0.5,
        },
    )
    .with_simd(use_simd)
}

/// Batched block kernel vs per-neighbor `lut16_single` walks over the same
/// 32-neighbor list — the value of the access-aware layout in isolation.
fn bench_batch_vs_single(c: &mut Criterion) {
    let p = provider(true);
    let ctx = p.prepare_insert(0);
    let ids: Vec<u32> = (1..33).collect();
    let mut payload = FlashBlocks::default();
    p.sync_payload(&mut payload, &ids);

    let mut group = c.benchmark_group("ablation_layout");
    group
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("batched_blocks", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            p.dist_to_neighbors(black_box(&ctx), black_box(&ids), &payload, &mut out);
            black_box(out.len())
        })
    });
    group.bench_function("single_lookups", |bench| {
        bench.iter(|| {
            let sum: f32 = ids.iter().map(|&id| p.dist_to(black_box(&ctx), id)).sum();
            black_box(sum)
        })
    });
    group.finish();
}

/// SIMD vs scalar LUT walks through the full provider path.
fn bench_simd_vs_scalar_provider(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_simd_provider");
    group
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2));
    for (name, use_simd) in [("simd", true), ("scalar", false)] {
        let p = provider(use_simd);
        let ctx = p.prepare_insert(0);
        let ids: Vec<u32> = (1..33).collect();
        let mut payload = FlashBlocks::default();
        p.sync_payload(&mut payload, &ids);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |bench, _| {
            let mut out = Vec::new();
            bench.iter(|| {
                p.dist_to_neighbors(black_box(&ctx), &ids, &payload, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

/// PCA-first vs raw subspacing: quantization error of the two codecs at
/// equal bit budget (measured, not timed — reported via iteration count of
/// an error-summing loop; the interesting number is printed once).
fn bench_pca_vs_raw(c: &mut Criterion) {
    let (base, _) = generate(&DatasetProfile::SsnppLike.spec(), 1_500, 1, 0xAC);
    // PCA-first codec (the Flash design).
    let pca_codec = flash::FlashCodec::train(
        &base,
        FlashParams {
            d_f: 64,
            m_f: 16,
            train_sample: 1_000,
            kmeans_iters: 8,
            seed: 2,
            grid_quantile: 0.5,
        },
    );
    // Raw-subspace baseline at the same bit budget: PQ with 16 subspaces of
    // 4 bits over the raw 256 dims.
    let sample = base.stride_sample(1_000);
    let raw_pq = quantizers::ProductQuantizer::train(&sample, 16, 4, 8, 2);

    use quantizers::Codec as _;
    let err = |rec: &dyn Fn(&[f32]) -> Vec<f32>| -> f64 {
        (0..200)
            .map(|i| f64::from(simdops::l2_sq(base.get(i), &rec(base.get(i)))))
            .sum()
    };
    let e_pca = err(&|v| pca_codec.reconstruct(v));
    let e_raw = err(&|v| raw_pq.reconstruct(v));
    println!(
        "\n[ablation] reconstruction error, equal 64-bit budget: PCA-first {e_pca:.1} vs raw-subspace {e_raw:.1} ({\
         :.2}x)\n",
        e_raw / e_pca
    );

    let mut group = c.benchmark_group("ablation_encode");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("flash_encode_pca_first", |bench| {
        bench.iter(|| black_box(pca_codec.encode(black_box(base.get(7)))))
    });
    group.bench_function("pq_encode_raw_subspace", |bench| {
        bench.iter(|| black_box(raw_pq.encode(black_box(base.get(7)))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_vs_single,
    bench_simd_vs_scalar_provider,
    bench_pca_vs_raw
);
criterion_main!(benches);
