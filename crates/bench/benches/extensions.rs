//! Microbenches for the extension systems: Vamana/HCNNG construction,
//! OPQ vs PQ training cost, filtered-search overhead, and the LSM
//! maintenance operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash::{FlashParams, FlashProvider};
use graphs::providers::FullPrecision;
use graphs::{Hcnng, HcnngParams, Hnsw, HnswParams, Vamana, VamanaParams};
use maintenance::{LsmConfig, LsmVectorIndex};
use quantizers::{OptimizedProductQuantizer, ProductQuantizer};
use std::hint::black_box;
use std::time::Duration;
use vecstore::{generate, DatasetProfile, VectorSet};

fn small_base(n: usize) -> VectorSet {
    generate(&DatasetProfile::SsnppLike.spec(), n, 1, 0xBE).0
}

/// Vamana and HCNNG build cost, full precision vs Flash provider.
fn bench_ext_builders(c: &mut Criterion) {
    let base = small_base(1_200);
    let mut fp = FlashParams::auto(base.dim());
    fp.train_sample = 600;

    let mut group = c.benchmark_group("ext_builders");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("vamana_full", |b| {
        b.iter(|| {
            let v = Vamana::build(
                FullPrecision::new(base.clone()),
                VamanaParams {
                    r: 10,
                    c: 48,
                    alpha: 1.2,
                    seed: 1,
                },
            );
            black_box(v.graph().edges())
        })
    });
    group.bench_function("vamana_flash", |b| {
        b.iter(|| {
            let v = Vamana::build(
                FlashProvider::new(base.clone(), fp),
                VamanaParams {
                    r: 10,
                    c: 48,
                    alpha: 1.2,
                    seed: 1,
                },
            );
            black_box(v.graph().edges())
        })
    });
    group.bench_function("hcnng_full", |b| {
        b.iter(|| {
            let h = Hcnng::build(
                FullPrecision::new(base.clone()),
                HcnngParams {
                    trees: 6,
                    leaf_size: 48,
                    mst_degree: 3,
                    seed: 1,
                },
            );
            black_box(h.graph().edges())
        })
    });
    group.bench_function("hcnng_flash", |b| {
        b.iter(|| {
            let h = Hcnng::build(
                FlashProvider::new(base.clone(), fp),
                HcnngParams {
                    trees: 6,
                    leaf_size: 48,
                    mst_degree: 3,
                    seed: 1,
                },
            );
            black_box(h.graph().edges())
        })
    });
    group.finish();
}

/// OPQ's alternating optimization vs plain PQ training — the overhead the
/// paper's Remark 1 warns about, isolated from graph construction.
fn bench_opq_vs_pq_training(c: &mut Criterion) {
    let base = small_base(800);
    let mut group = c.benchmark_group("ext_opq_training");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("pq_train", |b| {
        b.iter(|| black_box(ProductQuantizer::train(&base, 8, 4, 10, 7)))
    });
    for iters in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("opq_train", iters), &iters, |b, &iters| {
            b.iter(|| black_box(OptimizedProductQuantizer::train(&base, 8, 4, iters, 10, 7)))
        });
    }
    group.finish();
}

/// Query-time cost of predicate filtering at different selectivities.
fn bench_filtered_search(c: &mut Criterion) {
    let base = small_base(3_000);
    let queries = generate(&DatasetProfile::SsnppLike.spec(), 1, 16, 0xF).1;
    let index = Hnsw::build(
        FullPrecision::new(base),
        HnswParams {
            c: 64,
            r: 12,
            seed: 3,
        },
    );
    let mut group = c.benchmark_group("ext_filtered_search");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("unfiltered", |b| {
        b.iter(|| {
            let mut n = 0;
            for qi in 0..queries.len() {
                n += index.search(queries.get(qi), 10, 64).len();
            }
            black_box(n)
        })
    });
    for denom in [2u32, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("filtered_1_over", denom),
            &denom,
            |b, &denom| {
                let accept = move |id: u32| id % denom == 0;
                b.iter(|| {
                    let mut n = 0;
                    for qi in 0..queries.len() {
                        n += index
                            .search_filtered(queries.get(qi), 10, 64, &accept)
                            .len();
                    }
                    black_box(n)
                })
            },
        );
    }
    group.finish();
}

/// The LSM maintenance primitives: insert throughput, mixed churn, rebuild.
fn bench_lsm_ops(c: &mut Criterion) {
    let dim = 32;
    let mut group = c.benchmark_group("ext_lsm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    group.bench_function("insert_1k_with_seals", |b| {
        b.iter(|| {
            let mut config = LsmConfig::for_dim(dim);
            config.memtable_cap = 256;
            config.hnsw = HnswParams {
                c: 32,
                r: 8,
                seed: 1,
            };
            let mut index = LsmVectorIndex::new(config);
            for i in 0..1_000u32 {
                let v: Vec<f32> = (0..dim).map(|d| ((i + d as u32) % 17) as f32).collect();
                index.insert(&v);
            }
            black_box(index.stats().segments)
        })
    });

    group.bench_function("rebuild_1k", |b| {
        // Build the fragmented state once per iteration batch would skew
        // timings; rebuild on a cloned fresh construction instead.
        b.iter_with_setup(
            || {
                let mut config = LsmConfig::for_dim(dim);
                config.memtable_cap = 256;
                config.hnsw = HnswParams {
                    c: 32,
                    r: 8,
                    seed: 2,
                };
                let mut index = LsmVectorIndex::new(config);
                for i in 0..1_000u32 {
                    let v: Vec<f32> = (0..dim).map(|d| ((i * 3 + d as u32) % 23) as f32).collect();
                    index.insert(&v);
                }
                for id in (0..1_000u64).step_by(4) {
                    index.delete(id);
                }
                index
            },
            |mut index| {
                let report = index.rebuild();
                black_box(report.vectors)
            },
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ext_builders,
    bench_opq_vs_pq_training,
    bench_filtered_search,
    bench_lsm_ops
);
criterion_main!(benches);
