//! End-to-end construction benchmarks: one small build per method, so
//! `cargo bench` tracks the headline indexing-time comparison over time.

use bench::{AnyIndex, Method, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vecstore::{generate, DatasetProfile};

fn bench_builds(c: &mut Criterion) {
    let scale = Scale {
        n: 1_000,
        queries: 1,
        c: 64,
        r: 8,
    };
    let (base, _) = generate(&DatasetProfile::SsnppLike.spec(), scale.n, 1, 0xBE);
    let mut group = c.benchmark_group("index_construction_1k_256d");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_millis(500));
    for method in Method::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |bench, &method| {
                bench.iter(|| {
                    let (index, _) = AnyIndex::build(method, base.clone(), scale);
                    black_box(index.index_bytes())
                })
            },
        );
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let scale = Scale {
        n: 2_000,
        queries: 16,
        c: 64,
        r: 8,
    };
    let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), scale.n, 16, 0xBF);
    let mut group = c.benchmark_group("search_2k_256d_ef64");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4));
    for method in [Method::Hnsw, Method::HnswFlash] {
        let (index, _) = AnyIndex::build(method, base.clone(), scale);
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &(),
            |bench, _| {
                let mut qi = 0usize;
                bench.iter(|| {
                    let hits = index.search(queries.get(qi % 16), 10, 64);
                    qi += 1;
                    black_box(hits.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_builds, bench_search);
criterion_main!(benches);
