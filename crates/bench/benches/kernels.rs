//! Microbenchmarks of the distance kernels — the per-instruction story
//! behind the paper's Equation 12 vs 13 (register loads per distance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simdops::level::with_level;
use simdops::{l2_sq, l2_sq_u8, lut16_batch, supported_levels, LUT_BATCH};
use std::hint::black_box;

fn deterministic_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32) / 16777216.0 - 0.5
        })
        .collect()
}

fn deterministic_u8(n: usize, seed: u64, max: u16) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 48) as u16 % (max + 1)) as u8
        })
        .collect()
}

fn bench_l2_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_sq_f32");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800));
    for dim in [256usize, 768, 1024] {
        let a = deterministic_f32(dim, 1);
        let b = deterministic_f32(dim, 2);
        for level in supported_levels() {
            group.bench_with_input(BenchmarkId::new(level.name(), dim), &dim, |bench, _| {
                with_level(level, || {
                    bench.iter(|| black_box(l2_sq(black_box(&a), black_box(&b))))
                })
            });
        }
    }
    group.finish();
}

fn bench_u8_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_sq_u8");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(500));
    for dim in [256usize, 768] {
        let a = deterministic_u8(dim, 3, 255);
        let b = deterministic_u8(dim, 4, 255);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| black_box(l2_sq_u8(black_box(&a), black_box(&b))))
        });
    }
    group.finish();
}

fn bench_lut_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash_lut16_batch");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800));
    for m in [8usize, 16, 32] {
        let tables = deterministic_u8(m * 16, 5, 255);
        let codes = deterministic_u8(m * 16, 6, 15);
        for level in supported_levels() {
            group.bench_with_input(BenchmarkId::new(level.name(), m), &m, |bench, &m| {
                with_level(level, || {
                    bench.iter(|| {
                        let mut out = [0u16; LUT_BATCH];
                        lut16_batch(black_box(&tables), black_box(&codes), m, &mut out);
                        black_box(out)
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_l2_levels, bench_u8_distance, bench_lut_batch);
criterion_main!(benches);
