//! Dataset sharding for the multi-segment scalability experiment.
//!
//! Modern vector databases shard large collections into segments of tens of
//! millions of vectors and build one graph index per segment (paper
//! Section 2.1.4 and Figure 11). This module provides the deterministic
//! splitting used by that experiment.

use crate::set::VectorSet;

/// Splits a dataset into `segments` contiguous shards of near-equal size.
///
/// The first `len % segments` shards receive one extra vector, matching how
/// LSM-style systems cap segment sizes. Order is preserved.
///
/// # Panics
/// Panics if `segments == 0` or `segments > set.len()`.
pub fn split_into_segments(set: &VectorSet, segments: usize) -> Vec<VectorSet> {
    assert!(segments > 0, "need at least one segment");
    assert!(
        segments <= set.len(),
        "cannot split {} vectors into {segments} segments",
        set.len()
    );
    let n = set.len();
    let base = n / segments;
    let extra = n % segments;
    let mut out = Vec::with_capacity(segments);
    let mut start = 0;
    for i in 0..segments {
        let size = base + usize::from(i < extra);
        out.push(set.slice(start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> VectorSet {
        VectorSet::from_flat(1, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn even_split() {
        let set = line(10);
        let segs = split_into_segments(&set, 5);
        assert_eq!(segs.len(), 5);
        assert!(segs.iter().all(|s| s.len() == 2));
        assert_eq!(segs[0].get(0)[0], 0.0);
        assert_eq!(segs[4].get(1)[0], 9.0);
    }

    #[test]
    fn uneven_split_front_loads_extras() {
        let set = line(11);
        let segs = split_into_segments(&set, 3);
        let sizes: Vec<usize> = segs.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![4, 4, 3]);
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn single_segment_is_whole_set() {
        let set = line(7);
        let segs = split_into_segments(&set, 1);
        assert_eq!(segs[0], set);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _ = split_into_segments(&line(5), 0);
    }

    #[test]
    fn segments_preserve_order_and_cover_everything() {
        let set = line(23);
        let segs = split_into_segments(&set, 7);
        let mut rebuilt = VectorSet::new(1);
        for s in &segs {
            rebuilt.extend_from(s);
        }
        assert_eq!(rebuilt, set);
    }
}
