//! Exact brute-force k-nearest-neighbor ground truth.
//!
//! The paper generates ground truth "through a linear scan" (Section 4.1.1);
//! this module is that linear scan, parallelized over queries with rayon.

use crate::set::VectorSet;
use rayon::prelude::*;
use simdops::l2_sq;

/// One exact neighbor: vector id plus squared L2 distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index into the database [`VectorSet`].
    pub id: u32,
    /// Squared Euclidean distance to the query.
    pub dist_sq: f32,
}

/// Computes the exact top-`k` neighbors of every query by linear scan.
///
/// Results per query are sorted by ascending distance (ties broken by id so
/// output is deterministic).
///
/// # Panics
/// Panics if dimensionalities differ or `k == 0`.
pub fn ground_truth(base: &VectorSet, queries: &VectorSet, k: usize) -> Vec<Vec<Neighbor>> {
    assert_eq!(base.dim(), queries.dim(), "dimensionality mismatch");
    assert!(k > 0, "k must be positive");
    let k = k.min(base.len());

    (0..queries.len())
        .into_par_iter()
        .map(|qi| {
            let q = queries.get(qi);
            let mut heap: Vec<Neighbor> = Vec::with_capacity(k + 1);
            for (id, v) in base.iter().enumerate() {
                let d = l2_sq(q, v);
                if heap.len() < k {
                    heap.push(Neighbor {
                        id: id as u32,
                        dist_sq: d,
                    });
                    if heap.len() == k {
                        heap.sort_by(cmp_neighbor);
                    }
                } else if d < heap[k - 1].dist_sq {
                    // Insert in sorted position, drop the tail.
                    let pos = heap.partition_point(|n| (n.dist_sq, n.id) < (d, id as u32));
                    heap.insert(
                        pos,
                        Neighbor {
                            id: id as u32,
                            dist_sq: d,
                        },
                    );
                    heap.pop();
                }
            }
            heap.sort_by(cmp_neighbor);
            heap
        })
        .collect()
}

fn cmp_neighbor(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    (a.dist_sq, a.id)
        .partial_cmp(&(b.dist_sq, b.id))
        .expect("NaN distance in ground truth")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d() -> VectorSet {
        // Points 0, 1, ..., 9 on a line.
        VectorSet::from_flat(1, (0..10).map(|i| i as f32).collect())
    }

    #[test]
    fn finds_exact_neighbors_on_a_line() {
        let base = grid_1d();
        let queries = VectorSet::from_flat(1, vec![3.2]);
        let gt = ground_truth(&base, &queries, 3);
        let ids: Vec<u32> = gt[0].iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 4, 2]);
    }

    #[test]
    fn distances_are_sorted() {
        let base = grid_1d();
        let queries = VectorSet::from_flat(1, vec![7.9, 0.1]);
        let gt = ground_truth(&base, &queries, 5);
        for per_query in &gt {
            for w in per_query.windows(2) {
                assert!(w[0].dist_sq <= w[1].dist_sq);
            }
        }
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let base = VectorSet::from_flat(1, vec![1.0, 2.0]);
        let queries = VectorSet::from_flat(1, vec![0.0]);
        let gt = ground_truth(&base, &queries, 10);
        assert_eq!(gt[0].len(), 2);
    }

    #[test]
    fn ties_break_by_id() {
        // Two points equidistant from the query.
        let base = VectorSet::from_flat(1, vec![-1.0, 1.0]);
        let queries = VectorSet::from_flat(1, vec![0.0]);
        let gt = ground_truth(&base, &queries, 2);
        assert_eq!(gt[0][0].id, 0);
        assert_eq!(gt[0][1].id, 1);
    }

    #[test]
    fn multi_dimensional_case() {
        let base = VectorSet::from_flat(2, vec![0.0, 0.0, 3.0, 4.0, 1.0, 1.0]);
        let queries = VectorSet::from_flat(2, vec![0.5, 0.5]);
        let gt = ground_truth(&base, &queries, 3);
        // (0,0) and (1,1) are both at squared distance 0.5; tie breaks by id.
        assert_eq!(gt[0][0].id, 0);
        assert_eq!(gt[0][1].id, 2);
        assert_eq!(gt[0][2].id, 1);
        assert!((gt[0][0].dist_sq - 0.5).abs() < 1e-6);
        assert!((gt[0][1].dist_sq - 0.5).abs() < 1e-6);
    }
}
