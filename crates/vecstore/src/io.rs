//! `fvecs` / `ivecs` / `bvecs` file formats.
//!
//! These are the de-facto interchange formats of the ANNS benchmark
//! ecosystem (TEXMEX, Big-ANN-Benchmarks): each record is a little-endian
//! `u32` dimensionality followed by `dim` elements (`f32`, `i32`, or `u8`).
//! Supporting them means the synthetic workloads in [`crate::gen`] can be
//! swapped for the paper's real datasets without touching the harness.

use crate::set::VectorSet;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an `.fvecs` file into a [`VectorSet`].
///
/// # Errors
/// Returns an error on I/O failure, inconsistent dimensionality between
/// records, or a truncated record.
pub fn read_fvecs(path: &Path) -> io::Result<VectorSet> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    loop {
        let mut head = [0u8; 4];
        match reader.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = u32::from_le_bytes(head) as usize;
        if d == 0 {
            return Err(bad_data("zero-dimensional record"));
        }
        match dim {
            None => dim = Some(d),
            Some(expect) if expect != d => {
                return Err(bad_data(format!(
                    "inconsistent dimensionality: {expect} then {d}"
                )))
            }
            _ => {}
        }
        let mut buf = vec![0u8; d * 4];
        reader.read_exact(&mut buf)?;
        data.extend(
            buf.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
    }
    let dim = dim.ok_or_else(|| bad_data("empty fvecs file"))?;
    Ok(VectorSet::from_flat(dim, data))
}

/// Writes a [`VectorSet`] as `.fvecs`.
///
/// # Errors
/// Returns any underlying I/O error.
pub fn write_fvecs(path: &Path, set: &VectorSet) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let dim_le = (set.dim() as u32).to_le_bytes();
    for v in set.iter() {
        w.write_all(&dim_le)?;
        for &x in v {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads an `.ivecs` file (ground-truth id lists) as rows of `i32`.
///
/// # Errors
/// Returns an error on I/O failure or malformed records.
pub fn read_ivecs(path: &Path) -> io::Result<Vec<Vec<i32>>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut rows = Vec::new();
    loop {
        let mut head = [0u8; 4];
        match reader.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = u32::from_le_bytes(head) as usize;
        let mut buf = vec![0u8; d * 4];
        reader.read_exact(&mut buf)?;
        rows.push(
            buf.chunks_exact(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        );
    }
    Ok(rows)
}

/// Writes ground-truth id rows as `.ivecs`.
///
/// # Errors
/// Returns any underlying I/O error.
pub fn write_ivecs(path: &Path, rows: &[Vec<i32>]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for row in rows {
        w.write_all(&(row.len() as u32).to_le_bytes())?;
        for &x in row {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads a `.bvecs` file (byte vectors, e.g. SIFT1B) widening to `f32`.
///
/// # Errors
/// Returns an error on I/O failure or malformed records.
pub fn read_bvecs(path: &Path) -> io::Result<VectorSet> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    loop {
        let mut head = [0u8; 4];
        match reader.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = u32::from_le_bytes(head) as usize;
        if d == 0 {
            return Err(bad_data("zero-dimensional record"));
        }
        if let Some(expect) = dim {
            if expect != d {
                return Err(bad_data("inconsistent dimensionality"));
            }
        } else {
            dim = Some(d);
        }
        let mut buf = vec![0u8; d];
        reader.read_exact(&mut buf)?;
        data.extend(buf.iter().map(|&b| f32::from(b)));
    }
    let dim = dim.ok_or_else(|| bad_data("empty bvecs file"))?;
    Ok(VectorSet::from_flat(dim, data))
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hnsw_flash_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn fvecs_roundtrip() {
        let path = tmp("a.fvecs");
        let set = VectorSet::from_flat(3, vec![1.0, 2.0, 3.0, -4.0, 5.5, 0.0]);
        write_fvecs(&path, &set).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ivecs_roundtrip() {
        let path = tmp("b.ivecs");
        let rows = vec![vec![1, 2, 3], vec![9, 8, 7]];
        write_ivecs(&path, &rows).unwrap();
        let back = read_ivecs(&path).unwrap();
        assert_eq!(back, rows);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_fvecs_is_an_error() {
        let path = tmp("c.fvecs");
        std::fs::write(&path, b"").unwrap();
        assert!(read_fvecs(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_record_is_an_error() {
        let path = tmp("d.fvecs");
        // Claims 4 dims but provides only 2 floats.
        let mut bytes = 4u32.to_le_bytes().to_vec();
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2.0f32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_fvecs(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_dim_is_an_error() {
        let path = tmp("e.fvecs");
        let mut bytes = Vec::new();
        bytes.extend(1u32.to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2u32.to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2.0f32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_fvecs(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bvecs_widens_to_f32() {
        let path = tmp("f.bvecs");
        let mut bytes = Vec::new();
        bytes.extend(2u32.to_le_bytes());
        bytes.extend([7u8, 255u8]);
        std::fs::write(&path, &bytes).unwrap();
        let set = read_bvecs(&path).unwrap();
        assert_eq!(set.get(0), &[7.0, 255.0]);
        std::fs::remove_file(&path).ok();
    }
}
