//! Contiguous row-major vector storage.

/// A set of `f32` vectors of equal dimensionality stored in one contiguous
/// buffer — the memory layout the paper's baseline HNSW uses for vector data
/// (vertex `i`'s vector lives at offset `i * dim`).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSet {
    dim: usize,
    data: Vec<f32>,
}

impl VectorSet {
    /// Creates an empty set of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty set with capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "buffer not a multiple of dim={dim}"
        );
        Self { dim, data }
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the set holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow vector `i`.
    ///
    /// # Panics
    /// Panics (via slice indexing) if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrow vector `i`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimensionality mismatch");
        self.data.extend_from_slice(v);
    }

    /// Appends all vectors from another set of the same dimensionality.
    pub fn extend_from(&mut self, other: &VectorSet) {
        assert_eq!(other.dim, self.dim, "dimensionality mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// Iterator over vector slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Extracts a sub-range `[start, end)` of vectors as a new set.
    pub fn slice(&self, start: usize, end: usize) -> VectorSet {
        assert!(start <= end && end <= self.len(), "range out of bounds");
        VectorSet {
            dim: self.dim,
            data: self.data[start * self.dim..end * self.dim].to_vec(),
        }
    }

    /// Takes a deterministic sample of `k` vectors (stride sampling), used
    /// for codebook training. Returns all vectors if `k >= len`.
    pub fn stride_sample(&self, k: usize) -> VectorSet {
        let n = self.len();
        if k >= n || k == 0 {
            return self.clone();
        }
        let mut out = VectorSet::with_capacity(self.dim, k);
        // Walk with a fixed stride so the sample spans the whole set.
        let stride = n as f64 / k as f64;
        for i in 0..k {
            out.push(self.get((i as f64 * stride) as usize));
        }
        out
    }

    /// L2-normalizes every vector in place (zero vectors are left
    /// untouched). After normalization, squared L2 distance is a monotone
    /// transform of cosine distance (`‖a − b‖² = 2 − 2·cos(a, b)`), so
    /// *every* provider — Flash included — serves cosine/IP workloads by
    /// normalizing the base and the queries.
    pub fn normalize(&mut self) {
        if self.dim() == 0 {
            return;
        }
        for i in 0..self.len() {
            let v = self.get_mut(i);
            let norm = v
                .iter()
                .map(|&x| f64::from(x) * f64::from(x))
                .sum::<f64>()
                .sqrt();
            if norm > 0.0 {
                let inv = (1.0 / norm) as f32;
                for x in v.iter_mut() {
                    *x *= inv;
                }
            }
        }
    }

    /// Returns an L2-normalized copy (see [`Self::normalize`]).
    pub fn normalized(&self) -> VectorSet {
        let mut out = self.clone();
        out.normalize();
        out
    }

    /// Total bytes of vector payload (excluding the container overhead) —
    /// used for index-size accounting (paper Figure 7).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut s = VectorSet::new(3);
        s.push(&[1.0, 2.0, 3.0]);
        s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dim_panics() {
        let mut s = VectorSet::new(3);
        s.push(&[1.0]);
    }

    #[test]
    fn from_flat_validates_length() {
        let s = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = VectorSet::from_flat(3, vec![1.0, 2.0]);
    }

    #[test]
    fn iter_yields_rows() {
        let s = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f32]> = s.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn slice_extracts_range() {
        let s = VectorSet::from_flat(1, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let mid = s.slice(1, 4);
        assert_eq!(mid.as_flat(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn stride_sample_spans_set() {
        let s = VectorSet::from_flat(1, (0..100).map(|i| i as f32).collect());
        let sample = s.stride_sample(10);
        assert_eq!(sample.len(), 10);
        assert_eq!(sample.get(0)[0], 0.0);
        assert!(sample.get(9)[0] >= 90.0);
    }

    #[test]
    fn stride_sample_degenerate_cases() {
        let s = VectorSet::from_flat(1, vec![1.0, 2.0]);
        assert_eq!(s.stride_sample(10).len(), 2);
        assert_eq!(s.stride_sample(0).len(), 2);
    }

    #[test]
    fn payload_bytes_counts_f32() {
        let s = VectorSet::from_flat(4, vec![0.0; 40]);
        assert_eq!(s.payload_bytes(), 160);
    }
}
