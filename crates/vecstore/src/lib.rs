//! Vector dataset substrate for the `hnsw-flash` workspace.
//!
//! The paper evaluates on eight real embedding datasets (Table 1) that we
//! cannot ship. This crate provides:
//!
//! * [`VectorSet`] — contiguous row-major storage for `f32` vectors, the
//!   common currency of every other crate;
//! * [`gen`] — seeded synthetic generators whose spectra mimic deep-embedding
//!   data (clustered Gaussians with geometrically decaying per-axis
//!   variance), with one named profile per paper dataset;
//! * [`io`] — `fvecs`/`ivecs`/`bvecs` readers and writers so the real
//!   datasets can be dropped in where available;
//! * [`groundtruth`] — exact brute-force k-NN for recall evaluation;
//! * [`segments`] — dataset sharding used by the paper's Figure 11
//!   (multi-segment) scalability experiment.

pub mod gen;
pub mod groundtruth;
pub mod io;
pub mod segments;
pub mod set;

pub use gen::{generate, DatasetProfile, DatasetSpec};
pub use groundtruth::{ground_truth, Neighbor};
pub use segments::split_into_segments;
pub use set::VectorSet;
