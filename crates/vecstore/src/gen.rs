//! Seeded synthetic embedding generators.
//!
//! The paper's datasets are deep-model embeddings (Table 1): LAION/CLIP
//! image-text vectors (768-d), wiki sentence embeddings (1024-d), SSNPP
//! descriptors (256-d), and so on. Embedding matrices share two structural
//! properties that matter for this paper:
//!
//! 1. **Cluster structure** — semantically similar items form dense local
//!    neighborhoods, which is what makes graph indexes navigable;
//! 2. **Skewed variance spectrum** — variance concentrates in a small number
//!    of principal directions (the paper reports 90 % cumulative variance at
//!    `d_PCA = 420` of 768 on LAION). Flash's PCA stage exploits exactly
//!    this.
//!
//! The generator therefore samples from a mixture of Gaussians whose axis
//! variances decay geometrically, then applies a fixed random rotation so
//! the principal directions are not axis-aligned (otherwise PCA would be
//! trivially the identity and its cost would be misrepresented).

use crate::set::VectorSet;
use linalg::random_orthogonal;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Named generation profiles mirroring the paper's eight datasets.
///
/// The `*_LIKE` names keep the correspondence to Table 1 obvious; volumes
/// are chosen by the caller (the paper's 10M–1B scale is out of reach for a
/// single-core CI box, but construction-cost *shape* is volume-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// ARGILLA (1024-d persona embeddings).
    ArgillaLike,
    /// ANTON (1024-d wiki embeddings).
    AntonLike,
    /// LAION (768-d CLIP embeddings).
    LaionLike,
    /// IMAGENET (768-d image embeddings).
    ImagenetLike,
    /// COHERE (768-d multilingual wiki embeddings).
    CohereLike,
    /// DATACOMP (768-d CLIP embeddings).
    DatacompLike,
    /// BIGCODE (768-d code embeddings).
    BigcodeLike,
    /// SSNPP (256-d similarity-search descriptors).
    SsnppLike,
}

impl DatasetProfile {
    /// All eight profiles in the order the paper's figures list them.
    pub const ALL: [DatasetProfile; 8] = [
        DatasetProfile::SsnppLike,
        DatasetProfile::LaionLike,
        DatasetProfile::CohereLike,
        DatasetProfile::BigcodeLike,
        DatasetProfile::ImagenetLike,
        DatasetProfile::DatacompLike,
        DatasetProfile::AntonLike,
        DatasetProfile::ArgillaLike,
    ];

    /// Display name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::ArgillaLike => "ARGILLA-like",
            DatasetProfile::AntonLike => "ANTON-like",
            DatasetProfile::LaionLike => "LAION-like",
            DatasetProfile::ImagenetLike => "IMAGENET-like",
            DatasetProfile::CohereLike => "COHERE-like",
            DatasetProfile::DatacompLike => "DATACOMP-like",
            DatasetProfile::BigcodeLike => "BIGCODE-like",
            DatasetProfile::SsnppLike => "SSNPP-like",
        }
    }

    /// Full dataset spec for this profile.
    ///
    /// Per-profile knobs vary cluster counts and spectral decay so the eight
    /// workloads are not clones of one another (the paper's datasets show
    /// visibly different compression/recall behaviour).
    pub fn spec(self) -> DatasetSpec {
        // Cluster counts are in the hundreds: deep-embedding corpora have
        // many fine-grained semantic neighborhoods, and this local-manifold
        // structure is what product-quantization-style codecs rely on.
        match self {
            DatasetProfile::ArgillaLike => DatasetSpec::new(1024, 320, 0.992, 0.35, 101),
            DatasetProfile::AntonLike => DatasetSpec::new(1024, 256, 0.990, 0.40, 102),
            DatasetProfile::LaionLike => DatasetSpec::new(768, 300, 0.990, 0.45, 103),
            DatasetProfile::ImagenetLike => DatasetSpec::new(768, 400, 0.988, 0.40, 104),
            DatasetProfile::CohereLike => DatasetSpec::new(768, 256, 0.991, 0.40, 105),
            DatasetProfile::DatacompLike => DatasetSpec::new(768, 288, 0.989, 0.45, 106),
            DatasetProfile::BigcodeLike => DatasetSpec::new(768, 224, 0.990, 0.50, 107),
            DatasetProfile::SsnppLike => DatasetSpec::new(256, 200, 0.975, 0.50, 108),
        }
    }
}

/// Parameters of the synthetic embedding distribution.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Vector dimensionality `D`.
    pub dim: usize,
    /// Number of Gaussian mixture components.
    pub clusters: usize,
    /// Geometric per-axis variance decay `r` (axis `i` has std `r^i` before
    /// rotation). Values near 1 mean a flatter spectrum.
    pub variance_decay: f64,
    /// Within-cluster noise scale relative to the global spread.
    pub cluster_tightness: f64,
    /// Base seed; combined with the caller's seed for reproducibility.
    pub profile_seed: u64,
}

impl DatasetSpec {
    /// Creates a spec; see field docs for parameter meanings.
    pub fn new(
        dim: usize,
        clusters: usize,
        variance_decay: f64,
        cluster_tightness: f64,
        profile_seed: u64,
    ) -> Self {
        assert!(dim > 0 && clusters > 0);
        assert!((0.0..=1.0).contains(&variance_decay));
        Self {
            dim,
            clusters,
            variance_decay,
            cluster_tightness,
            profile_seed,
        }
    }
}

/// Generates `n` database vectors plus `n_queries` held-out query vectors
/// from the same distribution.
///
/// Queries are drawn from the mixture (not copied from the database), so
/// exact-duplicate shortcuts cannot inflate recall.
pub fn generate(
    spec: &DatasetSpec,
    n: usize,
    n_queries: usize,
    seed: u64,
) -> (VectorSet, VectorSet) {
    let mut rng = SmallRng::seed_from_u64(seed ^ spec.profile_seed.wrapping_mul(0x9e37));
    let d = spec.dim;

    // Per-axis standard deviations with geometric decay, floored so no axis
    // is exactly degenerate.
    let stds: Vec<f64> = (0..d)
        .map(|i| spec.variance_decay.powi(i as i32).max(1e-3))
        .collect();

    // Cluster centers: drawn from the anisotropic Gaussian, scaled up so
    // between-cluster spread dominates within-cluster noise.
    let centers: Vec<Vec<f64>> = (0..spec.clusters)
        .map(|_| stds.iter().map(|s| 2.0 * s * normal(&mut rng)).collect())
        .collect();

    // A fixed rotation tied to the profile (not the caller seed) so database
    // and query batches of any size share the same principal directions.
    // Rotating in blocks of at most 64 dims keeps generation O(D·64) per
    // vector while still mixing axes within each block enough that PCA has
    // real work to do.
    // Block size < D so the geometric decay *across* blocks survives the
    // rotation (energy within a block is preserved by orthogonality).
    let block = (d / 2).clamp(1, 64);
    let rotation = random_orthogonal(block, spec.profile_seed);

    let sample = |rng: &mut SmallRng| -> Vec<f32> {
        let c = rng.gen_range(0..spec.clusters);
        let center = &centers[c];
        let mut v: Vec<f64> = center
            .iter()
            .zip(stds.iter())
            .map(|(&mu, &s)| mu + spec.cluster_tightness * s * normal(rng))
            .collect();
        // Rotate each 64-dim block in place.
        let mut buf = vec![0.0f32; block];
        for chunk in v.chunks_mut(block) {
            if chunk.len() < block {
                break; // leave the ragged tail unrotated
            }
            for (b, &x) in buf.iter_mut().zip(chunk.iter()) {
                *b = x as f32;
            }
            let rotated = rotation.matvec(&buf);
            for (x, r) in chunk.iter_mut().zip(rotated.iter()) {
                *x = f64::from(*r);
            }
        }
        v.into_iter().map(|x| x as f32).collect()
    };

    let mut base = VectorSet::with_capacity(d, n);
    for _ in 0..n {
        base.push(&sample(&mut rng));
    }
    let mut queries = VectorSet::with_capacity(d, n_queries);
    for _ in 0..n_queries {
        queries.push(&sample(&mut rng));
    }
    (base, queries)
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut SmallRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_correct() {
        let spec = DatasetSpec::new(32, 4, 0.95, 0.4, 1);
        let (base, queries) = generate(&spec, 100, 10, 7);
        assert_eq!(base.len(), 100);
        assert_eq!(base.dim(), 32);
        assert_eq!(queries.len(), 10);
        assert_eq!(queries.dim(), 32);
    }

    #[test]
    fn deterministic_for_seed() {
        let spec = DatasetProfile::SsnppLike.spec();
        let (a, _) = generate(&spec, 50, 5, 42);
        let (b, _) = generate(&spec, 50, 5, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetProfile::SsnppLike.spec();
        let (a, _) = generate(&spec, 50, 5, 1);
        let (b, _) = generate(&spec, 50, 5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn variance_spectrum_is_skewed() {
        // The empirical variance of the leading block should dominate the
        // trailing block — the property Flash's PCA stage exploits.
        let spec = DatasetSpec::new(64, 8, 0.93, 0.4, 3);
        let (base, _) = generate(&spec, 800, 1, 11);
        let d = base.dim();
        let mut var = vec![0.0f64; d];
        let mut mean = vec![0.0f64; d];
        for v in base.iter() {
            for (m, &x) in mean.iter_mut().zip(v.iter()) {
                *m += f64::from(x);
            }
        }
        for m in &mut mean {
            *m /= base.len() as f64;
        }
        for v in base.iter() {
            for i in 0..d {
                let c = f64::from(v[i]) - mean[i];
                var[i] += c * c;
            }
        }
        let total: f64 = var.iter().sum();
        // Not axis-aligned (we rotated), so compare block energies.
        let head: f64 = var[..d / 2].iter().sum();
        assert!(
            head / total > 0.7,
            "expected skewed spectrum, head fraction = {}",
            head / total
        );
    }

    #[test]
    fn profiles_have_paper_dimensions() {
        assert_eq!(DatasetProfile::LaionLike.spec().dim, 768);
        assert_eq!(DatasetProfile::ArgillaLike.spec().dim, 1024);
        assert_eq!(DatasetProfile::SsnppLike.spec().dim, 256);
        assert_eq!(DatasetProfile::ALL.len(), 8);
    }
}
