//! Software cache model for the paper's memory-access ablations.
//!
//! The paper quantifies Flash's memory-layout win with hardware counters:
//! L1 miss rates drop from ~19–26 % to ~5–8 % once neighbor codewords are
//! stored inline with neighbor IDs (Table 2). This repository cannot read
//! performance counters portably, so it reproduces the experiment in
//! software: instrumented distance providers emit the *byte-address stream*
//! their construction loop touches, and this crate replays that stream
//! through a set-associative LRU cache model.
//!
//! The model is deliberately simple — physical == virtual addresses, no
//! prefetcher, single level by default — because the effect being measured
//! (random far-apart vector fetches vs. contiguous codeword scans) is
//! orders of magnitude above modeling noise.

mod generic;
mod lru;

pub use generic::Lru;
pub use lru::{CacheConfig, CacheSim, CacheStats, MultiLevelCache};

/// The default L1-data-cache geometry used by the Table 2 experiment:
/// 32 KB, 64-byte lines, 8-way — the geometry of the paper's Xeon E5-2620 v3.
pub fn l1d_default() -> CacheConfig {
    CacheConfig {
        size_bytes: 32 * 1024,
        line_bytes: 64,
        ways: 8,
    }
}

/// A 256 KB, 8-way L2 with 64-byte lines (paper's test machine).
pub fn l2_default() -> CacheConfig {
    CacheConfig {
        size_bytes: 256 * 1024,
        line_bytes: 64,
        ways: 8,
    }
}
