//! Set-associative LRU cache simulation.
//!
//! The simulator is a thin wrapper over the generic [`Lru`] map: each
//! cache set is one `Lru<u64, ()>` whose capacity is the associativity,
//! so the eviction logic lives in exactly one place (shared with
//! `serving`'s query-result cache).

use crate::Lru;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (block) size in bytes; must be a power of two.
    pub line_bytes: usize,
    /// Associativity (lines per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (see [`CacheSim::new`]).
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "associativity must be positive");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines > 0 && lines.is_multiple_of(self.ways),
            "size/line/ways geometry inconsistent"
        );
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss counters of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total line-granular accesses.
    pub accesses: u64,
    /// Accesses that missed this level.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses were recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A single-level set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// Per set: a true-LRU tag store with capacity = associativity.
    sets: Vec<Lru<u64, ()>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Builds an empty cache.
    ///
    /// # Panics
    /// Panics if `line_bytes` is not a power of two, `ways == 0`, or the set
    /// count implied by the geometry is not a positive power of two.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            sets: vec![Lru::new(config.ways); sets],
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Touches one byte address. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        self.stats.accesses += 1;

        let set = &mut self.sets[set_idx];
        if set.get(&tag).is_some() {
            true
        } else {
            self.stats.misses += 1;
            set.insert(tag, ()); // evicts the set's LRU tag at capacity
            false
        }
    }

    /// Touches every line overlapped by `[addr, addr + len)`. Returns the
    /// number of missed lines.
    pub fn access_range(&mut self, addr: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = addr >> self.line_shift;
        let last = (addr + len as u64 - 1) >> self.line_shift;
        let mut missed = 0;
        for line in first..=last {
            if !self.access(line << self.line_shift) {
                missed += 1;
            }
        }
        missed
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }
}

/// A small inclusive multi-level hierarchy: an access that misses level `i`
/// is forwarded to level `i + 1`.
#[derive(Debug, Clone)]
pub struct MultiLevelCache {
    levels: Vec<CacheSim>,
}

impl MultiLevelCache {
    /// Builds a hierarchy from innermost (L1) to outermost configuration.
    ///
    /// # Panics
    /// Panics if `configs` is empty or any geometry is invalid.
    pub fn new(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty(), "need at least one level");
        Self {
            levels: configs.iter().map(|&c| CacheSim::new(c)).collect(),
        }
    }

    /// Touches one byte address through the hierarchy. Returns the index of
    /// the level that hit, or `None` if all levels missed (memory access).
    pub fn access(&mut self, addr: u64) -> Option<usize> {
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                return Some(i);
            }
        }
        None
    }

    /// Touches every line overlapped by `[addr, addr + len)`.
    pub fn access_range(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let shift = self.levels[0].line_shift;
        let first = addr >> shift;
        let last = (addr + len as u64 - 1) >> shift;
        for line in first..=last {
            self.access(line << shift);
        }
    }

    /// Stats of level `i` (0 = L1).
    pub fn stats(&self, i: usize) -> CacheStats {
        self.levels[i].stats()
    }

    /// Clears all levels.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes.
        CacheSim::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(15)); // same line
        assert!(!c.access(16)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three tags mapping to set 0 (stride = sets * line = 64 bytes).
        assert!(!c.access(0));
        assert!(!c.access(64));
        assert!(c.access(0)); // 0 now MRU
        assert!(!c.access(128)); // evicts 64
        assert!(c.access(0));
        assert!(!c.access(64)); // was evicted
    }

    #[test]
    fn sequential_scan_amortizes_misses() {
        let mut c = tiny();
        // Scan 64 bytes in 4-byte steps: 16 accesses, 4 lines → 4 misses.
        for a in (0..64u64).step_by(4) {
            c.access(a);
        }
        assert_eq!(c.stats().accesses, 16);
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn random_large_stride_thrashes() {
        let mut c = tiny();
        // Touch 64 distinct lines twice; working set (1 KiB) >> cache (128 B)
        // with a pseudo-random order → second pass still misses mostly.
        let order: Vec<u64> = (0..64u64).map(|i| (i * 37) % 64).collect();
        for &i in &order {
            c.access(i * 16);
        }
        for &i in &order {
            c.access(i * 16);
        }
        assert!(
            c.stats().miss_rate() > 0.9,
            "miss rate {}",
            c.stats().miss_rate()
        );
    }

    #[test]
    fn access_range_touches_all_lines() {
        let mut c = tiny();
        let missed = c.access_range(8, 40); // bytes 8..48 → lines 0,1,2
        assert_eq!(missed, 3);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn access_range_empty_is_noop() {
        let mut c = tiny();
        assert_eq!(c.access_range(0, 0), 0);
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "contents must be cold after reset");
    }

    #[test]
    fn multi_level_forwards_misses() {
        let l1 = CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2,
        };
        let l2 = CacheConfig {
            size_bytes: 256,
            line_bytes: 16,
            ways: 2,
        };
        let mut h = MultiLevelCache::new(&[l1, l2]);
        assert_eq!(h.access(0), None); // cold everywhere
        assert_eq!(h.access(0), Some(0)); // L1 hit
                                          // Evict line 0 from tiny L1 (set 0 strides: 4 sets * 16 = 64).
        h.access(64);
        h.access(128);
        // L1 misses but L2 still holds it.
        assert_eq!(h.access(0), Some(1));
        assert!(h.stats(0).misses >= 3);
    }

    #[test]
    fn default_geometries_are_valid() {
        let _ = CacheSim::new(crate::l1d_default());
        let _ = CacheSim::new(crate::l2_default());
        assert_eq!(crate::l1d_default().sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheSim::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 12,
            ways: 2,
        });
    }
}
