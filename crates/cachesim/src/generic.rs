//! A reusable true-LRU map.
//!
//! [`Lru`] is the one eviction structure of the workspace: the
//! set-associative [`CacheSim`](crate::CacheSim) uses one per set
//! (capacity = associativity), and `serving::QueryCache` uses one large
//! instance keyed by canonical request hashes. All operations are `O(1)`
//! expected: a hash map resolves keys to slots of an intrusive
//! doubly-linked recency list stored in a slab.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel slab index meaning "no neighbor".
const NIL: usize = usize::MAX;

/// Slab slot: `value` is `None` only while the slot sits on the free list.
#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity map with least-recently-used eviction.
///
/// `get`/`insert` refresh recency; `peek` does not. When an insert would
/// exceed the capacity, the least-recently-used entry is evicted and
/// returned to the caller.
///
/// ```
/// use cachesim::Lru;
///
/// let mut lru = Lru::new(2);
/// lru.insert("a", 1);
/// lru.insert("b", 2);
/// lru.get(&"a"); // refresh: "b" is now the eviction victim
/// let evicted = lru.insert("c", 3);
/// assert_eq!(evicted, Some(("b", 2)));
/// assert!(lru.contains(&"a"));
/// ```
#[derive(Debug, Clone)]
pub struct Lru<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot.
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            slab: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is cached (does not refresh recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Links slot `i` at the head (MRU position).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
    }

    /// Looks `key` up and marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        self.touch(i);
        self.slab[i].value.as_ref()
    }

    /// Mutable lookup; marks the entry most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = *self.map.get(key)?;
        self.touch(i);
        self.slab[i].value.as_mut()
    }

    /// Looks `key` up without refreshing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).and_then(|&i| self.slab[i].value.as_ref())
    }

    /// Inserts (or updates) `key → value`, marking it most recently used.
    /// Returns the evicted least-recently-used `(key, value)` pair when the
    /// insert pushed the cache past capacity.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = Some(value);
            self.touch(i);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.free.push(victim);
            let e = &mut self.slab[victim];
            self.map.remove(&e.key);
            Some((e.key.clone(), e.value.take().expect("live slot has value")))
        } else {
            None
        };
        let i = if let Some(i) = self.free.pop() {
            self.slab[i] = Entry {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, i);
        self.link_front(i);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.map.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        self.slab[i].value.take()
    }

    /// Drops every entry (capacity unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most to least recently used (test/diagnostic aid).
    pub fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.slab[i].key.clone());
            i = self.slab[i].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(3);
        assert_eq!(lru.insert(1, "a"), None);
        assert_eq!(lru.insert(2, "b"), None);
        assert_eq!(lru.insert(3, "c"), None);
        assert_eq!(lru.get(&1), Some(&"a")); // 2 is now LRU
        assert_eq!(lru.insert(4, "d"), Some((2, "b")));
        assert!(!lru.contains(&2));
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.keys_mru(), vec![4, 1, 3]);
    }

    #[test]
    fn update_refreshes_without_evicting() {
        let mut lru = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.insert(1, 11), None); // update, no eviction
        assert_eq!(lru.peek(&1), Some(&11));
        assert_eq!(lru.insert(3, 30), Some((2, 20)));
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut lru = Lru::new(2);
        lru.insert("x", 1);
        assert_eq!(lru.remove(&"x"), Some(1));
        assert_eq!(lru.remove(&"x"), None);
        assert!(lru.is_empty());
        lru.insert("y", 2);
        lru.insert("z", 3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.keys_mru(), vec!["z", "y"]);
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut lru = Lru::new(2);
        lru.insert(1, ());
        lru.insert(2, ());
        assert!(lru.peek(&1).is_some()); // 1 stays LRU
        assert_eq!(lru.insert(3, ()), Some((1, ())));
    }

    #[test]
    fn capacity_one_degenerates_gracefully() {
        let mut lru = Lru::new(1);
        assert_eq!(lru.insert(1, 'a'), None);
        assert_eq!(lru.insert(2, 'b'), Some((1, 'a')));
        assert_eq!(lru.get(&2), Some(&'b'));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn clear_resets_contents() {
        let mut lru = Lru::new(4);
        lru.insert(1, 1);
        lru.insert(2, 2);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        lru.insert(3, 3);
        assert_eq!(lru.keys_mru(), vec![3]);
    }

    #[test]
    fn mixed_workload_tracks_reference_model() {
        // Cross-check against a naive Vec-based LRU over a scripted workload.
        let mut lru = Lru::new(4);
        let mut model: Vec<(u64, u64)> = Vec::new(); // MRU-first
        let ops: Vec<u64> = (0..200).map(|i| (i * 7919 + 13) % 11).collect();
        for (step, &k) in ops.iter().enumerate() {
            if step % 3 == 0 {
                // insert/update
                lru.insert(k, step as u64);
                if let Some(pos) = model.iter().position(|&(mk, _)| mk == k) {
                    model.remove(pos);
                } else if model.len() == 4 {
                    model.pop();
                }
                model.insert(0, (k, step as u64));
            } else {
                // lookup
                let got = lru.get(&k).copied();
                let want = model.iter().position(|&(mk, _)| mk == k).map(|pos| {
                    let e = model.remove(pos);
                    model.insert(0, e);
                    e.1
                });
                assert_eq!(got, want, "step {step} key {k}");
            }
            assert_eq!(
                lru.keys_mru(),
                model.iter().map(|&(k, _)| k).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Lru::<u8, u8>::new(0);
    }
}
