//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA (Section 3.3.2 of the paper) needs the eigenvalues and eigenvectors of
//! the data covariance matrix — always symmetric positive semi-definite.
//! The cyclic Jacobi algorithm is a good fit: it is simple, numerically
//! robust (it works directly with orthogonal rotations), and for the matrix
//! sizes in this workload (D ≤ ~1024) its O(D³) sweeps are acceptable as a
//! one-off preprocessing cost.
//!
//! Computation runs in `f64` regardless of the `f32` public interface.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V Λ Vᵀ`.
///
/// Eigenpairs are sorted by **descending** eigenvalue, which is the order PCA
/// consumes them in (largest-variance component first).
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f32>,
    /// Eigenvectors as matrix **columns**: `eigenvectors.column j` pairs with
    /// `eigenvalues[j]`. Stored as a `d x d` matrix whose `(i, j)` entry is
    /// the `i`-th coordinate of the `j`-th eigenvector.
    pub eigenvectors: Matrix,
}

impl EigenDecomposition {
    /// Extracts eigenvector `j` as an owned vector.
    pub fn eigenvector(&self, j: usize) -> Vec<f32> {
        (0..self.eigenvectors.rows())
            .map(|i| self.eigenvectors[(i, j)])
            .collect()
    }

    /// Returns the basis of the top `k` eigenvectors as a `d x k` matrix
    /// (columns are eigenvectors), i.e. the PCA projection matrix `A_{1:k}`.
    pub fn top_k_basis(&self, k: usize) -> Matrix {
        let d = self.eigenvectors.rows();
        assert!(
            k <= d,
            "requested {k} components from a {d}-dimensional decomposition"
        );
        let mut basis = Matrix::zeros(d, k);
        for i in 0..d {
            for j in 0..k {
                basis[(i, j)] = self.eigenvectors[(i, j)];
            }
        }
        basis
    }
}

/// Maximum number of full Jacobi sweeps before giving up. Convergence for
/// well-conditioned covariance matrices typically takes 6–12 sweeps.
const MAX_SWEEPS: usize = 48;

/// Off-diagonal Frobenius-norm threshold (relative to the matrix norm) at
/// which we declare convergence. PCA only needs the leading subspace to a
/// few decimal digits, so this is deliberately loose.
const CONVERGENCE_EPS: f64 = 1e-9;

/// Computes the eigendecomposition of a symmetric matrix with cyclic Jacobi
/// rotations.
///
/// # Panics
/// Panics if the matrix is not square. Symmetry is assumed (only the upper
/// triangle drives the rotations); passing a non-symmetric matrix yields the
/// decomposition of its symmetric part.
pub fn symmetric_eigen(matrix: &Matrix) -> EigenDecomposition {
    let n = matrix.rows();
    assert_eq!(
        n,
        matrix.cols(),
        "eigendecomposition requires a square matrix"
    );

    // Work in f64. `a` is the matrix being diagonalized, `v` accumulates the
    // rotations (columns end up as eigenvectors).
    let mut a: Vec<f64> = matrix.as_slice().iter().map(|&x| f64::from(x)).collect();
    // Symmetrize defensively so tiny asymmetries from f32 covariance
    // accumulation cannot stall convergence.
    for i in 0..n {
        for j in (i + 1)..n {
            let s = 0.5 * (a[i * n + j] + a[j * n + i]);
            a[i * n + j] = s;
            a[j * n + i] = s;
        }
    }
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let norm: f64 = a
        .iter()
        .map(|x| x * x)
        .sum::<f64>()
        .sqrt()
        .max(f64::MIN_POSITIVE);

    for _sweep in 0..MAX_SWEEPS {
        let mut off: f64 = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() <= CONVERGENCE_EPS * norm {
            break;
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                // Classic Jacobi rotation angle selection.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A <- Jᵀ A J applied to rows/cols p and q.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                // Accumulate the rotation into V.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract, sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let eigs: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    order.sort_by(|&x, &y| eigs[y].partial_cmp(&eigs[x]).expect("eigenvalue NaN"));

    let mut eigenvalues = Vec::with_capacity(n);
    let mut eigenvectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        eigenvalues.push(eigs[src] as f32);
        for i in 0..n {
            eigenvectors[(i, dst)] = v[i * n + src] as f32;
        }
    }

    EigenDecomposition {
        eigenvalues,
        eigenvectors,
    }
}

/// Computes the top-`k` eigenpairs of a symmetric PSD matrix by subspace
/// (block power) iteration — `O(k · d² · iters)` instead of Jacobi's
/// `O(d³ · sweeps)`, which matters when `k ≪ d` (PCA keeping 64 of 768
/// dimensions, the Flash configuration).
///
/// Also returns the matrix trace, which equals the *total* eigenvalue mass
/// and lets callers compute cumulative-variance fractions without the full
/// spectrum.
///
/// # Panics
/// Panics if the matrix is not square or `k` is zero or exceeds the
/// dimension.
pub fn symmetric_eigen_topk(matrix: &Matrix, k: usize, seed: u64) -> (EigenDecomposition, f64) {
    let n = matrix.rows();
    assert_eq!(
        n,
        matrix.cols(),
        "eigendecomposition requires a square matrix"
    );
    assert!(k >= 1 && k <= n, "k must be in 1..=n");

    let a: Vec<f64> = matrix.as_slice().iter().map(|&x| f64::from(x)).collect();
    let trace: f64 = (0..n).map(|i| a[i * n + i]).sum();

    // Column-major working basis, randomly initialized then orthonormalized.
    let mut rng_state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(13);
    let mut next = move || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((rng_state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
    };
    let mut q: Vec<Vec<f64>> = (0..k).map(|_| (0..n).map(|_| next()).collect()).collect();
    orthonormalize(&mut q);

    const ITERS: usize = 20;
    let mut z: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    for _ in 0..ITERS {
        // Z = A·Q (A symmetric, row-major walk).
        for (zc, qc) in z.iter_mut().zip(q.iter()) {
            for i in 0..n {
                let row = &a[i * n..(i + 1) * n];
                zc[i] = row.iter().zip(qc.iter()).map(|(&r, &x)| r * x).sum();
            }
        }
        std::mem::swap(&mut q, &mut z);
        orthonormalize(&mut q);
    }

    // Rayleigh quotients for eigenvalues; project for a final cleanup.
    let mut pairs: Vec<(f64, Vec<f64>)> = q
        .into_iter()
        .map(|qc| {
            let mut aq = vec![0.0f64; n];
            for i in 0..n {
                let row = &a[i * n..(i + 1) * n];
                aq[i] = row.iter().zip(qc.iter()).map(|(&r, &x)| r * x).sum();
            }
            let lambda: f64 = aq.iter().zip(qc.iter()).map(|(&x, &y)| x * y).sum();
            (lambda, qc)
        })
        .collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("eigenvalue NaN"));

    let mut eigenvalues = Vec::with_capacity(k);
    let mut eigenvectors = Matrix::zeros(n, k);
    for (j, (lambda, vec)) in pairs.into_iter().enumerate() {
        eigenvalues.push(lambda as f32);
        for (i, &x) in vec.iter().enumerate() {
            eigenvectors[(i, j)] = x as f32;
        }
    }
    (
        EigenDecomposition {
            eigenvalues,
            eigenvectors,
        },
        trace,
    )
}

/// Modified Gram–Schmidt over column vectors, re-randomizing degenerate
/// columns (probability ~0 for random PSD inputs).
fn orthonormalize(cols: &mut [Vec<f64>]) {
    let k = cols.len();
    for j in 0..k {
        for prev in 0..j {
            let dot: f64 = cols[j]
                .iter()
                .zip(cols[prev].iter())
                .map(|(a, b)| a * b)
                .sum();
            let (left, right) = cols.split_at_mut(j);
            for (x, &p) in right[0].iter_mut().zip(left[prev].iter()) {
                *x -= dot * p;
            }
        }
        let norm: f64 = cols[j].iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            // Degenerate: replace with a unit basis vector not yet spanned.
            for (i, x) in cols[j].iter_mut().enumerate() {
                *x = if i == j { 1.0 } else { 0.0 };
            }
        } else {
            for x in &mut cols[j] {
                *x /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(dec: &EigenDecomposition) -> Matrix {
        // V Λ Vᵀ
        let n = dec.eigenvalues.len();
        let mut lambda = Matrix::zeros(n, n);
        for i in 0..n {
            lambda[(i, i)] = dec.eigenvalues[i];
        }
        dec.eigenvectors
            .matmul(&lambda)
            .matmul(&dec.eigenvectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let dec = symmetric_eigen(&m);
        assert_eq!(dec.eigenvalues, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let dec = symmetric_eigen(&m);
        assert!((dec.eigenvalues[0] - 3.0).abs() < 1e-5);
        assert!((dec.eigenvalues[1] - 1.0).abs() < 1e-5);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = dec.eigenvector(0);
        assert!((v0[0].abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-5);
        assert!((v0[0] - v0[1]).abs() < 1e-5);
    }

    #[test]
    fn reconstruction_matches_input() {
        let m = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, 0.0, 0.2],
            &[0.5, 0.0, 2.0, 0.1],
            &[0.0, 0.2, 0.1, 1.0],
        ]);
        let dec = symmetric_eigen(&m);
        let r = reconstruct(&dec);
        assert!(
            m.max_abs_diff(&r) < 1e-4,
            "reconstruction error too high: {:?}",
            r
        );
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 4.0, 0.5], &[1.0, 0.5, 3.0]]);
        let dec = symmetric_eigen(&m);
        let vtv = dec.eigenvectors.transpose().matmul(&dec.eigenvectors);
        let id = Matrix::identity(3);
        assert!(vtv.max_abs_diff(&id) < 1e-5);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let m = Matrix::from_rows(&[
            &[1.0, 0.3, 0.0, 0.0],
            &[0.3, 7.0, 0.1, 0.0],
            &[0.0, 0.1, 4.0, 0.2],
            &[0.0, 0.0, 0.2, 2.0],
        ]);
        let dec = symmetric_eigen(&m);
        for w in dec.eigenvalues.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn top_k_basis_shape() {
        let m = Matrix::identity(5);
        let dec = symmetric_eigen(&m);
        let b = dec.top_k_basis(2);
        assert_eq!(b.rows(), 5);
        assert_eq!(b.cols(), 2);
    }

    #[test]
    fn topk_matches_jacobi_on_leading_pairs() {
        let m = Matrix::from_rows(&[
            &[5.0, 2.0, 1.0, 0.0],
            &[2.0, 4.0, 0.5, 0.3],
            &[1.0, 0.5, 3.0, 0.1],
            &[0.0, 0.3, 0.1, 1.0],
        ]);
        let full = symmetric_eigen(&m);
        let (top, trace) = symmetric_eigen_topk(&m, 2, 7);
        assert!((trace - 13.0).abs() < 1e-9, "trace {trace}");
        for j in 0..2 {
            assert!(
                (top.eigenvalues[j] - full.eigenvalues[j]).abs() < 1e-2,
                "eigenvalue {j}: {} vs {}",
                top.eigenvalues[j],
                full.eigenvalues[j]
            );
            // Eigenvectors up to sign.
            let a = top.eigenvector(j);
            let b = full.eigenvector(j);
            let dot: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            assert!(
                dot.abs() > 0.99,
                "eigenvector {j} misaligned: |dot| = {}",
                dot.abs()
            );
        }
    }

    #[test]
    fn topk_basis_is_orthonormal() {
        let m = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.0], &[0.5, 0.0, 2.0]]);
        let (top, _) = symmetric_eigen_topk(&m, 3, 1);
        let vtv = top.eigenvectors.transpose().matmul(&top.eigenvectors);
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-4);
    }

    #[test]
    fn handles_rank_deficient_matrix() {
        // Rank-1: outer product of (1,2,3) with itself.
        let v = [1.0f32, 2.0, 3.0];
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                m[(i, j)] = v[i] * v[j];
            }
        }
        let dec = symmetric_eigen(&m);
        // One eigenvalue = |v|^2 = 14, others ~ 0.
        assert!((dec.eigenvalues[0] - 14.0).abs() < 1e-4);
        assert!(dec.eigenvalues[1].abs() < 1e-4);
        assert!(dec.eigenvalues[2].abs() < 1e-4);
    }
}
