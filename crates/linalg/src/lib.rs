//! Dense linear-algebra substrate for the `hnsw-flash` workspace.
//!
//! The paper's reference implementation uses the C++ Eigen library for all
//! matrix manipulation (principal-component extraction, codebook generation,
//! distance-table creation). This crate provides the small, dependency-free
//! subset that the reproduction needs:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the usual products,
//! * [`stats`] — mean / centering / covariance of a sample matrix,
//! * [`eigen`] — a cyclic-Jacobi eigendecomposition for symmetric matrices
//!   (exactly what PCA needs: covariance matrices are symmetric PSD),
//! * [`rotation`] — random orthonormal matrices (Gram–Schmidt of a Gaussian
//!   ensemble), used by the ADSampling search variant.
//!
//! Internally, reductions accumulate in `f64` for numerical stability, while
//! the public storage type stays `f32` to match the vector-data types used
//! throughout the ANNS stack.

pub mod eigen;
pub mod matrix;
pub mod rotation;
pub mod stats;

pub use eigen::{symmetric_eigen, symmetric_eigen_topk, EigenDecomposition};
pub use matrix::Matrix;
pub use rotation::random_orthogonal;
pub use stats::{covariance, mean_vector};
