//! Sample statistics over row-major sample matrices.
//!
//! A "sample matrix" here is a [`Matrix`] whose rows are observations
//! (database vectors) and whose columns are features (vector dimensions) —
//! the layout Section 3.3.2 of the paper uses when deriving the covariance
//! matrix `Σ = (1/n) Ṡᵀ Ṡ` of the centered data `Ṡ`.

use crate::matrix::Matrix;

/// Computes the per-dimension mean `ū = (1/n) Σ uᵢ` of the sample rows.
///
/// # Panics
/// Panics if the matrix has zero rows.
pub fn mean_vector(samples: &Matrix) -> Vec<f32> {
    let n = samples.rows();
    assert!(n > 0, "mean of an empty sample");
    let d = samples.cols();
    let mut acc = vec![0.0f64; d];
    for i in 0..n {
        for (a, &x) in acc.iter_mut().zip(samples.row(i).iter()) {
            *a += f64::from(x);
        }
    }
    acc.into_iter().map(|a| (a / n as f64) as f32).collect()
}

/// Centers the samples in place by subtracting `mean` from every row.
///
/// # Panics
/// Panics if `mean.len()` does not match the column count.
pub fn center_rows(samples: &mut Matrix, mean: &[f32]) {
    assert_eq!(mean.len(), samples.cols(), "mean dimensionality mismatch");
    for i in 0..samples.rows() {
        for (x, &m) in samples.row_mut(i).iter_mut().zip(mean.iter()) {
            *x -= m;
        }
    }
}

/// Computes the `d x d` covariance matrix `Σ = (1/n) Ṡᵀ Ṡ` of the samples,
/// centering internally (the input is not modified).
///
/// Accumulates in `f64`; the result is symmetric by construction (the upper
/// triangle is computed once and mirrored).
///
/// # Panics
/// Panics if the matrix has zero rows.
pub fn covariance(samples: &Matrix) -> Matrix {
    let n = samples.rows();
    assert!(n > 0, "covariance of an empty sample");
    let d = samples.cols();
    let mean = mean_vector(samples);

    // Outer-product accumulation over centered rows. The inner loop is a
    // contiguous f32 multiply-add that the compiler vectorizes; `f32`
    // accumulation is ample for PCA (covariance entries are consumed at a
    // precision far below 24 bits) and is ~5x faster than scalar f64 — this
    // is the dominant cost of PCA preprocessing at high dimensionality.
    let mut acc = vec![0.0f32; d * d];
    let mut centered = vec![0.0f32; d];
    for i in 0..n {
        for ((c, &x), &m) in centered
            .iter_mut()
            .zip(samples.row(i).iter())
            .zip(mean.iter())
        {
            *c = x - m;
        }
        for j in 0..d {
            let cj = centered[j];
            if cj == 0.0 {
                continue;
            }
            let row = &mut acc[j * d..(j + 1) * d];
            for (slot, &ck) in row[j..].iter_mut().zip(centered[j..].iter()) {
                *slot += cj * ck;
            }
        }
    }

    let inv_n = 1.0 / n as f32;
    let mut cov = Matrix::zeros(d, d);
    for j in 0..d {
        for k in j..d {
            let v = acc[j * d + k] * inv_n;
            cov[(j, k)] = v;
            cov[(k, j)] = v;
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_rows() {
        let m = Matrix::from_rows(&[&[2.0, 4.0], &[2.0, 4.0], &[2.0, 4.0]]);
        assert_eq!(mean_vector(&m), vec![2.0, 4.0]);
    }

    #[test]
    fn center_rows_zeroes_the_mean() {
        let mut m = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 20.0]]);
        let mean = mean_vector(&m);
        center_rows(&mut m, &mean);
        let new_mean = mean_vector(&m);
        for x in new_mean {
            assert!(x.abs() < 1e-6);
        }
    }

    #[test]
    fn covariance_of_decorrelated_axes() {
        // x-axis varies with variance 1 (population), y fixed.
        let m = Matrix::from_rows(&[&[-1.0, 5.0], &[1.0, 5.0]]);
        let cov = covariance(&m);
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-6);
        assert!(cov[(0, 1)].abs() < 1e-6);
        assert!(cov[(1, 0)].abs() < 1e-6);
        assert!(cov[(1, 1)].abs() < 1e-6);
    }

    #[test]
    fn covariance_is_symmetric() {
        let m = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[-1.0, 0.0, 2.5],
            &[0.3, -2.0, 1.0],
            &[4.0, 1.0, -1.0],
        ]);
        let cov = covariance(&m);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(cov[(i, j)], cov[(j, i)]);
            }
        }
    }

    #[test]
    fn covariance_captures_correlation_sign() {
        // y = x exactly: positive off-diagonal.
        let m = Matrix::from_rows(&[&[-1.0, -1.0], &[0.0, 0.0], &[1.0, 1.0]]);
        let cov = covariance(&m);
        assert!(cov[(0, 1)] > 0.0);
        assert!((cov[(0, 0)] - cov[(0, 1)]).abs() < 1e-6);
    }
}
