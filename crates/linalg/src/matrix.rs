//! Row-major dense matrix over `f32`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
///
/// This is deliberately minimal: the ANNS pipeline only needs construction,
/// element access, matrix products, transposes and row views. All reductions
/// accumulate in `f64` so that covariance/eigen computations on `f32` vector
/// data stay numerically stable for dimensionalities up to a few thousand.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Dense matrix product `self * rhs`.
    ///
    /// Straightforward ikj-ordered triple loop; the inner dimension is walked
    /// contiguously for both operands, which the compiler auto-vectorizes.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v.iter())
                    .map(|(&a, &b)| f64::from(a) * f64::from(b))
                    .sum::<f64>() as f32
            })
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * v` without materializing the
    /// transpose. This is the hot operation when projecting a vector onto a
    /// PCA basis stored column-wise.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn matvec_t(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.rows, "vector length mismatch");
        let mut out = vec![0.0f64; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &r) in out.iter_mut().zip(row.iter()) {
                *o += f64::from(vi) * f64::from(r);
            }
        }
        out.into_iter().map(|x| x as f32).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute difference from another matrix (same shape required).
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(i)[..self.cols.min(8)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0], &[3.0, 3.0]]);
        let v = [2.0, 1.0];
        let got = a.matvec(&v);
        assert_eq!(got, vec![0.0, 5.0, 9.0]);
    }

    #[test]
    fn matvec_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.0], &[0.5, 4.0, 1.0]]);
        let v = [3.0, -1.0];
        let expect = a.transpose().matvec(&v);
        let got = a.matvec_t(&v);
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn row_views_are_contiguous() {
        let mut a = Matrix::zeros(3, 4);
        a.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.row(0), &[0.0; 4]);
        assert_eq!(a.as_slice()[4..8], [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_simple() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
