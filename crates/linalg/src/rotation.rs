//! Random orthonormal matrices.
//!
//! The ADSampling search variant (reproduced for the paper's Figure 13)
//! requires a random orthogonal rotation of the vector space so that a prefix
//! of coordinates is an unbiased sample of the full squared distance. We
//! generate one by Gram–Schmidt orthonormalization of a Gaussian ensemble,
//! which yields a Haar-distributed orthogonal matrix.

use crate::matrix::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples a Haar-random `n x n` orthogonal matrix, deterministically from
/// `seed`.
///
/// Uses modified Gram–Schmidt on a matrix of standard normal entries
/// (Box–Muller generated), re-drawing any column that degenerates — an event
/// of probability zero in exact arithmetic and vanishingly rare in `f64`.
pub fn random_orthogonal(n: usize, seed: u64) -> Matrix {
    assert!(n > 0, "rotation dimension must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Columns stored as f64 until the end.
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(n);
    while cols.len() < n {
        let mut candidate: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        // Modified Gram–Schmidt against the accepted columns.
        for prev in &cols {
            let dot: f64 = candidate.iter().zip(prev.iter()).map(|(a, b)| a * b).sum();
            for (c, &p) in candidate.iter_mut().zip(prev.iter()) {
                *c -= dot * p;
            }
        }
        let norm: f64 = candidate.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-10 {
            continue; // degenerate draw; resample
        }
        for c in &mut candidate {
            *c /= norm;
        }
        cols.push(candidate);
    }

    let mut m = Matrix::zeros(n, n);
    for (j, col) in cols.iter().enumerate() {
        for (i, &x) in col.iter().enumerate() {
            m[(i, j)] = x as f32;
        }
    }
    m
}

/// One standard normal sample via Box–Muller.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_orthonormal() {
        let q = random_orthogonal(16, 42);
        let qtq = q.transpose().matmul(&q);
        let id = Matrix::identity(16);
        assert!(qtq.max_abs_diff(&id) < 1e-5, "QᵀQ deviates from identity");
    }

    #[test]
    fn rotation_preserves_norms() {
        let q = random_orthogonal(8, 7);
        let v = [1.0, -2.0, 0.5, 3.0, 0.0, 1.5, -1.0, 2.0];
        let rotated = q.matvec(&v);
        let n0: f32 = v.iter().map(|x| x * x).sum();
        let n1: f32 = rotated.iter().map(|x| x * x).sum();
        assert!((n0 - n1).abs() < 1e-3, "norm changed: {n0} vs {n1}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = random_orthogonal(6, 99);
        let b = random_orthogonal(6, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_orthogonal(6, 1);
        let b = random_orthogonal(6, 2);
        assert!(a.max_abs_diff(&b) > 1e-3);
    }
}
