//! [`AnnIndex`](crate::AnnIndex) implementations for every index shape in
//! the workspace.

use crate::request::{AdSamplingOptions, SearchRequest, SearchResponse, SearchStats};
use crate::AnnIndex;
use graphs::adsampling::AdSampler;
use graphs::flat_build::{search_flat, search_flat_filtered};
use graphs::vbase::search_vbase;
use graphs::{
    search_layers, search_layers_filtered, search_layers_rerank, DistanceProvider, FlatGraph,
    GraphLayers, Hcnng, Hit, Hnsw, LabeledHnsw, Nsg, TauMg, Vamana,
};
use maintenance::LsmVectorIndex;
use std::sync::{Arc, OnceLock, RwLock};
use vecstore::VectorSet;

// ---------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------

/// Runs one leaf search under a fresh thread-local profile window and
/// attaches the accumulated [`metrics::QueryProfile`] to the response.
///
/// Every concrete (non-aggregating) [`AnnIndex`] implementation wraps its
/// `search` body in this, so each response carries exactly the structural
/// cost of serving that one request — aggregating layers (shards,
/// replicas, caches, remotes) sum leaf profiles instead of re-measuring.
fn profiled(f: impl FnOnce() -> SearchResponse) -> SearchResponse {
    graphs::profile_reset();
    let mut response = f();
    response.profile = graphs::profile_take();
    response
}

/// Applies the request's post-retrieval steps (predicate filter → exact
/// rerank → truncate) to a candidate pool of `pool_k` hits.
fn finish_pool(
    base: &VectorSet,
    req: &SearchRequest,
    mut pool: Vec<Hit>,
    already_filtered: bool,
) -> Vec<Hit> {
    if !already_filtered {
        if let Some(f) = &req.filter {
            pool.retain(|h| f(h.id));
        }
    }
    if req.wants_rerank() {
        graphs::rerank_exact(base, &req.query, pool, req.k)
    } else {
        pool.truncate(req.k);
        pool
    }
}

type SamplerKey = (u32, usize, u64);

/// Lazily built, parameter-keyed [`AdSampler`]s (the rotated dataset copy
/// is expensive; one is kept per option set, capped so hostile request
/// streams cannot grow the cache without bound).
#[derive(Default)]
struct SamplerCache {
    entries: RwLock<Vec<(SamplerKey, Arc<AdSampler>)>>,
}

/// Distinct ADSampling option sets cached per index.
const SAMPLER_CACHE_CAP: usize = 8;

impl SamplerCache {
    fn get(&self, base: &VectorSet, opts: &AdSamplingOptions) -> Arc<AdSampler> {
        let key: SamplerKey = (opts.epsilon0.to_bits(), opts.delta_d, opts.seed);
        if let Some((_, s)) = self.entries.read().unwrap().iter().find(|(k, _)| *k == key) {
            return Arc::clone(s);
        }
        let sampler = Arc::new(AdSampler::new(base, opts.epsilon0, opts.delta_d, opts.seed));
        let mut entries = self.entries.write().unwrap();
        if let Some((_, s)) = entries.iter().find(|(k, _)| *k == key) {
            return Arc::clone(s); // raced: another thread built it first
        }
        if entries.len() >= SAMPLER_CACHE_CAP {
            entries.remove(0); // evict the oldest entry
        }
        entries.push((key, Arc::clone(&sampler)));
        sampler
    }
}

/// The unified serving pipeline over a frozen topology: dispatches to
/// ADSampling, VBase, filtered, reranked, or plain beam search according
/// to the request.
fn serve_layers<P: DistanceProvider>(
    provider: &P,
    layers: &GraphLayers,
    samplers: &SamplerCache,
    req: &SearchRequest,
) -> SearchResponse {
    let q = &req.query[..];
    let (k, ef) = (req.k, req.ef);
    if let Some(opts) = &req.adsampling {
        let sampler = samplers.get(provider.base(), opts);
        // The filter (if any) applies after retrieval here, so fetch a
        // widened pool; post_filter_pool == pool_k when no filter is set.
        let (pool, stats) = sampler.search(layers, q, post_filter_pool(req), ef);
        let hits = finish_pool(provider.base(), req, pool, false);
        return SearchResponse {
            hits,
            stats: SearchStats {
                evaluated: stats.evals,
                abandoned: stats.abandoned,
            },
            profile: Default::default(),
        };
    }
    if let Some(window) = req.vbase_window {
        let pool = search_vbase(provider, layers, q, post_filter_pool(req), window);
        return SearchResponse::from_hits(finish_pool(provider.base(), req, pool, false));
    }
    if let Some(f) = &req.filter {
        let f = Arc::clone(f);
        let accept = move |id: u32| f(u64::from(id));
        let pool = search_layers_filtered(provider, layers, q, req.pool_k(), ef, &accept);
        return SearchResponse::from_hits(finish_pool(provider.base(), req, pool, true));
    }
    if req.wants_rerank() {
        return SearchResponse::from_hits(search_layers_rerank(
            provider, layers, q, k, ef, req.rerank,
        ));
    }
    SearchResponse::from_hits(search_layers(provider, layers, q, k, ef))
}

// ---------------------------------------------------------------------
// HNSW-backed indexes
// ---------------------------------------------------------------------

/// [`Hnsw`] behind the engine API: plain/filtered/reranked requests serve
/// straight from the live index (bit-identical to the legacy inherent
/// methods); VBase and ADSampling requests serve from a lazily frozen
/// topology snapshot.
pub struct GraphIndex<P: DistanceProvider> {
    inner: Hnsw<P>,
    frozen: RwLock<Option<Arc<GraphLayers>>>,
    samplers: SamplerCache,
}

impl<P: DistanceProvider> GraphIndex<P> {
    /// Wraps a built index.
    pub fn new(inner: Hnsw<P>) -> Self {
        Self {
            inner,
            frozen: RwLock::new(None),
            samplers: SamplerCache::default(),
        }
    }

    /// The wrapped index (construction-time APIs: `insert`, `freeze`, …).
    ///
    /// Streaming inserts through this handle are visible to plain /
    /// filtered / reranked searches immediately, but VBase, ADSampling,
    /// and [`AnnIndex::export_graph`] read the frozen topology snapshot —
    /// call [`Self::refresh_topology`] after an ingest batch to refresh
    /// those paths.
    pub fn inner(&self) -> &Hnsw<P> {
        &self.inner
    }

    /// Drops the cached topology snapshot (and any ADSampling rotations
    /// derived from it) so the next frozen-path search re-freezes the
    /// current graph.
    pub fn refresh_topology(&self) {
        *self.frozen.write().unwrap() = None;
        self.samplers.entries.write().unwrap().clear();
    }

    fn frozen(&self) -> Arc<GraphLayers> {
        if let Some(g) = self.frozen.read().unwrap().as_ref() {
            return Arc::clone(g);
        }
        let mut slot = self.frozen.write().unwrap();
        if let Some(g) = slot.as_ref() {
            return Arc::clone(g);
        }
        let g = Arc::new(self.inner.freeze());
        *slot = Some(Arc::clone(&g));
        g
    }
}

impl<P: DistanceProvider + 'static> AnnIndex for GraphIndex<P> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dim(&self) -> usize {
        self.inner.provider().base().dim()
    }

    fn search(&self, req: &SearchRequest) -> SearchResponse {
        profiled(|| {
            if req.adsampling.is_some() || req.vbase_window.is_some() {
                return serve_layers(self.inner.provider(), &self.frozen(), &self.samplers, req);
            }
            let q = &req.query[..];
            let (k, ef) = (req.k, req.ef);
            if let Some(f) = &req.filter {
                // finish_pool applies the rerank step to the filtered pool.
                let f = Arc::clone(f);
                let accept = move |id: u32| f(u64::from(id));
                let pool = self.inner.search_filtered(q, req.pool_k(), ef, &accept);
                SearchResponse::from_hits(finish_pool(
                    self.inner.provider().base(),
                    req,
                    pool,
                    true,
                ))
            } else if req.wants_rerank() {
                SearchResponse::from_hits(self.inner.search_rerank(q, k, ef, req.rerank))
            } else {
                SearchResponse::from_hits(self.inner.search(q, k, ef))
            }
        })
    }

    fn memory_bytes(&self) -> usize {
        self.inner.index_bytes()
    }

    fn export_graph(&self) -> Option<GraphLayers> {
        Some((*self.frozen()).clone())
    }
}

// ---------------------------------------------------------------------
// Flat-graph (single-layer) indexes: NSG, τ-MG, Vamana, HCNNG
// ---------------------------------------------------------------------

/// Uniform access to the four flat-graph index families.
pub trait FlatAnn: Send + Sync {
    /// The distance provider type.
    type P: DistanceProvider;
    /// The provider.
    fn provider(&self) -> &Self::P;
    /// The navigating graph.
    fn graph(&self) -> &FlatGraph;
    /// Index size in bytes.
    fn index_bytes(&self) -> usize;
}

macro_rules! flat_ann {
    ($($ty:ident),*) => {$(
        impl<P: DistanceProvider> FlatAnn for $ty<P> {
            type P = P;
            fn provider(&self) -> &P {
                $ty::provider(self)
            }
            fn graph(&self) -> &FlatGraph {
                $ty::graph(self)
            }
            fn index_bytes(&self) -> usize {
                $ty::index_bytes(self)
            }
        }
    )*};
}

flat_ann!(Nsg, TauMg, Vamana, Hcnng);

/// A flat-graph index behind the engine API. Plain/filtered/reranked
/// requests run the same `search_flat` the legacy inherent methods use;
/// VBase/ADSampling requests view the flat graph as a single-layer
/// topology (built lazily, once).
pub struct FlatVariant<I: FlatAnn> {
    inner: I,
    layers: OnceLock<GraphLayers>,
    samplers: SamplerCache,
}

impl<I: FlatAnn> FlatVariant<I> {
    /// Wraps a built flat-graph index.
    pub fn new(inner: I) -> Self {
        Self {
            inner,
            layers: OnceLock::new(),
            samplers: SamplerCache::default(),
        }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    fn layers(&self) -> &GraphLayers {
        self.layers
            .get_or_init(|| GraphLayers::from_flat(self.inner.graph()))
    }
}

impl<I: FlatAnn + 'static> AnnIndex for FlatVariant<I> {
    fn len(&self) -> usize {
        self.inner.provider().len()
    }

    fn dim(&self) -> usize {
        self.inner.provider().base().dim()
    }

    fn search(&self, req: &SearchRequest) -> SearchResponse {
        profiled(|| {
            if req.adsampling.is_some() || req.vbase_window.is_some() {
                return serve_layers(self.inner.provider(), self.layers(), &self.samplers, req);
            }
            let (provider, graph) = (self.inner.provider(), self.inner.graph());
            let q = &req.query[..];
            let ef = req.ef;
            if let Some(f) = &req.filter {
                let f = Arc::clone(f);
                let accept = move |id: u32| f(u64::from(id));
                let pool = search_flat_filtered(provider, graph, q, req.pool_k(), ef, &accept);
                return SearchResponse::from_hits(finish_pool(provider.base(), req, pool, true));
            }
            if req.wants_rerank() {
                let pool = search_flat(provider, graph, q, req.pool_k(), ef);
                return SearchResponse::from_hits(graphs::rerank_exact(
                    provider.base(),
                    q,
                    pool,
                    req.k,
                ));
            }
            SearchResponse::from_hits(search_flat(provider, graph, q, req.k, ef))
        })
    }

    fn memory_bytes(&self) -> usize {
        self.inner.index_bytes()
    }

    fn export_graph(&self) -> Option<GraphLayers> {
        Some(self.layers().clone())
    }
}

// ---------------------------------------------------------------------
// Frozen (reloaded-topology) serving
// ---------------------------------------------------------------------

/// Serves a persisted topology through a deterministically re-derived
/// provider — the reload path of `flash_cli search` and the
/// `persisted_serving` example. Handles every request option through the
/// unified frozen-layer pipeline.
pub struct FrozenIndex<P: DistanceProvider> {
    provider: P,
    graph: GraphLayers,
    samplers: SamplerCache,
}

impl<P: DistanceProvider> FrozenIndex<P> {
    /// Pairs a provider with a loaded topology.
    ///
    /// # Panics
    /// Panics if the provider and topology disagree on the vector count.
    pub fn new(provider: P, graph: GraphLayers) -> Self {
        assert_eq!(
            provider.len(),
            graph.len(),
            "provider covers {} vectors, topology {}",
            provider.len(),
            graph.len()
        );
        Self {
            provider,
            graph,
            samplers: SamplerCache::default(),
        }
    }

    /// The provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// The served topology.
    pub fn graph(&self) -> &GraphLayers {
        &self.graph
    }
}

impl<P: DistanceProvider + 'static> AnnIndex for FrozenIndex<P> {
    fn len(&self) -> usize {
        self.provider.len()
    }

    fn dim(&self) -> usize {
        self.provider.base().dim()
    }

    fn search(&self, req: &SearchRequest) -> SearchResponse {
        profiled(|| serve_layers(&self.provider, &self.graph, &self.samplers, req))
    }

    fn memory_bytes(&self) -> usize {
        self.graph.adjacency_bytes() + self.provider.aux_bytes()
    }

    fn export_graph(&self) -> Option<GraphLayers> {
        Some(self.graph.clone())
    }
}

// ---------------------------------------------------------------------
// Brute-force baseline
// ---------------------------------------------------------------------

/// Exact linear-scan baseline: the reference point every approximate
/// index is measured against, served through the same API. Ignores the
/// traversal options (`ef`, rerank, VBase, ADSampling) — results are
/// exact by construction.
pub struct FlatIndex {
    base: VectorSet,
}

impl FlatIndex {
    /// Wraps the dataset.
    pub fn new(base: VectorSet) -> Self {
        Self { base }
    }

    /// The underlying vectors.
    pub fn base(&self) -> &VectorSet {
        &self.base
    }
}

impl AnnIndex for FlatIndex {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn search(&self, req: &SearchRequest) -> SearchResponse {
        profiled(|| {
            let accept = |id: u64| req.filter.as_ref().is_none_or(|f| f(id));
            let mut hits: Vec<Hit> = self
                .base
                .iter()
                .enumerate()
                .filter(|(i, _)| accept(*i as u64))
                .map(|(i, v)| Hit {
                    id: i as u64,
                    dist: simdops::l2_sq(&req.query, v),
                })
                .collect();
            // Linear scan: one exact evaluation per accepted vector.
            graphs::profile_record(metrics::QueryProfile {
                dist_exact: hits.len() as u64,
                ..metrics::QueryProfile::new()
            });
            hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
            hits.truncate(req.k);
            SearchResponse::from_hits(hits)
        })
    }

    fn memory_bytes(&self) -> usize {
        self.base.payload_bytes()
    }
}

// ---------------------------------------------------------------------
// Composite indexes defined elsewhere in the workspace
// ---------------------------------------------------------------------

/// Pool size for search paths that can only filter *after* retrieval
/// (the VBase/ADSampling traversals and the composite LSM / per-label
/// indexes): with a predicate present, fetch well past `k` so selective
/// filters still fill the result set. Plain graph requests filter
/// natively during traversal and do not need this.
fn post_filter_pool(req: &SearchRequest) -> usize {
    if req.filter.is_some() {
        req.pool_k().max(req.k * 16).max(req.ef)
    } else {
        req.pool_k()
    }
}

/// The LSM maintenance index serves through the same API: memtable scan +
/// per-segment filtered graph searches, merged by exact distance. Ids are
/// the stable external ids; `rerank` only widens the merge pool (distances
/// are already exact); VBase/ADSampling are ignored. A predicate filter is
/// applied after the merge over a pool widened to `max(k*16, ef)`, so very
/// selective predicates (rarer than ~1 in 16 within the query's
/// neighborhood) can still under-fill the response.
impl AnnIndex for LsmVectorIndex {
    fn len(&self) -> usize {
        self.stats().live
    }

    fn dim(&self) -> usize {
        self.config().dim
    }

    fn search(&self, req: &SearchRequest) -> SearchResponse {
        profiled(|| {
            let mut hits = LsmVectorIndex::search(self, &req.query, post_filter_pool(req), req.ef);
            if let Some(f) = &req.filter {
                hits.retain(|h| f(h.id));
            }
            hits.truncate(req.k);
            SearchResponse::from_hits(hits)
        })
    }

    fn memory_bytes(&self) -> usize {
        self.bytes()
    }
}

/// The specialized per-label index: requests must carry
/// [`SearchRequest::label`]; an unlabeled request (or an unknown label)
/// returns no hits, mirroring the inherent `search` contract. Reported
/// distances come from the sub-index provider (exact for tiny flat
/// partitions), so `rerank` only widens the pool.
impl<P: DistanceProvider + 'static> AnnIndex for LabeledHnsw<P> {
    fn len(&self) -> usize {
        LabeledHnsw::len(self)
    }

    fn dim(&self) -> usize {
        LabeledHnsw::dim(self)
    }

    fn search(&self, req: &SearchRequest) -> SearchResponse {
        let Some(label) = req.label else {
            return SearchResponse::default();
        };
        profiled(|| {
            let mut hits =
                LabeledHnsw::search(self, &req.query, label, post_filter_pool(req), req.ef);
            if let Some(f) = &req.filter {
                hits.retain(|h| f(h.id));
            }
            hits.truncate(req.k);
            SearchResponse::from_hits(hits)
        })
    }

    fn memory_bytes(&self) -> usize {
        self.index_bytes()
    }
}
