//! One constructor for the whole graph × coding matrix.

use crate::indexes::{FlatVariant, FrozenIndex, GraphIndex};
use crate::kinds::{Coding, GraphKind};
use crate::AnnIndex;
use flash::{FlashCodec, FlashParams, FlashProvider};
use graphs::flat_build::FlatParams;
use graphs::providers::{FullPrecision, OpqProvider, PcaProvider, PqProvider, SqProvider};
use graphs::{
    GraphLayers, Hcnng, HcnngParams, Hnsw, HnswParams, LabeledHnsw, LabeledParams, Nsg, TauMg,
    TauMgParams, Vamana, VamanaParams,
};
use quantizers::sq::SqRange;
use quantizers::{OptimizedProductQuantizer, PcaCodec, ProductQuantizer, ScalarQuantizer};
use std::sync::Arc;
use vecstore::VectorSet;

/// A coding codec trained once over a full corpus, shareable across every
/// shard and replica built from slices of that corpus.
///
/// [`IndexBuilder::build`] trains its codec on whatever dataset it is
/// handed — correct for one monolithic index, but a deployment that builds
/// *many* indexes over one distribution (shards, replicas, LSM segments)
/// would retrain per partition, paying the training cost repeatedly and
/// letting per-partition value ranges skew the grids. Train once with
/// [`IndexBuilder::train_codec`] and build every partition through
/// [`IndexBuilder::build_with_codec`] instead; only encoding is paid per
/// partition. Cloning is cheap (the trained state is behind an `Arc`).
#[derive(Clone)]
pub struct TrainedCodec {
    coding: Coding,
    kind: Arc<CodecKind>,
}

enum CodecKind {
    /// Full precision has no trained state.
    Full,
    Sq(ScalarQuantizer),
    Pca(PcaCodec),
    Pq(ProductQuantizer),
    Opq(OptimizedProductQuantizer),
    Flash(FlashCodec),
}

impl TrainedCodec {
    /// The coding this codec was trained for.
    pub fn coding(&self) -> Coding {
        self.coding
    }
}

impl std::fmt::Debug for TrainedCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedCodec")
            .field("coding", &self.coding)
            .finish()
    }
}

/// Builds any [`GraphKind`] × [`Coding`] combination into a
/// `Box<dyn AnnIndex>`, subsuming the per-type constructors
/// (`Hnsw::build`, `build_flash_nsg`, …) behind one fluent surface.
///
/// Unset knobs fall back to the same defaults the legacy constructors
/// used, so a builder configured with only `(graph, coding, c, r, seed)`
/// produces an index identical to the corresponding legacy call — the
/// property `tests/engine_api.rs` locks in for all 30 combinations.
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    graph: GraphKind,
    coding: Coding,
    c: usize,
    r: usize,
    seed: u64,
    alpha: f32,
    tau: f32,
    trees: usize,
    leaf_size: usize,
    mst_degree: usize,
    flash: Option<FlashParams>,
    sq_bits: u8,
    pq_m: Option<usize>,
    pq_bits: u8,
    opq_iters: usize,
    pca_variance: f64,
    train_sample: Option<usize>,
}

impl IndexBuilder {
    /// A builder for the given combination with the workspace defaults.
    pub fn new(graph: GraphKind, coding: Coding) -> Self {
        Self {
            graph,
            coding,
            c: 128,
            r: 16,
            seed: 0x5eed,
            alpha: 1.2,
            tau: 0.1,
            trees: 10,
            leaf_size: 48,
            mst_degree: 3,
            flash: None,
            sq_bits: 8,
            pq_m: None,
            pq_bits: 8,
            opq_iters: 8,
            pca_variance: 0.9,
            train_sample: None,
        }
    }

    /// Candidate-pool bound `C` (a.k.a. `efConstruction` / DiskANN's `L`).
    pub fn c(mut self, c: usize) -> Self {
        self.c = c;
        self
    }

    /// Degree bound `R`.
    pub fn r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// RNG seed shared by level sampling and codec training.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Vamana's α slack (ignored by other graphs).
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// τ-MG's monotonicity slack (ignored by other graphs).
    pub fn tau(mut self, tau: f32) -> Self {
        self.tau = tau;
        self
    }

    /// HCNNG's clustering passes / leaf size / MST degree (ignored by
    /// other graphs).
    pub fn hcnng(mut self, trees: usize, leaf_size: usize, mst_degree: usize) -> Self {
        self.trees = trees;
        self.leaf_size = leaf_size;
        self.mst_degree = mst_degree;
        self
    }

    /// Full Flash parameter override (default: `FlashParams::auto(dim)`
    /// with this builder's seed and training-sample size).
    pub fn flash_params(mut self, params: FlashParams) -> Self {
        self.flash = Some(params);
        self
    }

    /// SQ code width in bits.
    pub fn sq_bits(mut self, bits: u8) -> Self {
        self.sq_bits = bits;
        self
    }

    /// PQ/OPQ subspace count (default: `(dim / 48).clamp(4, 64)`).
    pub fn pq_m(mut self, m: usize) -> Self {
        self.pq_m = Some(m);
        self
    }

    /// PQ/OPQ codeword bits.
    pub fn pq_bits(mut self, bits: u8) -> Self {
        self.pq_bits = bits;
        self
    }

    /// OPQ alternation iterations.
    pub fn opq_iters(mut self, iters: usize) -> Self {
        self.opq_iters = iters;
        self
    }

    /// PCA retained-variance fraction.
    pub fn pca_variance(mut self, alpha: f64) -> Self {
        self.pca_variance = alpha;
        self
    }

    /// Codec training-sample size (default: `(n / 2).clamp(256, 10_000)`).
    pub fn train_sample(mut self, n: usize) -> Self {
        self.train_sample = Some(n);
        self
    }

    /// The configured graph kind.
    pub fn graph_kind(&self) -> GraphKind {
        self.graph
    }

    /// The configured coding.
    pub fn coding(&self) -> Coding {
        self.coding
    }

    fn hnsw_params(&self) -> HnswParams {
        HnswParams {
            c: self.c,
            r: self.r,
            seed: self.seed,
        }
    }

    fn flat_params(&self) -> FlatParams {
        FlatParams {
            r: self.r,
            c: self.c,
            seed: self.seed,
        }
    }

    fn training_sample_for(&self, n: usize) -> usize {
        self.train_sample.unwrap_or((n / 2).clamp(256, 10_000))
    }

    fn derived_flash(&self, dim: usize, n: usize) -> FlashParams {
        self.flash.unwrap_or_else(|| {
            let mut fp = FlashParams::auto(dim);
            fp.seed = self.seed;
            fp.train_sample = self.training_sample_for(n);
            fp
        })
    }

    fn derived_pq_m(&self, dim: usize) -> usize {
        self.pq_m.unwrap_or((dim / 48).clamp(4, 64))
    }

    /// Trains the configured coding over `base` and builds the configured
    /// graph through it.
    pub fn build(&self, base: VectorSet) -> Box<dyn AnnIndex> {
        let (dim, n) = (base.dim(), base.len());
        let ts = self.training_sample_for(n);
        match self.coding {
            Coding::Full => self.finish(FullPrecision::new(base)),
            Coding::Sq => self.finish(SqProvider::new(base, self.sq_bits)),
            Coding::Pca => self.finish(PcaProvider::with_variance(base, self.pca_variance, ts)),
            Coding::Pq => {
                let m = self.derived_pq_m(dim);
                self.finish(PqProvider::new(base, m, self.pq_bits, ts, self.seed))
            }
            Coding::Opq => {
                let m = self.derived_pq_m(dim);
                self.finish(OpqProvider::new(
                    base,
                    m,
                    self.pq_bits,
                    self.opq_iters,
                    ts,
                    self.seed,
                ))
            }
            Coding::Flash => {
                let fp = self.derived_flash(dim, n);
                self.finish(FlashProvider::new(base, fp))
            }
        }
    }

    /// Trains this builder's coding once over `base`, for sharing across
    /// every shard/replica subsequently built with
    /// [`Self::build_with_codec`]. Training uses the same sample-size and
    /// seed rules as [`Self::build`], so a single-partition
    /// `build_with_codec(base, &train_codec(&base))` equals `build(base)`.
    pub fn train_codec(&self, base: &VectorSet) -> TrainedCodec {
        let (dim, n) = (base.dim(), base.len());
        let ts = self.training_sample_for(n);
        let kind = match self.coding {
            Coding::Full => CodecKind::Full,
            Coding::Sq => {
                CodecKind::Sq(ScalarQuantizer::train(base, self.sq_bits, SqRange::Global))
            }
            Coding::Pca => CodecKind::Pca(PcaCodec::fit_for_variance(
                &base.stride_sample(ts),
                self.pca_variance,
            )),
            Coding::Pq => CodecKind::Pq(ProductQuantizer::train(
                &base.stride_sample(ts),
                self.derived_pq_m(dim),
                self.pq_bits,
                20,
                self.seed,
            )),
            Coding::Opq => CodecKind::Opq(OptimizedProductQuantizer::train(
                &base.stride_sample(ts),
                self.derived_pq_m(dim),
                self.pq_bits,
                self.opq_iters,
                12,
                self.seed,
            )),
            Coding::Flash => CodecKind::Flash(FlashCodec::train(base, self.derived_flash(dim, n))),
        };
        TrainedCodec {
            coding: self.coding,
            kind: Arc::new(kind),
        }
    }

    /// Builds the configured graph over `base` through an already-trained
    /// `codec` (from [`Self::train_codec`]) instead of retraining: the
    /// partition only pays encoding.
    ///
    /// # Panics
    /// Panics if `codec` was trained for a different coding than this
    /// builder is configured with.
    pub fn build_with_codec(&self, base: VectorSet, codec: &TrainedCodec) -> Box<dyn AnnIndex> {
        assert_eq!(
            codec.coding(),
            self.coding,
            "codec was trained for `{}` but the builder is configured for `{}`",
            codec.coding(),
            self.coding
        );
        match &*codec.kind {
            CodecKind::Full => self.finish(FullPrecision::new(base)),
            CodecKind::Sq(sq) => self.finish(SqProvider::from_quantizer(base, sq.clone())),
            CodecKind::Pca(pca) => self.finish(PcaProvider::from_codec(base, pca.clone())),
            CodecKind::Pq(pq) => self.finish(PqProvider::from_quantizer(base, pq.clone())),
            CodecKind::Opq(opq) => self.finish(OpqProvider::from_quantizer(base, opq.clone())),
            CodecKind::Flash(fc) => self.finish(FlashProvider::from_codec(base, fc.clone())),
        }
    }

    fn finish<P: DistanceProviderExt>(&self, provider: P) -> Box<dyn AnnIndex> {
        match self.graph {
            GraphKind::Hnsw => Box::new(GraphIndex::new(Hnsw::build(provider, self.hnsw_params()))),
            GraphKind::Nsg => Box::new(FlatVariant::new(Nsg::build(provider, self.flat_params()))),
            GraphKind::TauMg => Box::new(FlatVariant::new(TauMg::build(
                provider,
                TauMgParams {
                    flat: self.flat_params(),
                    tau: self.tau,
                },
            ))),
            GraphKind::Vamana => Box::new(FlatVariant::new(Vamana::build(
                provider,
                VamanaParams {
                    r: self.r,
                    c: self.c,
                    alpha: self.alpha,
                    seed: self.seed,
                },
            ))),
            GraphKind::Hcnng => Box::new(FlatVariant::new(Hcnng::build(
                provider,
                HcnngParams {
                    trees: self.trees,
                    leaf_size: self.leaf_size,
                    mst_degree: self.mst_degree,
                    seed: self.seed,
                },
            ))),
        }
    }

    /// Serves a persisted topology: re-derives the provider over `base`
    /// (deterministic for a given seed) and pairs it with `graph` in a
    /// [`FrozenIndex`]. Works for any graph kind — flat topologies are
    /// single-layer [`GraphLayers`].
    pub fn serve(&self, base: VectorSet, graph: GraphLayers) -> Result<Box<dyn AnnIndex>, String> {
        if base.len() != graph.len() {
            return Err(format!(
                "topology covers {} nodes but base has {} vectors",
                graph.len(),
                base.len()
            ));
        }
        let (dim, n) = (base.dim(), base.len());
        let ts = self.training_sample_for(n);
        Ok(match self.coding {
            Coding::Full => Box::new(FrozenIndex::new(FullPrecision::new(base), graph)),
            Coding::Sq => Box::new(FrozenIndex::new(SqProvider::new(base, self.sq_bits), graph)),
            Coding::Pca => Box::new(FrozenIndex::new(
                PcaProvider::with_variance(base, self.pca_variance, ts),
                graph,
            )),
            Coding::Pq => {
                let m = self.derived_pq_m(dim);
                Box::new(FrozenIndex::new(
                    PqProvider::new(base, m, self.pq_bits, ts, self.seed),
                    graph,
                ))
            }
            Coding::Opq => {
                let m = self.derived_pq_m(dim);
                Box::new(FrozenIndex::new(
                    OpqProvider::new(base, m, self.pq_bits, self.opq_iters, ts, self.seed),
                    graph,
                ))
            }
            Coding::Flash => {
                let fp = self.derived_flash(dim, n);
                Box::new(FrozenIndex::new(FlashProvider::new(base, fp), graph))
            }
        })
    }

    /// Builds one specialized sub-index per label value (HNSW only — the
    /// specialization the paper's hybrid-search motivation describes).
    /// Codec-backed codings train once on the whole corpus and share the
    /// codec across partitions.
    pub fn build_labeled(
        &self,
        base: &VectorSet,
        labels: &[u32],
        min_graph_size: usize,
    ) -> Result<Box<dyn AnnIndex>, String> {
        if self.graph != GraphKind::Hnsw {
            return Err(format!(
                "per-label specialization is HNSW-based; got graph kind `{}`",
                self.graph
            ));
        }
        let params = LabeledParams {
            hnsw: self.hnsw_params(),
            min_graph_size,
        };
        let (dim, n) = (base.dim(), base.len());
        Ok(match self.coding {
            Coding::Full => Box::new(LabeledHnsw::build(base, labels, params, FullPrecision::new)),
            Coding::Sq => {
                let bits = self.sq_bits;
                Box::new(LabeledHnsw::build(base, labels, params, move |subset| {
                    SqProvider::new(subset, bits)
                }))
            }
            Coding::Pca => {
                let alpha = self.pca_variance;
                Box::new(LabeledHnsw::build(base, labels, params, move |subset| {
                    let ts = (subset.len() / 2).clamp(16, 10_000);
                    PcaProvider::with_variance(subset, alpha, ts)
                }))
            }
            Coding::Pq => {
                let (m, bits, seed) = (self.derived_pq_m(dim), self.pq_bits, self.seed);
                Box::new(LabeledHnsw::build(base, labels, params, move |subset| {
                    let ts = (subset.len() / 2).clamp(16, 10_000);
                    PqProvider::new(subset, m, bits, ts, seed)
                }))
            }
            Coding::Opq => {
                let (m, bits, iters, seed) = (
                    self.derived_pq_m(dim),
                    self.pq_bits,
                    self.opq_iters,
                    self.seed,
                );
                Box::new(LabeledHnsw::build(base, labels, params, move |subset| {
                    let ts = (subset.len() / 2).clamp(16, 10_000);
                    OpqProvider::new(subset, m, bits, iters, ts, seed)
                }))
            }
            Coding::Flash => {
                // Train once on the whole corpus; partitions only encode.
                let codec = FlashCodec::train(base, self.derived_flash(dim, n));
                Box::new(LabeledHnsw::build(base, labels, params, move |subset| {
                    FlashProvider::from_codec(subset, codec.clone())
                }))
            }
        })
    }
}

/// `DistanceProvider + 'static`, nameable as one bound.
trait DistanceProviderExt: graphs::DistanceProvider + 'static {}
impl<T: graphs::DistanceProvider + 'static> DistanceProviderExt for T {}
