//! The unified request/response model.

use graphs::Hit;
use metrics::{QueryProfile, TraceContext};
use std::fmt;
use std::sync::Arc;

/// Shared, clonable id predicate (`true` = the vector may appear in
/// results).
pub type IdFilter = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// ADSampling configuration (Gao & Long 2023): progressive distance
/// evaluation with hypothesis-test early abandonment over a rotated copy
/// of the dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdSamplingOptions {
    /// Confidence inflation ε₀ (the original paper suggests ~2.1).
    pub epsilon0: f32,
    /// Dimensions evaluated between hypothesis tests.
    pub delta_d: usize,
    /// Seed of the random block rotation.
    pub seed: u64,
}

impl Default for AdSamplingOptions {
    fn default() -> Self {
        Self {
            epsilon0: 2.1,
            delta_d: 32,
            seed: 0xAD5A,
        }
    }
}

/// One search request: the query vector plus every knob the workspace's
/// search variants expose, in one builder.
///
/// ```
/// use engine::SearchRequest;
///
/// let req = SearchRequest::new(vec![0.0; 8], 10)
///     .ef(128)
///     .rerank(8)
///     .filter(|id| id % 2 == 0);
/// assert_eq!(req.k, 10);
/// ```
#[derive(Clone)]
pub struct SearchRequest {
    /// The query vector.
    pub query: Vec<f32>,
    /// Number of neighbors requested.
    pub k: usize,
    /// Beam width of the base-layer search (`ef ≥ k` is enforced by every
    /// path).
    pub ef: usize,
    /// Exact-rerank factor: a candidate pool of `k * rerank` is re-scored
    /// with full-precision distances. `0` or `1` disables reranking.
    pub rerank: usize,
    /// Restrict results to one label partition (honored by label-aware
    /// indexes; ignored elsewhere).
    pub label: Option<u32>,
    /// Predicate filter over result ids.
    pub filter: Option<IdFilter>,
    /// VBase-style relaxed-monotonicity termination window; replaces the
    /// fixed-`ef` stopping rule on graph indexes.
    pub vbase_window: Option<usize>,
    /// ADSampling progressive-distance options for graph indexes.
    pub adsampling: Option<AdSamplingOptions>,
    /// Observability handle: when set, each serving layer records typed
    /// spans for this request into the context's ring. Never affects
    /// results, cache keys, or the wire payload (the frame header carries
    /// the trace id instead).
    pub trace: Option<TraceContext>,
}

impl SearchRequest {
    /// A plain top-`k` request with a default beam of `max(64, k)`.
    pub fn new(query: impl Into<Vec<f32>>, k: usize) -> Self {
        Self {
            query: query.into(),
            k,
            ef: k.max(64),
            rerank: 1,
            label: None,
            filter: None,
            vbase_window: None,
            adsampling: None,
            trace: None,
        }
    }

    /// Sets the beam width.
    pub fn ef(mut self, ef: usize) -> Self {
        self.ef = ef;
        self
    }

    /// Sets the exact-rerank factor (`0`/`1` disables).
    pub fn rerank(mut self, factor: usize) -> Self {
        self.rerank = factor;
        self
    }

    /// Restricts results to `label`'s partition.
    pub fn label(mut self, label: u32) -> Self {
        self.label = Some(label);
        self
    }

    /// Restricts results to ids accepted by `f`.
    pub fn filter(mut self, f: impl Fn(u64) -> bool + Send + Sync + 'static) -> Self {
        self.filter = Some(Arc::new(f));
        self
    }

    /// Shares an existing filter.
    pub fn filter_arc(mut self, f: IdFilter) -> Self {
        self.filter = Some(f);
        self
    }

    /// Enables VBase early termination with `window`.
    pub fn vbase(mut self, window: usize) -> Self {
        self.vbase_window = Some(window);
        self
    }

    /// Enables ADSampling with `options`.
    pub fn adsampling(mut self, options: AdSamplingOptions) -> Self {
        self.adsampling = Some(options);
        self
    }

    /// Attaches a trace context so serving layers record spans for this
    /// request.
    pub fn trace(mut self, ctx: TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// Candidate-pool size before reranking: `max(k · rerank, k)`.
    pub fn pool_k(&self) -> usize {
        (self.k * self.rerank.max(1)).max(self.k)
    }

    /// Whether exact reranking is requested.
    pub fn wants_rerank(&self) -> bool {
        self.rerank > 1
    }
}

impl fmt::Debug for SearchRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SearchRequest")
            .field("dim", &self.query.len())
            .field("k", &self.k)
            .field("ef", &self.ef)
            .field("rerank", &self.rerank)
            .field("label", &self.label)
            .field("filter", &self.filter.as_ref().map(|_| "<predicate>"))
            .field("vbase_window", &self.vbase_window)
            .field("adsampling", &self.adsampling)
            .field("trace", &self.trace)
            .finish()
    }
}

/// Work counters a search reports back (populated by the ADSampling path;
/// zero elsewhere).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distance evaluations started.
    pub evaluated: u64,
    /// Evaluations abandoned early (ADSampling).
    pub abandoned: u64,
}

/// One search response: hits sorted ascending by `(dist, id)`.
#[derive(Debug, Clone, Default)]
pub struct SearchResponse {
    /// The `k` (or fewer) nearest accepted vectors.
    pub hits: Vec<Hit>,
    /// Work counters, where the search path tracks them.
    pub stats: SearchStats,
    /// Structural cost profile of serving this request: hops, distance
    /// evaluations, bytes touched. Deterministic per `(seed, topology)`;
    /// aggregating layers sum the profiles of the leaf searches they
    /// fanned out to, and cache hits report an all-zero profile.
    pub profile: QueryProfile,
}

impl SearchResponse {
    /// Wraps already-sorted hits.
    pub fn from_hits(hits: Vec<Hit>) -> Self {
        Self {
            hits,
            stats: SearchStats::default(),
            profile: QueryProfile::new(),
        }
    }

    /// The hit ids, in rank order.
    pub fn ids(&self) -> Vec<u64> {
        self.hits.iter().map(|h| h.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_options() {
        let req = SearchRequest::new(vec![1.0, 2.0], 3)
            .ef(99)
            .rerank(4)
            .label(7)
            .vbase(25)
            .adsampling(AdSamplingOptions::default())
            .filter(|id| id != 0);
        assert_eq!(req.ef, 99);
        assert_eq!(req.rerank, 4);
        assert_eq!(req.label, Some(7));
        assert_eq!(req.vbase_window, Some(25));
        assert!(req.adsampling.is_some());
        assert!(req.filter.as_ref().unwrap()(5));
        assert!(!req.filter.as_ref().unwrap()(0));
        assert_eq!(req.pool_k(), 12);
    }

    #[test]
    fn pool_never_below_k() {
        let req = SearchRequest::new(vec![0.0], 5).rerank(0);
        assert_eq!(req.pool_k(), 5);
        assert!(!req.wants_rerank());
    }

    #[test]
    fn debug_omits_query_payload() {
        let req = SearchRequest::new(vec![0.0; 128], 1).filter(|_| true);
        let s = format!("{req:?}");
        assert!(s.contains("dim"));
        assert!(s.contains("<predicate>"));
    }
}
