//! Binary serialization of the request/response model.
//!
//! This is the **payload** layer of the distributed serving wire protocol
//! (`serving::distributed` adds framing, versioning, and checksums on
//! top): [`SearchRequest`] and [`SearchResponse`] encode to explicit
//! little-endian byte strings that round-trip bit-for-bit, so a remote
//! node serves exactly the request the coordinator built and the
//! coordinator gathers exactly the hits the node found.
//!
//! Every multi-byte value is little-endian regardless of host order;
//! floats travel as their IEEE-754 bit patterns (`f32::to_bits`), so NaN
//! payloads and signed zeros survive the trip unchanged. Optional fields
//! use a one-byte presence tag (`0` absent, `1` present); any other tag
//! value is rejected as [`WireError::Malformed`] rather than guessed at.
//!
//! Predicate filters are closures and have no byte representation:
//! encoding a filtered request fails with [`WireError::Unencodable`]
//! (keep filtered traffic on in-process shards, or push label filters,
//! which do serialize).

use crate::request::{AdSamplingOptions, SearchRequest, SearchResponse, SearchStats};
use graphs::Hit;
use metrics::QueryProfile;
use std::fmt;

/// Why encoding or decoding a wire value failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes the buffer still had.
        have: usize,
    },
    /// The bytes decode to something the protocol forbids (bad presence
    /// tag, unknown frame kind, checksum mismatch, trailing garbage).
    Malformed(String),
    /// The value has no byte representation (predicate filters).
    Unencodable(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated wire value: needed {needed} bytes, have {have}"
                )
            }
            WireError::Malformed(what) => write!(f, "malformed wire value: {what}"),
            WireError::Unencodable(what) => write!(f, "cannot encode {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian byte-string writer (append-only).
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (platform-independent).
    pub fn put_usize(&mut self, x: usize) {
        self.put_u64(x as u64);
    }

    /// Appends an `f32` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f32(&mut self, x: f32) {
        self.put_u32(x.to_bits());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over a little-endian byte string; every read checks bounds and
/// reports [`WireError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` sent as a little-endian `u64`, rejecting values the
    /// local platform cannot represent.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        let x = self.get_u64()?;
        usize::try_from(x).map_err(|_| WireError::Malformed(format!("size {x} overflows usize")))
    }

    /// Reads an `f32` from its IEEE-754 bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Asserts every byte was consumed; trailing bytes mean the sender and
    /// receiver disagree on the layout, which must fail loudly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after value",
                self.remaining()
            )))
        }
    }
}

/// Reads a `0`/`1` presence tag.
fn get_tag(r: &mut WireReader<'_>, what: &str) -> Result<bool, WireError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::Malformed(format!(
            "presence tag for {what} must be 0 or 1, got {other}"
        ))),
    }
}

/// Appends `request`'s wire encoding to `w`.
///
/// Fails with [`WireError::Unencodable`] when the request carries a
/// predicate filter — closures cannot cross the wire.
pub fn encode_request(request: &SearchRequest, w: &mut WireWriter) -> Result<(), WireError> {
    if request.filter.is_some() {
        return Err(WireError::Unencodable(
            "a predicate-filtered SearchRequest (closures have no wire form)",
        ));
    }
    w.put_u32(request.query.len() as u32);
    for &x in &request.query {
        w.put_f32(x);
    }
    w.put_usize(request.k);
    w.put_usize(request.ef);
    w.put_usize(request.rerank);
    match request.label {
        None => w.put_u8(0),
        Some(label) => {
            w.put_u8(1);
            w.put_u32(label);
        }
    }
    match request.vbase_window {
        None => w.put_u8(0),
        Some(window) => {
            w.put_u8(1);
            w.put_usize(window);
        }
    }
    match &request.adsampling {
        None => w.put_u8(0),
        Some(ad) => {
            w.put_u8(1);
            w.put_f32(ad.epsilon0);
            w.put_usize(ad.delta_d);
            w.put_u64(ad.seed);
        }
    }
    Ok(())
}

/// Decodes one [`SearchRequest`] from `r` (the inverse of
/// [`encode_request`]; the decoded request never carries a filter).
pub fn decode_request(r: &mut WireReader<'_>) -> Result<SearchRequest, WireError> {
    let dim = r.get_u32()? as usize;
    let mut query = Vec::with_capacity(dim.min(r.remaining() / 4 + 1));
    for _ in 0..dim {
        query.push(r.get_f32()?);
    }
    let k = r.get_usize()?;
    let mut request = SearchRequest::new(query, k);
    request.ef = r.get_usize()?;
    request.rerank = r.get_usize()?;
    request.label = get_tag(r, "label")?.then(|| r.get_u32()).transpose()?;
    request.vbase_window = get_tag(r, "vbase_window")?
        .then(|| r.get_usize())
        .transpose()?;
    request.adsampling = if get_tag(r, "adsampling")? {
        Some(AdSamplingOptions {
            epsilon0: r.get_f32()?,
            delta_d: r.get_usize()?,
            seed: r.get_u64()?,
        })
    } else {
        None
    };
    Ok(request)
}

/// Appends `response`'s wire encoding to `w`.
pub fn encode_response(response: &SearchResponse, w: &mut WireWriter) {
    w.put_u32(response.hits.len() as u32);
    for hit in &response.hits {
        w.put_u64(hit.id);
        w.put_f32(hit.dist);
    }
    w.put_u64(response.stats.evaluated);
    w.put_u64(response.stats.abandoned);
    // The cost profile travels as its canonical fixed-order field array.
    for x in response.profile.as_array() {
        w.put_u64(x);
    }
}

/// Decodes one [`SearchResponse`] from `r` (the inverse of
/// [`encode_response`]).
pub fn decode_response(r: &mut WireReader<'_>) -> Result<SearchResponse, WireError> {
    let count = r.get_u32()? as usize;
    let mut hits = Vec::with_capacity(count.min(r.remaining() / 12 + 1));
    for _ in 0..count {
        let id = r.get_u64()?;
        let dist = r.get_f32()?;
        hits.push(Hit { id, dist });
    }
    let stats = SearchStats {
        evaluated: r.get_u64()?,
        abandoned: r.get_u64()?,
    };
    let mut fields = [0u64; metrics::profile::PROFILE_FIELDS.len()];
    for slot in &mut fields {
        *slot = r.get_u64()?;
    }
    Ok(SearchResponse {
        hits,
        stats,
        profile: QueryProfile::from_array(fields),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: &SearchRequest) -> SearchRequest {
        let mut w = WireWriter::new();
        encode_request(request, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let decoded = decode_request(&mut r).unwrap();
        r.finish().unwrap();
        decoded
    }

    #[test]
    fn request_roundtrips_every_option() {
        let request = SearchRequest::new(vec![1.5, -0.0, f32::NAN, 3.25], 7)
            .ef(130)
            .rerank(4)
            .label(9)
            .vbase(33)
            .adsampling(AdSamplingOptions {
                epsilon0: 1.75,
                delta_d: 16,
                seed: 0xDEAD_BEEF,
            });
        let decoded = roundtrip_request(&request);
        assert_eq!(decoded.k, 7);
        assert_eq!(decoded.ef, 130);
        assert_eq!(decoded.rerank, 4);
        assert_eq!(decoded.label, Some(9));
        assert_eq!(decoded.vbase_window, Some(33));
        assert_eq!(decoded.adsampling, request.adsampling);
        // Bit-exact floats: NaN and -0.0 survive unchanged.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&decoded.query), bits(&request.query));
        assert!(decoded.filter.is_none());
    }

    #[test]
    fn request_defaults_roundtrip() {
        let request = SearchRequest::new(vec![0.0; 3], 10);
        let decoded = roundtrip_request(&request);
        assert_eq!(decoded.k, 10);
        assert_eq!(decoded.ef, request.ef);
        assert_eq!(decoded.label, None);
        assert_eq!(decoded.vbase_window, None);
        assert!(decoded.adsampling.is_none());
    }

    #[test]
    fn filtered_request_is_unencodable() {
        let request = SearchRequest::new(vec![0.0], 1).filter(|_| true);
        let mut w = WireWriter::new();
        assert!(matches!(
            encode_request(&request, &mut w),
            Err(WireError::Unencodable(_))
        ));
    }

    #[test]
    fn response_roundtrips_bit_for_bit() {
        let response = SearchResponse {
            hits: vec![
                Hit { id: 3, dist: 0.5 },
                Hit {
                    id: u64::MAX,
                    dist: -0.0,
                },
            ],
            stats: SearchStats {
                evaluated: 42,
                abandoned: 7,
            },
            profile: QueryProfile {
                hops_upper: 1,
                hops_base: 2,
                dist_coded: 3,
                dist_exact: 4,
                rows_scored: 5,
                codeword_bytes: 6,
                visited_inserts: 7,
                rerank_pool: 8,
                scratch_checkouts: 9,
            },
        };
        let mut w = WireWriter::new();
        encode_response(&response, &mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let decoded = decode_response(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded.hits, response.hits);
        assert_eq!(decoded.stats, response.stats);
        assert_eq!(decoded.profile, response.profile);
    }

    #[test]
    fn truncated_response_profile_is_rejected() {
        let mut w = WireWriter::new();
        encode_response(
            &SearchResponse::from_hits(vec![Hit { id: 1, dist: 2.0 }]),
            &mut w,
        );
        let bytes = w.into_bytes();
        // Cut inside the profile field array.
        let mut r = WireReader::new(&bytes[..bytes.len() - 4]);
        assert!(matches!(
            decode_response(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let request = SearchRequest::new(vec![1.0, 2.0], 3).label(1).vbase(8);
        let mut w = WireWriter::new();
        encode_request(&request, &mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(
                matches!(decode_request(&mut r), Err(WireError::Truncated { .. })),
                "prefix of {cut} bytes must be rejected as truncated"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        encode_request(&SearchRequest::new(vec![1.0], 1), &mut w).unwrap();
        let mut bytes = w.into_bytes();
        bytes.push(0xFF);
        let mut r = WireReader::new(&bytes);
        decode_request(&mut r).unwrap();
        assert!(matches!(r.finish(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn bad_presence_tag_is_malformed_not_guessed() {
        let mut w = WireWriter::new();
        encode_request(&SearchRequest::new(vec![1.0], 1), &mut w).unwrap();
        let mut bytes = w.into_bytes();
        // The label tag sits right after query (4 + 4 bytes) and k/ef/rerank
        // (3 × 8 bytes).
        let tag_at = 4 + 4 + 24;
        bytes[tag_at] = 7;
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            decode_request(&mut r),
            Err(WireError::Malformed(_))
        ));
    }
}
