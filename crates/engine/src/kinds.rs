//! The graph × coding matrix and its name parsers.

use std::fmt;
use std::str::FromStr;

macro_rules! fmt_name {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(self.name())
        }
    };
}
/// The graph construction algorithm behind an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Hierarchical Navigable Small World (multi-layer).
    Hnsw,
    /// Navigating Spreading-out Graph (single layer, medoid entry).
    Nsg,
    /// τ-monotonic graph (single layer, relaxed pruning).
    TauMg,
    /// DiskANN's Vamana (single layer, α-RNG pruning).
    Vamana,
    /// Hierarchical Clustering NNG (single layer, MST family).
    Hcnng,
}

impl GraphKind {
    /// Every supported graph kind.
    pub const ALL: [GraphKind; 5] = [
        GraphKind::Hnsw,
        GraphKind::Nsg,
        GraphKind::TauMg,
        GraphKind::Vamana,
        GraphKind::Hcnng,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Hnsw => "hnsw",
            GraphKind::Nsg => "nsg",
            GraphKind::TauMg => "taumg",
            GraphKind::Vamana => "vamana",
            GraphKind::Hcnng => "hcnng",
        }
    }
}

impl fmt::Display for GraphKind {
    fmt_name!();
}

impl FromStr for GraphKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "hnsw" => Ok(GraphKind::Hnsw),
            "nsg" => Ok(GraphKind::Nsg),
            "taumg" | "tau-mg" | "tau_mg" | "tmg" => Ok(GraphKind::TauMg),
            "vamana" | "diskann" => Ok(GraphKind::Vamana),
            "hcnng" => Ok(GraphKind::Hcnng),
            other => Err(format!(
                "unknown graph kind `{other}` (accepted: hnsw, nsg, taumg, vamana, hcnng)"
            )),
        }
    }
}

/// The vector-coding method distances are computed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coding {
    /// Full-precision `f32` vectors (the baseline).
    Full,
    /// Scalar quantization to integer codes.
    Sq,
    /// PCA projection.
    Pca,
    /// Product quantization (ADC/SDC tables).
    Pq,
    /// Optimized product quantization (learned rotation + PQ).
    Opq,
    /// The paper's Flash coding (PCA → 4-bit subspace codewords →
    /// register-resident quantized tables).
    Flash,
}

impl Coding {
    /// Every supported coding.
    pub const ALL: [Coding; 6] = [
        Coding::Full,
        Coding::Sq,
        Coding::Pca,
        Coding::Pq,
        Coding::Opq,
        Coding::Flash,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Coding::Full => "full",
            Coding::Sq => "sq",
            Coding::Pca => "pca",
            Coding::Pq => "pq",
            Coding::Opq => "opq",
            Coding::Flash => "flash",
        }
    }

    /// The exact-rerank factor serving deployments conventionally pair
    /// with this coding (compressed distances need a rerank pool; exact
    /// distances do not). Used by `flash_cli` defaults.
    pub fn default_rerank(self) -> usize {
        match self {
            Coding::Full => 1,
            Coding::Sq | Coding::Pca => 4,
            Coding::Pq | Coding::Opq | Coding::Flash => 8,
        }
    }
}

impl fmt::Display for Coding {
    fmt_name!();
}

impl FromStr for Coding {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "full" | "float" | "f32" => Ok(Coding::Full),
            "sq" => Ok(Coding::Sq),
            "pca" => Ok(Coding::Pca),
            "pq" => Ok(Coding::Pq),
            "opq" => Ok(Coding::Opq),
            "flash" => Ok(Coding::Flash),
            other => Err(format!(
                "unknown coding `{other}` (accepted: full, sq, pca, pq, opq, flash)"
            )),
        }
    }
}

/// Parses a CLI-style method string into `(GraphKind, Coding)`.
///
/// Accepted forms:
/// * legacy single tokens, all HNSW-based: `flash`, `hnsw` (= full
///   precision), `full`, `pq`, `sq`, `pca`, `opq`;
/// * an explicit pair `<graph>:<coding>` or `<graph>-<coding>`, e.g.
///   `nsg:flash`, `vamana-full`, `taumg:pq`.
///
/// The error message enumerates the accepted set, so callers can validate
/// up front and fail with a self-explanatory message.
pub fn parse_method(s: &str) -> Result<(GraphKind, Coding), String> {
    let lower = s.to_ascii_lowercase();
    // Legacy single tokens (the pre-engine CLI surface).
    match lower.as_str() {
        "hnsw" => return Ok((GraphKind::Hnsw, Coding::Full)),
        "full" | "flash" | "pq" | "sq" | "pca" | "opq" => {
            return Ok((GraphKind::Hnsw, lower.parse()?))
        }
        _ => {}
    }
    // Explicit `<graph>:<coding>` (also `-` as separator; try every split
    // position so aliases containing `-`, like `tau-mg`, keep working).
    let candidates: Vec<(usize, char)> = lower
        .char_indices()
        .filter(|&(_, c)| c == ':' || c == '-')
        .collect();
    for (i, _) in candidates {
        let (g, c) = (&lower[..i], &lower[i + 1..]);
        if let (Ok(graph), Ok(coding)) = (g.parse::<GraphKind>(), c.parse::<Coding>()) {
            return Ok((graph, coding));
        }
    }
    Err(format!(
        "unknown method `{s}`; accepted: flash | hnsw | full | pq | sq | pca | opq \
         (HNSW-based shorthands), or <graph>:<coding> with graph in \
         {{hnsw, nsg, taumg, vamana, hcnng}} and coding in \
         {{full, sq, pca, pq, opq, flash}}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_tokens_map_to_hnsw() {
        assert_eq!(
            parse_method("flash").unwrap(),
            (GraphKind::Hnsw, Coding::Flash)
        );
        assert_eq!(
            parse_method("hnsw").unwrap(),
            (GraphKind::Hnsw, Coding::Full)
        );
        assert_eq!(parse_method("pq").unwrap(), (GraphKind::Hnsw, Coding::Pq));
        assert_eq!(parse_method("opq").unwrap(), (GraphKind::Hnsw, Coding::Opq));
    }

    #[test]
    fn pair_forms_parse() {
        assert_eq!(
            parse_method("nsg:flash").unwrap(),
            (GraphKind::Nsg, Coding::Flash)
        );
        assert_eq!(
            parse_method("vamana-full").unwrap(),
            (GraphKind::Vamana, Coding::Full)
        );
        assert_eq!(
            parse_method("tau-mg:pq").unwrap(),
            (GraphKind::TauMg, Coding::Pq)
        );
        assert_eq!(
            parse_method("tau-mg-sq").unwrap(),
            (GraphKind::TauMg, Coding::Sq)
        );
        assert_eq!(
            parse_method("HCNNG:FLASH").unwrap(),
            (GraphKind::Hcnng, Coding::Flash)
        );
    }

    #[test]
    fn errors_enumerate_accepted_set() {
        let err = parse_method("bogus").unwrap_err();
        assert!(err.contains("flash | hnsw"));
        assert!(err.contains("nsg"));
        assert!(err.contains("opq"));
        assert!(parse_method("nsg:bogus").is_err());
        assert!(parse_method("bogus:flash").is_err());
    }

    #[test]
    fn every_kind_round_trips_through_names() {
        for g in GraphKind::ALL {
            assert_eq!(g.name().parse::<GraphKind>().unwrap(), g);
        }
        for c in Coding::ALL {
            assert_eq!(c.name().parse::<Coding>().unwrap(), c);
            let (g, parsed) = parse_method(&format!("nsg:{}", c.name())).unwrap();
            assert_eq!((g, parsed), (GraphKind::Nsg, c));
        }
    }
}
