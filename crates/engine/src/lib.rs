//! The unified serving API of the `hnsw-flash` workspace.
//!
//! The paper reproduction grew one concrete index type per graph algorithm
//! × coding method (plus an LSM maintenance index), each with slightly
//! different constructors and search signatures. This crate consolidates
//! all of them behind three things:
//!
//! * [`AnnIndex`] — one object-safe serving trait (`len` / `dim` /
//!   `search` / `search_batch` / `memory_bytes`), implemented for every
//!   graph × coding combination, for the brute-force [`FlatIndex`]
//!   baseline, for the per-label [`graphs::LabeledHnsw`] specialization,
//!   and for the LSM [`maintenance::LsmVectorIndex`];
//! * [`SearchRequest`] / [`SearchResponse`] — one request/response model
//!   unifying `k`, `ef`, rerank depth, label and predicate filters, VBase
//!   early termination, and ADSampling options;
//! * [`IndexBuilder`] — one constructor mapping
//!   [`GraphKind`] × [`Coding`] to a ready `Box<dyn AnnIndex>`,
//!   subsuming the per-type `build_flash_*` free functions.
//!
//! ```
//! use engine::{Coding, GraphKind, IndexBuilder, SearchRequest};
//! use vecstore::{generate, DatasetProfile};
//!
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 400, 4, 7);
//! let index = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash)
//!     .c(64)
//!     .r(8)
//!     .seed(1)
//!     .build(base);
//!
//! let response = index.search(&SearchRequest::new(queries.get(0), 5).ef(64).rerank(8));
//! assert_eq!(response.hits.len(), 5);
//! ```
//!
//! Every search path returns [`Hit`]s sorted ascending by `(dist, id)`.
//! The concrete index types remain available for construction-time needs
//! (streaming inserts, freezing, provider access); this trait is the
//! *serving* surface that sharding, async request routing, and caching
//! layers build on.

mod builder;
mod indexes;
mod kinds;
mod request;
pub mod wire;

pub use builder::{IndexBuilder, TrainedCodec};
pub use graphs::Hit;
pub use indexes::{FlatIndex, FlatVariant, FrozenIndex, GraphIndex};
pub use kinds::{parse_method, Coding, GraphKind};
pub use request::{AdSamplingOptions, SearchRequest, SearchResponse, SearchStats};
pub use wire::WireError;

use graphs::GraphLayers;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One approximate-nearest-neighbor index, ready to serve.
///
/// Object safety is deliberate: heterogeneous deployments hold
/// `Box<dyn AnnIndex>` / `Arc<dyn AnnIndex>` collections (per-shard,
/// per-tenant, per-label) and route requests without caring which graph or
/// codec sits underneath.
///
/// ## Option support
///
/// Every implementation honors `k`, `ef`, `rerank`, and `filter`. Graph
/// indexes additionally honor `vbase_window` and `adsampling` (when both
/// are set, ADSampling wins). The [`FlatIndex`] baseline and the LSM index
/// ignore the traversal options — their results are exact already — and
/// the per-label index requires [`SearchRequest::label`]. Unsupported
/// options degrade gracefully (they never panic): the index serves the
/// request through its closest native path.
pub trait AnnIndex: Send + Sync {
    /// Number of vectors served.
    fn len(&self) -> usize;

    /// Whether the index serves no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Serves one request.
    fn search(&self, request: &SearchRequest) -> SearchResponse;

    /// Serves a batch of requests (default: sequential [`Self::search`]).
    fn search_batch(&self, requests: &[SearchRequest]) -> Vec<SearchResponse> {
        requests.iter().map(|r| self.search(r)).collect()
    }

    /// Serves a batch like [`Self::search_batch`], additionally reporting
    /// each query's **individually measured** execution time.
    ///
    /// This is what latency percentiles must be built from: attributing a
    /// batch's wall-clock divided by its size to every member collapses
    /// p50/p95/p99 to the batch mean and hides slow queries. The default
    /// times each sequential [`Self::search`] call; concurrent
    /// implementations override it to time each query's own critical path
    /// (a sharded index times the slowest shard fan-out plus its gather; a
    /// caching index reports the lookup time for hits and the inner time
    /// for misses).
    fn search_batch_timed(&self, requests: &[SearchRequest]) -> Vec<(SearchResponse, Duration)> {
        requests
            .iter()
            .map(|r| {
                let t0 = Instant::now();
                let response = self.search(r);
                (response, t0.elapsed())
            })
            .collect()
    }

    /// Resident bytes of the index (adjacency + codes + payloads).
    fn memory_bytes(&self) -> usize;

    /// The frozen graph topology, when the index is graph-backed (used for
    /// persistence; `None` for brute-force and composite indexes).
    fn export_graph(&self) -> Option<GraphLayers> {
        None
    }
}

/// A shared handle serves exactly like the index it points to, so layers
/// that take ownership (`Box<dyn AnnIndex>` shards, wrappers) can hold an
/// `Arc` to an index someone else also observes — e.g. a replica group
/// whose health stats the caller keeps reading after nesting it under a
/// `ShardedIndex`.
impl<T: AnnIndex + ?Sized> AnnIndex for Arc<T> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn search(&self, request: &SearchRequest) -> SearchResponse {
        (**self).search(request)
    }

    fn search_batch(&self, requests: &[SearchRequest]) -> Vec<SearchResponse> {
        (**self).search_batch(requests)
    }

    fn search_batch_timed(&self, requests: &[SearchRequest]) -> Vec<(SearchResponse, Duration)> {
        (**self).search_batch_timed(requests)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn export_graph(&self) -> Option<GraphLayers> {
        (**self).export_graph()
    }
}
