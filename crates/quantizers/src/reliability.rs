//! The Theorem-1 comparison-reliability estimator.
//!
//! The paper's key theoretical insight (Lemma 1 + Theorem 1): the distance
//! comparison `δ(u,v) vs δ(u,w)` reduces to the sign of `e·u − b` (the side
//! of the perpendicular-bisector hyperplane of `v` and `w` that `u` falls
//! on), and compressing all three vectors preserves the comparison whenever
//!
//! ```text
//! |e·u − b| ≥ |E|
//! ```
//!
//! with `E` the error aggregate of Equation (1). Section 3.1 turns this into
//! a tuning procedure: sample vectors, take each sample's two nearest
//! neighbors to form triples `(u, v, w)`, and measure the fraction of
//! triples satisfying the inequality under a candidate codec configuration.
//! This module implements that estimator for any [`Codec`].

use crate::Codec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simdops::{inner_product, l2_sq, norm_sq};
use vecstore::VectorSet;

/// Outcome of a reliability estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityReport {
    /// Triples satisfying `|e·u − b| ≥ |E|` (comparison provably preserved).
    pub satisfied: usize,
    /// Triples where the *actual* compressed comparison agreed with the
    /// exact comparison (a superset of `satisfied`: the bound is
    /// sufficient, not necessary).
    pub agreeing: usize,
    /// Total triples evaluated.
    pub total: usize,
}

impl ReliabilityReport {
    /// Fraction of triples with the guarantee satisfied.
    pub fn guaranteed_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.satisfied as f64 / self.total as f64
        }
    }

    /// Fraction of triples whose comparison actually survived compression.
    pub fn agreement_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.agreeing as f64 / self.total as f64
        }
    }
}

/// Left-hand side `e·u − b` of Lemma 1 for the triple `(u, v, w)`.
///
/// Positive means `δ(u,v) > δ(u,w)`; the hyperplane is `e·u = b` with
/// `e = w − v`, `b = (‖w‖² − ‖v‖²)/2`.
pub fn hyperplane_side(u: &[f32], v: &[f32], w: &[f32]) -> f32 {
    let e: Vec<f32> = w.iter().zip(v.iter()).map(|(&wi, &vi)| wi - vi).collect();
    let b = 0.5 * (norm_sq(w) - norm_sq(v));
    inner_product(&e, u) - b
}

/// The error aggregate `E` of the paper's Equation (1).
pub fn error_aggregate(u: &[f32], v: &[f32], w: &[f32], eu: &[f32], ev: &[f32], ew: &[f32]) -> f32 {
    let ew_minus_ev: Vec<f32> = ew.iter().zip(ev.iter()).map(|(&a, &b)| a - b).collect();
    let w_minus_v: Vec<f32> = w.iter().zip(v.iter()).map(|(&a, &b)| a - b).collect();
    inner_product(&ew_minus_ev, u) + inner_product(&w_minus_v, eu) + inner_product(ev, eu)
        - inner_product(ew, eu)
        + 0.5 * norm_sq(ew)
        - 0.5 * norm_sq(ev)
        + inner_product(v, ev)
        - inner_product(w, ew)
}

/// Estimates comparison reliability of `codec` on `sample`.
///
/// For each of `n_triples` randomly chosen anchors `u`, the two nearest
/// *other* sample vectors become `(v, w)` (ordered so `v` is nearer, like
/// the candidate-set comparisons during construction). Reports both the
/// Theorem-1 guarantee rate and the empirical agreement rate.
///
/// # Panics
/// Panics if the sample has fewer than 3 vectors.
pub fn comparison_reliability<C: Codec>(
    codec: &C,
    sample: &VectorSet,
    n_triples: usize,
    seed: u64,
) -> ReliabilityReport {
    assert!(
        sample.len() >= 3,
        "need at least 3 sample vectors for triples"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut report = ReliabilityReport {
        satisfied: 0,
        agreeing: 0,
        total: 0,
    };

    for _ in 0..n_triples {
        let ui = rng.gen_range(0..sample.len());
        let u = sample.get(ui);

        // Two nearest neighbors of u within the sample (exact scan).
        let (mut best, mut second) = (None::<(usize, f32)>, None::<(usize, f32)>);
        for j in 0..sample.len() {
            if j == ui {
                continue;
            }
            let d = l2_sq(u, sample.get(j));
            match best {
                Some((_, bd)) if d >= bd => match second {
                    Some((_, sd)) if d >= sd => {}
                    _ => second = Some((j, d)),
                },
                _ => {
                    second = best;
                    best = Some((j, d));
                }
            }
        }
        let (vi, _) = best.expect("sample >= 3 guarantees a neighbor");
        let (wi, _) = second.expect("sample >= 3 guarantees two neighbors");
        let v = sample.get(vi);
        let w = sample.get(wi);

        let lhs = hyperplane_side(u, v, w);

        let ur = codec.reconstruct(u);
        let vr = codec.reconstruct(v);
        let wr = codec.reconstruct(w);
        let eu: Vec<f32> = u.iter().zip(ur.iter()).map(|(&a, &b)| a - b).collect();
        let ev: Vec<f32> = v.iter().zip(vr.iter()).map(|(&a, &b)| a - b).collect();
        let ew: Vec<f32> = w.iter().zip(wr.iter()).map(|(&a, &b)| a - b).collect();
        let e_agg = error_aggregate(u, v, w, &eu, &ev, &ew);

        report.total += 1;
        if lhs.abs() >= e_agg.abs() {
            report.satisfied += 1;
        }
        // Empirical agreement on the compressed representatives.
        let compressed_side = hyperplane_side(&ur, &vr, &wr);
        if compressed_side == 0.0 || lhs == 0.0 || (compressed_side > 0.0) == (lhs > 0.0) {
            report.agreeing += 1;
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::ProductQuantizer;
    use crate::sq::{ScalarQuantizer, SqRange};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Lossless codec for sanity checks.
    struct IdentityCodec(usize);
    impl Codec for IdentityCodec {
        fn dim(&self) -> usize {
            self.0
        }
        fn reconstruct(&self, v: &[f32]) -> Vec<f32> {
            v.to_vec()
        }
        fn code_bytes(&self) -> usize {
            self.0 * 4
        }
    }

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorSet::with_capacity(dim, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn lemma1_sign_matches_distance_comparison() {
        let s = random_set(60, 8, 1);
        for i in 0..20 {
            let u = s.get(i);
            let v = s.get(i + 20);
            let w = s.get(i + 40);
            let side = hyperplane_side(u, v, w);
            let dv = l2_sq(u, v);
            let dw = l2_sq(u, w);
            if (dv - dw).abs() > 1e-5 {
                assert_eq!(side > 0.0, dv > dw, "Lemma 1 violated at triple {i}");
            }
        }
    }

    #[test]
    fn identity_codec_is_fully_reliable() {
        let s = random_set(50, 6, 2);
        let r = comparison_reliability(&IdentityCodec(6), &s, 100, 3);
        assert_eq!(r.satisfied, r.total);
        assert_eq!(r.agreeing, r.total);
    }

    #[test]
    fn error_aggregate_zero_for_lossless() {
        let s = random_set(10, 5, 4);
        let zero = vec![0.0f32; 5];
        let e = error_aggregate(s.get(0), s.get(1), s.get(2), &zero, &zero, &zero);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn theorem1_equation6_identity_holds() {
        // e'·u' − b' must equal (e·u − b) − E for arbitrary error vectors.
        let s = random_set(6, 7, 5);
        let u = s.get(0);
        let v = s.get(1);
        let w = s.get(2);
        let eu: Vec<f32> = s.get(3).iter().map(|&x| 0.1 * x).collect();
        let ev: Vec<f32> = s.get(4).iter().map(|&x| 0.1 * x).collect();
        let ew: Vec<f32> = s.get(5).iter().map(|&x| 0.1 * x).collect();
        let ur: Vec<f32> = u.iter().zip(&eu).map(|(&a, &e)| a - e).collect();
        let vr: Vec<f32> = v.iter().zip(&ev).map(|(&a, &e)| a - e).collect();
        let wr: Vec<f32> = w.iter().zip(&ew).map(|(&a, &e)| a - e).collect();

        let lhs_exact = hyperplane_side(u, v, w);
        let lhs_compressed = hyperplane_side(&ur, &vr, &wr);
        let e_agg = error_aggregate(u, v, w, &eu, &ev, &ew);
        assert!(
            (lhs_compressed - (lhs_exact - e_agg)).abs() < 1e-3 * (1.0 + lhs_exact.abs()),
            "Eq. 6 identity broken: {lhs_compressed} vs {}",
            lhs_exact - e_agg
        );
    }

    #[test]
    fn guarantee_implies_agreement_for_sq() {
        let s = random_set(80, 8, 6);
        let sq = ScalarQuantizer::train(&s, 8, SqRange::PerDimension);
        let r = comparison_reliability(&sq, &s, 200, 7);
        // Theorem 1 is a sufficient condition, so agreement ≥ guarantee.
        assert!(r.agreeing >= r.satisfied, "{r:?}");
        assert!(r.total == 200);
    }

    #[test]
    fn finer_quantization_is_more_reliable() {
        let s = random_set(100, 8, 8);
        let coarse = ScalarQuantizer::train(&s, 2, SqRange::PerDimension);
        let fine = ScalarQuantizer::train(&s, 8, SqRange::PerDimension);
        let rc = comparison_reliability(&coarse, &s, 300, 9);
        let rf = comparison_reliability(&fine, &s, 300, 9);
        assert!(
            rf.guaranteed_fraction() > rc.guaranteed_fraction(),
            "fine {rf:?} vs coarse {rc:?}"
        );
    }

    #[test]
    fn pq_reliability_is_measurable() {
        let s = random_set(120, 8, 10);
        let pq = ProductQuantizer::train(&s, 4, 4, 10, 11);
        let r = comparison_reliability(&pq, &s, 150, 12);
        assert_eq!(r.total, 150);
        assert!(r.guaranteed_fraction() > 0.0);
    }
}
