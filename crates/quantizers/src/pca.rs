//! Principal Component Analysis codec (paper Section 3.2.3).
//!
//! PCA rotates vectors into the eigenbasis of the data covariance and keeps
//! the first `d_PCA` coordinates. Because the rotation is orthogonal it
//! preserves distances, so distances between projected vectors approximate
//! true distances with an error governed by the discarded eigenvalue mass —
//! the paper selects `d_PCA` as the smallest dimension reaching a target
//! cumulative variance fraction (0.9 in their experiments).

use crate::Codec;
use linalg::{covariance, symmetric_eigen, symmetric_eigen_topk, Matrix};
use vecstore::VectorSet;

/// A fitted PCA model with a chosen retained dimensionality.
#[derive(Debug, Clone)]
pub struct PcaCodec {
    mean: Vec<f32>,
    /// Eigenbasis columns sorted by descending eigenvalue. May hold fewer
    /// than `d` columns when fitted with the top-k solver.
    basis: Matrix,
    eigenvalues: Vec<f32>,
    /// Total eigenvalue mass (covariance trace) — the denominator of
    /// cumulative-variance fractions even when only `k` pairs were solved.
    total_variance: f64,
    /// Retained dimensionality `d_PCA`.
    keep: usize,
}

impl PcaCodec {
    /// Fits the eigenbasis to (a sample of) `data` and retains `keep`
    /// components.
    ///
    /// Solver choice: when `keep` is a small fraction of the input dimension
    /// the top-k subspace iteration (`O(keep·d²)`) replaces the full Jacobi
    /// sweep (`O(d³)`) — this keeps PCA preprocessing a small slice of
    /// indexing time, as the paper's Eigen-based implementation enjoys.
    ///
    /// # Panics
    /// Panics if `data` is empty or `keep` is zero or exceeds the
    /// dimensionality.
    pub fn fit(data: &VectorSet, keep: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit PCA on an empty dataset");
        let dim = data.dim();
        assert!(keep >= 1 && keep <= dim, "keep must be in 1..=dim");

        let samples = Matrix::from_vec(data.len(), dim, data.as_flat().to_vec());
        let mean = linalg::mean_vector(&samples);
        let cov = covariance(&samples);

        if keep * 3 <= dim {
            let (dec, trace) = symmetric_eigen_topk(&cov, keep, 0xE16E);
            Self {
                mean,
                basis: dec.eigenvectors,
                eigenvalues: dec.eigenvalues,
                total_variance: trace,
                keep,
            }
        } else {
            let dec = symmetric_eigen(&cov);
            let total = dec.eigenvalues.iter().map(|&x| f64::from(x.max(0.0))).sum();
            Self {
                mean,
                basis: dec.eigenvectors,
                eigenvalues: dec.eigenvalues,
                total_variance: total,
                keep,
            }
        }
    }

    /// Fits and then chooses `d_PCA` as the smallest dimensionality whose
    /// cumulative variance fraction reaches `alpha` (the paper's `f(d) ≥ α`
    /// rule, α = 0.9 in its experiments). Solves progressively larger top-k
    /// subspaces, doubling until the target mass is covered.
    pub fn fit_for_variance(data: &VectorSet, alpha: f64) -> Self {
        let dim = data.dim();
        let mut k = 32.min(dim);
        loop {
            let model = Self::fit(data, k);
            let d = model.dims_for_variance(alpha);
            // Trust the answer only if it lies strictly inside the solved
            // subspace (otherwise more components may be needed).
            if d < model.basis.cols() || model.basis.cols() == dim {
                return model.with_dims(d);
            }
            k = (k * 2).min(dim);
        }
    }

    /// Retained dimensionality `d_PCA`.
    pub fn kept_dims(&self) -> usize {
        self.keep
    }

    /// Changes the retained dimensionality without refitting.
    ///
    /// # Panics
    /// Panics if `keep` is zero or exceeds the number of solved components.
    pub fn with_dims(mut self, keep: usize) -> Self {
        assert!(
            keep >= 1 && keep <= self.basis.cols(),
            "keep exceeds solved components"
        );
        self.keep = keep;
        self
    }

    /// Eigenvalues (descending).
    pub fn eigenvalues(&self) -> &[f32] {
        &self.eigenvalues
    }

    /// Smallest `d` with cumulative variance fraction `>= alpha`, measured
    /// against the full variance mass (covariance trace).
    pub fn dims_for_variance(&self, alpha: f64) -> usize {
        if self.total_variance <= 0.0 {
            return 1;
        }
        let mut acc = 0.0;
        for (i, &l) in self.eigenvalues.iter().enumerate() {
            acc += f64::from(l.max(0.0));
            if acc / self.total_variance >= alpha {
                return i + 1;
            }
        }
        self.eigenvalues.len()
    }

    /// Projects `v` to the retained `d_PCA` coordinates (the compact code).
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.mean.len(), "dimensionality mismatch");
        let centered: Vec<f32> = v
            .iter()
            .zip(self.mean.iter())
            .map(|(&x, &m)| x - m)
            .collect();
        // basisᵀ · centered, truncated to the first `keep` components.
        let mut out = self.basis.matvec_t(&centered);
        out.truncate(self.keep);
        out
    }

    /// Squared distance between two projections (the HNSW-PCA distance).
    pub fn dist_sq_projected(&self, a: &[f32], b: &[f32]) -> f32 {
        simdops::l2_sq(a, b)
    }

    /// Lifts a projection back to the original space: `mean + A_{1:k} · p`.
    pub fn lift(&self, projected: &[f32]) -> Vec<f32> {
        assert_eq!(projected.len(), self.keep, "projection length mismatch");
        let d = self.mean.len();
        let mut out = self.mean.clone();
        for (j, &pj) in projected.iter().enumerate() {
            if pj == 0.0 {
                continue;
            }
            for (i, o) in out.iter_mut().enumerate().take(d) {
                *o += pj * self.basis[(i, j)];
            }
        }
        out
    }
}

impl Codec for PcaCodec {
    fn dim(&self) -> usize {
        self.mean.len()
    }

    fn reconstruct(&self, v: &[f32]) -> Vec<f32> {
        self.lift(&self.project(v))
    }

    fn code_bytes(&self) -> usize {
        self.keep * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Data living (noisily) on a 2-D plane inside 6-D space.
    fn planar_data(n: usize, seed: u64) -> VectorSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorSet::with_capacity(6, n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-3.0..3.0);
            let b: f32 = rng.gen_range(-2.0..2.0);
            let mut eps = || rng.gen_range(-0.01..0.01);
            // Plane spanned by (1,1,0,0,1,0)/√3 and (0,0,1,1,0,1)/√3 offset by 5.
            let v = [
                5.0 + a + eps(),
                5.0 + a + eps(),
                5.0 + b + eps(),
                5.0 + b + eps(),
                5.0 + a + eps(),
                5.0 + b + eps(),
            ];
            s.push(&v);
        }
        s
    }

    #[test]
    fn two_components_capture_planar_data() {
        let data = planar_data(500, 3);
        let pca = PcaCodec::fit(&data, 6);
        assert!(
            pca.dims_for_variance(0.99) <= 2,
            "planar data needs <= 2 dims"
        );
    }

    #[test]
    fn reconstruction_error_small_on_plane() {
        let data = planar_data(400, 5);
        let pca = PcaCodec::fit(&data, 2);
        let mut worst = 0.0f32;
        for v in data.iter() {
            worst = worst.max(simdops::l2_sq(v, &pca.reconstruct(v)));
        }
        assert!(worst < 0.01, "worst reconstruction error {worst}");
    }

    #[test]
    fn projection_distance_approximates_true_distance() {
        let data = planar_data(300, 7);
        let pca = PcaCodec::fit(&data, 2);
        let a = data.get(0);
        let b = data.get(1);
        let true_d = simdops::l2_sq(a, b);
        let proj_d = pca.dist_sq_projected(&pca.project(a), &pca.project(b));
        assert!(
            (true_d - proj_d).abs() < 0.05 * (1.0 + true_d),
            "{true_d} vs {proj_d}"
        );
    }

    #[test]
    fn full_rank_projection_is_isometric() {
        let data = planar_data(200, 9);
        let pca = PcaCodec::fit(&data, 6);
        let a = data.get(2);
        let b = data.get(3);
        let true_d = simdops::l2_sq(a, b);
        let proj_d = pca.dist_sq_projected(&pca.project(a), &pca.project(b));
        assert!((true_d - proj_d).abs() < 1e-3 * (1.0 + true_d));
    }

    #[test]
    fn variance_dims_monotone_in_alpha() {
        let data = planar_data(300, 11);
        let pca = PcaCodec::fit(&data, 6);
        assert!(pca.dims_for_variance(0.5) <= pca.dims_for_variance(0.9));
        assert!(pca.dims_for_variance(0.9) <= pca.dims_for_variance(0.999));
    }

    #[test]
    fn fit_for_variance_sets_keep() {
        let data = planar_data(300, 13);
        let pca = PcaCodec::fit_for_variance(&data, 0.99);
        assert_eq!(pca.kept_dims(), pca.dims_for_variance(0.99));
        assert!(pca.kept_dims() <= 2);
    }

    #[test]
    fn code_bytes_reflects_kept_dims() {
        let data = planar_data(100, 15);
        let pca = PcaCodec::fit(&data, 3);
        assert_eq!(pca.code_bytes(), 12);
    }
}
