//! Baseline compact-coding methods (paper Section 3.2).
//!
//! Before designing Flash, the paper integrates three mainstream compression
//! methods into HNSW construction and studies why each falls short:
//!
//! * [`pq`] — Product Quantization: subspace codebooks, asymmetric (ADC) and
//!   symmetric (SDC) distance computation;
//! * [`sq`] — Scalar Quantization: per-dimension affine mapping to integers;
//! * [`pca`] — Principal Component Analysis: orthogonal projection keeping
//!   the high-variance components;
//! * [`kmeans`] — the shared Lloyd/k-means++ trainer;
//! * [`reliability`] — the Theorem-1 *comparison-reliability estimator*: the
//!   fraction of sampled `(u, v, w)` triples whose distance comparison
//!   survives compression (`|e·u − b| ≥ |E|`), the paper's principled way of
//!   tuning compression error.
//!
//! All quantizers implement the [`Codec`] trait so the estimator and the
//! graph layer treat them uniformly.

pub mod kmeans;
pub mod opq;
pub mod pca;
pub mod pq;
pub mod reliability;
pub mod sq;

pub use kmeans::{kmeans, KMeansResult};
pub use opq::OptimizedProductQuantizer;
pub use pca::PcaCodec;
pub use pq::ProductQuantizer;
pub use reliability::{comparison_reliability, ReliabilityReport};
pub use sq::ScalarQuantizer;

/// A lossy vector codec: anything that can produce the *derived vector*
/// `u' = reconstruct(u)` of the paper's Theorem 1 (the decoded approximation
/// living in the original space, so `E_u = u − u'`).
pub trait Codec {
    /// Dimensionality of vectors this codec accepts.
    fn dim(&self) -> usize;

    /// Encodes and decodes `v`, returning the lossy approximation in the
    /// original `dim()`-dimensional space.
    fn reconstruct(&self, v: &[f32]) -> Vec<f32>;

    /// Compressed-code size in bytes for one vector (index-size accounting).
    fn code_bytes(&self) -> usize;
}
