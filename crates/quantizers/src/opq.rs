//! OPQ — Optimized Product Quantization (Ge et al., CVPR 2013).
//!
//! The paper's "lessons learned" (Section 3.2.4) note that optimized
//! variants of PQ/SQ/PCA *"may be integrated into HNSW to further speed up
//! index construction"* provided they avoid excessive processing overhead.
//! OPQ is the canonical such variant: it learns an **orthogonal rotation**
//! `Q` jointly with the PQ codebooks so that the subspace decomposition
//! lands on a basis where quantization error is minimized (a data-adaptive
//! generalization of Flash's fixed PCA rotation).
//!
//! We implement the non-parametric alternation (OPQ-NP):
//!
//! 1. fix `Q`, train PQ codebooks on the rotated data;
//! 2. fix the codes, reconstruct `Y`, and solve the orthogonal Procrustes
//!    problem `argmin_Q Σᵢ ‖Q xᵢ − yᵢ‖²` — the maximizer of `tr(Q M)` with
//!    `M = Σᵢ xᵢ yᵢᵀ` is `Q = V Uᵀ` from the SVD `M = U Σ Vᵀ`.
//!
//! The SVD is computed from the workspace's Jacobi eigensolver
//! (`MᵀM = V Σ² Vᵀ`, then `uⱼ = M vⱼ / σⱼ`), so no new numerical
//! dependency is introduced. Rank-deficient directions (σ ≈ 0) are
//! completed by Gram–Schmidt against the canonical basis — for those
//! directions any orthogonal completion is optimal.

use crate::pq::ProductQuantizer;
use crate::Codec;
use linalg::{symmetric_eigen, Matrix};
use vecstore::VectorSet;

/// Product quantizer with a learned orthogonal pre-rotation.
#[derive(Clone)]
pub struct OptimizedProductQuantizer {
    /// The learned D×D orthogonal rotation; vectors are encoded as
    /// `pq.encode(Q · v)`.
    rotation: Matrix,
    pq: ProductQuantizer,
    dim: usize,
}

/// Singular values below this fraction of the largest are treated as zero
/// during the Procrustes completion.
const RANK_EPS: f64 = 1e-9;

impl OptimizedProductQuantizer {
    /// Trains OPQ with `opq_iters` alternations of codebook training and
    /// Procrustes rotation updates. `m` and `bits` are the PQ shape
    /// (`M_PQ`, `L_PQ`); each alternation retrains the codebooks with
    /// `pq_iters` Lloyd iterations.
    ///
    /// # Panics
    /// Panics if `data` is empty or its dimension is not divisible by `m`.
    pub fn train(
        data: &VectorSet,
        m: usize,
        bits: u8,
        opq_iters: usize,
        pq_iters: usize,
        seed: u64,
    ) -> Self {
        assert!(!data.is_empty(), "OPQ needs training vectors");
        let dim = data.dim();
        assert_eq!(dim % m, 0, "dimension {dim} must be divisible by m = {m}");

        let mut rotation = Matrix::identity(dim);
        let mut pq;
        for iter in 0..opq_iters {
            // Rotate the data with the current Q.
            let mut rotated = VectorSet::with_capacity(dim, data.len());
            for v in data.iter() {
                rotated.push(&rotation.matvec(v));
            }
            // (1) codebooks on rotated data.
            pq = ProductQuantizer::train(&rotated, m, bits, pq_iters, seed ^ iter as u64);
            // (2) Procrustes update: M = Σ xᵢ yᵢᵀ with yᵢ the reconstruction
            // of the *rotated* vector.
            let mut mmat = Matrix::zeros(dim, dim);
            for (x, xr) in data.iter().zip(rotated.iter()) {
                let y = pq.decode(&pq.encode(xr));
                for (i, &xi) in x.iter().enumerate() {
                    let row = mmat.row_mut(i);
                    for (j, &yj) in y.iter().enumerate() {
                        row[j] += xi * yj;
                    }
                }
            }
            rotation = procrustes_rotation(&mmat);
        }
        // Final codebooks under the final rotation.
        let mut rotated = VectorSet::with_capacity(dim, data.len());
        for v in data.iter() {
            rotated.push(&rotation.matvec(v));
        }
        pq = ProductQuantizer::train(&rotated, m, bits, pq_iters, seed ^ 0xD1CE);
        Self { rotation, pq, dim }
    }

    /// The learned rotation matrix `Q`.
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// The underlying product quantizer (operating in the rotated space).
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// Number of subspaces.
    pub fn subspaces(&self) -> usize {
        self.pq.subspaces()
    }

    /// Applies the learned rotation to `v`.
    pub fn rotate(&self, v: &[f32]) -> Vec<f32> {
        self.rotation.matvec(v)
    }

    /// Encodes `v` (rotation + PQ encoding).
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        self.pq.encode(&self.rotate(v))
    }

    /// ADC lookup table for a query (rotated once, then per-subspace
    /// centroid distances — same contract as [`ProductQuantizer::adc_table`]).
    pub fn adc_table(&self, query: &[f32]) -> Vec<f32> {
        self.pq.adc_table(&self.rotate(query))
    }

    /// Asymmetric distance from a prepared table to a code.
    pub fn adc_distance(&self, table: &[f32], codes: &[u8]) -> f32 {
        self.pq.adc_distance(table, codes)
    }

    /// Symmetric centroid-to-centroid tables.
    pub fn sdc_tables(&self) -> Vec<f32> {
        self.pq.sdc_tables()
    }

    /// Symmetric distance between two codes.
    pub fn sdc_distance(&self, tables: &[f32], a: &[u8], b: &[u8]) -> f32 {
        self.pq.sdc_distance(tables, a, b)
    }

    /// Mean squared reconstruction error over `data` (the OPQ training
    /// objective; lower is better).
    pub fn quantization_error(&self, data: &VectorSet) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        for v in data.iter() {
            let rec = self.reconstruct(v);
            total += v
                .iter()
                .zip(rec.iter())
                .map(|(&a, &b)| f64::from(a - b) * f64::from(a - b))
                .sum::<f64>();
        }
        total / data.len() as f64
    }
}

impl Codec for OptimizedProductQuantizer {
    fn dim(&self) -> usize {
        self.dim
    }

    fn reconstruct(&self, v: &[f32]) -> Vec<f32> {
        let rotated = self.rotate(v);
        let decoded = self.pq.decode(&self.pq.encode(&rotated));
        // Back-rotate: Q is orthogonal, so Q⁻¹ = Qᵀ.
        self.rotation.matvec_t(&decoded)
    }

    fn code_bytes(&self) -> usize {
        self.pq.code_bytes()
    }
}

/// Solves `argmax_Q tr(Q M)` over orthogonal `Q` via `Q = V Uᵀ` with
/// `M = U Σ Vᵀ`, computing the SVD from the Jacobi eigendecomposition of
/// `MᵀM`.
fn procrustes_rotation(m: &Matrix) -> Matrix {
    let d = m.rows();
    let mtm = m.transpose().matmul(m);
    let eig = symmetric_eigen(&mtm);

    let sigma_max = eig
        .eigenvalues
        .first()
        .map(|&l| f64::from(l.max(0.0)).sqrt())
        .unwrap_or(0.0)
        .max(f64::MIN_POSITIVE);

    // U columns: uⱼ = M vⱼ / σⱼ, accepted through modified Gram–Schmidt so
    // near-degenerate directions (whose raw image is numerically noise)
    // never break orthonormality — they fall through to the completion.
    let mut u = Matrix::zeros(d, d);
    let mut filled = vec![false; d];
    let mut accepted: Vec<Vec<f64>> = Vec::with_capacity(d);
    for j in 0..d {
        let vj = eig.eigenvector(j);
        let mut col: Vec<f64> = m.matvec(&vj).iter().map(|&x| f64::from(x)).collect();
        for h in &accepted {
            let dot: f64 = col.iter().zip(h.iter()).map(|(a, b)| a * b).sum();
            for (c, &hv) in col.iter_mut().zip(h.iter()) {
                *c -= dot * hv;
            }
        }
        let norm: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm / sigma_max < RANK_EPS {
            continue;
        }
        for c in col.iter_mut() {
            *c /= norm;
        }
        for i in 0..d {
            u[(i, j)] = col[i] as f32;
        }
        filled[j] = true;
        accepted.push(col);
    }
    complete_orthonormal(&mut u, &filled);

    // Q = V Uᵀ.
    eig.eigenvectors.matmul(&u.transpose())
}

/// Fills unfilled columns of `u` with vectors orthonormal to the filled
/// ones (Gram–Schmidt against canonical basis candidates).
fn complete_orthonormal(u: &mut Matrix, filled: &[bool]) {
    let d = u.rows();
    let mut have: Vec<Vec<f64>> = (0..d)
        .filter(|&j| filled[j])
        .map(|j| (0..d).map(|i| f64::from(u[(i, j)])).collect())
        .collect();
    let mut next_canonical = 0usize;
    for j in 0..d {
        if filled[j] {
            continue;
        }
        // Try canonical basis vectors until one survives orthogonalization.
        let col = loop {
            assert!(next_canonical < 2 * d, "orthonormal completion failed");
            let k = next_canonical % d;
            next_canonical += 1;
            let mut cand = vec![0.0f64; d];
            cand[k] = 1.0;
            for h in &have {
                let dot: f64 = cand.iter().zip(h.iter()).map(|(a, b)| a * b).sum();
                for (c, &hv) in cand.iter_mut().zip(h.iter()) {
                    *c -= dot * hv;
                }
            }
            let norm: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for c in cand.iter_mut() {
                    *c /= norm;
                }
                break cand;
            }
        };
        for i in 0..d {
            u[(i, j)] = col[i] as f32;
        }
        have.push(col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Correlated data: PQ's axis-aligned subspaces are a poor fit, so the
    /// learned rotation has something to gain.
    fn correlated_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorSet::with_capacity(dim, n);
        for _ in 0..n {
            let shared: f32 = rng.gen_range(-2.0..2.0);
            let v: Vec<f32> = (0..dim)
                .map(|i| shared * (1.0 + i as f32 * 0.1) + rng.gen_range(-0.2..0.2))
                .collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn rotation_is_orthogonal() {
        let data = correlated_set(300, 8, 1);
        let opq = OptimizedProductQuantizer::train(&data, 4, 4, 4, 8, 2);
        let q = opq.rotation();
        let qtq = q.transpose().matmul(q);
        let eye = Matrix::identity(8);
        assert!(
            qtq.max_abs_diff(&eye) < 1e-3,
            "QᵀQ deviates from I by {}",
            qtq.max_abs_diff(&eye)
        );
    }

    #[test]
    fn rotation_preserves_distances() {
        let data = correlated_set(200, 8, 3);
        let opq = OptimizedProductQuantizer::train(&data, 4, 4, 3, 6, 4);
        let a = data.get(0);
        let b = data.get(1);
        let exact = simdops::l2_sq(a, b);
        let rotated = simdops::l2_sq(&opq.rotate(a), &opq.rotate(b));
        assert!(
            (exact - rotated).abs() < 1e-3 * (1.0 + exact),
            "rotation changed distance: {exact} vs {rotated}"
        );
    }

    #[test]
    fn opq_error_not_worse_than_pq() {
        let data = correlated_set(400, 8, 5);
        let opq = OptimizedProductQuantizer::train(&data, 4, 4, 6, 10, 6);
        let pq = ProductQuantizer::train(&data, 4, 4, 10, 6);
        let pq_err: f64 = data
            .iter()
            .map(|v| {
                let rec = pq.decode(&pq.encode(v));
                v.iter()
                    .zip(rec.iter())
                    .map(|(&a, &b)| f64::from(a - b) * f64::from(a - b))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / data.len() as f64;
        let opq_err = opq.quantization_error(&data);
        // The rotation is optimized for exactly this objective; allow a
        // small tolerance for k-means seeding noise.
        assert!(
            opq_err <= pq_err * 1.05,
            "OPQ error {opq_err} worse than PQ error {pq_err}"
        );
    }

    #[test]
    fn adc_approximates_true_distance() {
        let data = correlated_set(300, 8, 7);
        let opq = OptimizedProductQuantizer::train(&data, 4, 6, 3, 8, 8);
        let table = opq.adc_table(data.get(0));
        let approx = opq.adc_distance(&table, &opq.encode(data.get(1)));
        let exact = simdops::l2_sq(data.get(0), data.get(1));
        assert!(
            (approx - exact).abs() < 0.5 * (1.0 + exact),
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn sdc_distance_symmetric() {
        let data = correlated_set(200, 8, 9);
        let opq = OptimizedProductQuantizer::train(&data, 4, 4, 2, 6, 10);
        let tables = opq.sdc_tables();
        let ca = opq.encode(data.get(2));
        let cb = opq.encode(data.get(17));
        assert_eq!(
            opq.sdc_distance(&tables, &ca, &cb),
            opq.sdc_distance(&tables, &cb, &ca)
        );
    }

    #[test]
    fn reconstruct_round_trips_dimension() {
        let data = correlated_set(150, 8, 11);
        let opq = OptimizedProductQuantizer::train(&data, 2, 4, 2, 6, 12);
        let rec = opq.reconstruct(data.get(0));
        assert_eq!(rec.len(), 8);
        assert_eq!(opq.dim(), 8);
        // Two 4-bit codewords pack into one byte.
        assert_eq!(opq.code_bytes(), 1);
    }

    #[test]
    fn procrustes_recovers_known_rotation() {
        // If Y = Q₀ X exactly, Procrustes must recover Q₀ (up to fp error):
        // M = Σ x (Q₀x)ᵀ … argmax tr(QM) at Q = Q₀.
        let d = 4;
        // A simple orthogonal matrix: rotation in the (0,1) plane + swap of (2,3).
        let theta = 0.7f32;
        let mut q0 = Matrix::identity(d);
        q0[(0, 0)] = theta.cos();
        q0[(0, 1)] = -theta.sin();
        q0[(1, 0)] = theta.sin();
        q0[(1, 1)] = theta.cos();
        q0[(2, 2)] = 0.0;
        q0[(2, 3)] = 1.0;
        q0[(3, 2)] = 1.0;
        q0[(3, 3)] = 0.0;

        let mut rng = SmallRng::seed_from_u64(13);
        let mut m = Matrix::zeros(d, d);
        for _ in 0..200 {
            let x: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let y = q0.matvec(&x);
            for i in 0..d {
                for j in 0..d {
                    m[(i, j)] += x[i] * y[j];
                }
            }
        }
        let q = procrustes_rotation(&m);
        // Q should satisfy Q x ≈ Q₀ x, i.e. Qᵀ = Q₀ ⇒ compare Qᵀ to Q₀.
        // (procrustes maximizes tr(QM) with M = Σ x yᵀ = Σ x xᵀ Q₀ᵀ,
        // giving Q = Q₀ᵀ… verify via action on vectors instead of layout.)
        let x: Vec<f32> = vec![0.3, -0.8, 0.5, 0.1];
        let want = q0.matvec(&x);
        let got_fwd = q.matvec(&x);
        let got_bwd = q.matvec_t(&x);
        let err_fwd: f32 = want
            .iter()
            .zip(got_fwd.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let err_bwd: f32 = want
            .iter()
            .zip(got_bwd.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            err_fwd.min(err_bwd) < 1e-3,
            "neither Q ({err_fwd}) nor Qᵀ ({err_bwd}) matches Q₀'s action"
        );
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_dimension_rejected() {
        let data = correlated_set(50, 6, 15);
        let _ = OptimizedProductQuantizer::train(&data, 4, 4, 1, 2, 1);
    }
}
