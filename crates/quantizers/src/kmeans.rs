//! Lloyd's k-means with k-means++ seeding.
//!
//! Shared by PQ (one codebook per subspace) and Flash (16-centroid
//! codebooks). Training sets here are small samples (the paper samples a
//! subset "following PQ and its variants"), so a straightforward
//! rayon-parallel Lloyd iteration is plenty.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use simdops::l2_sq;

/// Output of [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `k * dim` row-major centroid matrix.
    pub centroids: Vec<f32>,
    /// Assignment of each training point to its centroid.
    pub assignments: Vec<u32>,
    /// Final mean squared distance of points to their centroid.
    pub inertia: f64,
    /// Iterations actually run (may stop early on convergence).
    pub iterations: usize,
}

impl KMeansResult {
    /// Borrow centroid `c`.
    pub fn centroid(&self, c: usize, dim: usize) -> &[f32] {
        &self.centroids[c * dim..(c + 1) * dim]
    }
}

/// Runs k-means over `points` (row-major, `n * dim`).
///
/// * k-means++ seeding for spread-out initial centroids;
/// * Lloyd iterations until assignments stabilize or `max_iters` is hit;
/// * empty clusters are re-seeded from the point currently farthest from its
///   centroid, so the returned codebook always has `k` distinct roles.
///
/// # Panics
/// Panics if `points` is not a multiple of `dim`, `k == 0`, or there are no
/// points.
pub fn kmeans(points: &[f32], dim: usize, k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    assert!(dim > 0 && k > 0, "dim and k must be positive");
    assert!(
        points.len().is_multiple_of(dim),
        "points not a multiple of dim"
    );
    let n = points.len() / dim;
    assert!(n > 0, "k-means needs at least one point");
    let point = |i: usize| &points[i * dim..(i + 1) * dim];

    let mut rng = SmallRng::seed_from_u64(seed);

    // --- k-means++ seeding -------------------------------------------------
    let mut centroids = vec![0.0f32; k * dim];
    let first = rng.gen_range(0..n);
    centroids[..dim].copy_from_slice(point(first));
    let mut min_d2: Vec<f32> = (0..n).map(|i| l2_sq(point(i), &centroids[..dim])).collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().map(|&d| f64::from(d)).sum();
        let chosen = if total <= f64::EPSILON {
            rng.gen_range(0..n) // all points coincide with some centroid
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d) in min_d2.iter().enumerate() {
                target -= f64::from(d);
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids[c * dim..(c + 1) * dim].copy_from_slice(point(chosen));
        // Update nearest-centroid distances.
        let new_c = centroids[c * dim..(c + 1) * dim].to_vec();
        min_d2
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, d)| *d = d.min(l2_sq(point(i), &new_c)));
    }

    // --- Lloyd iterations --------------------------------------------------
    let mut assignments = vec![u32::MAX; n];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assignment step.
        let new_assignments: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|i| {
                let p = point(i);
                let mut best = 0u32;
                let mut best_d = f32::INFINITY;
                for c in 0..k {
                    let d = l2_sq(p, &centroids[c * dim..(c + 1) * dim]);
                    if d < best_d {
                        best_d = d;
                        best = c as u32;
                    }
                }
                best
            })
            .collect();
        let changed = new_assignments != assignments;
        assignments = new_assignments;

        // Update step (f64 accumulation).
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(point(i).iter()) {
                *s += f64::from(x);
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster from the worst-served point.
                let worst = (0..n)
                    .into_par_iter()
                    .map(|i| {
                        let a = assignments[i] as usize;
                        (i, l2_sq(point(i), &centroids[a * dim..(a + 1) * dim]))
                    })
                    .reduce(
                        || (0, f32::NEG_INFINITY),
                        |x, y| if x.1 >= y.1 { x } else { y },
                    )
                    .0;
                centroids[c * dim..(c + 1) * dim].copy_from_slice(point(worst));
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(sums[c * dim..(c + 1) * dim].iter())
                {
                    *dst = (s * inv) as f32;
                }
            }
        }

        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = (0..n)
        .into_par_iter()
        .map(|i| {
            let a = assignments[i] as usize;
            f64::from(l2_sq(point(i), &centroids[a * dim..(a + 1) * dim]))
        })
        .sum::<f64>()
        / n as f64;

    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs in 2-D.
    fn blobs() -> Vec<f32> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f32 * 0.01;
            pts.extend_from_slice(&[0.0 + j, 0.0 - j]);
            pts.extend_from_slice(&[10.0 + j, 10.0 - j]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = blobs();
        let r = kmeans(&pts, 2, 2, 25, 42);
        let c0 = r.centroid(0, 2);
        let c1 = r.centroid(1, 2);
        let near_origin = |c: &[f32]| c[0].abs() < 1.0 && c[1].abs() < 1.0;
        let near_ten = |c: &[f32]| (c[0] - 10.0).abs() < 1.0 && (c[1] - 10.0).abs() < 1.0;
        assert!(
            (near_origin(c0) && near_ten(c1)) || (near_origin(c1) && near_ten(c0)),
            "centroids: {c0:?} {c1:?}"
        );
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = blobs();
        let r1 = kmeans(&pts, 2, 1, 25, 7);
        let r2 = kmeans(&pts, 2, 2, 25, 7);
        assert!(r2.inertia < r1.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let r = kmeans(&pts, 2, 3, 25, 1);
        assert!(r.inertia < 1e-9, "inertia {}", r.inertia);
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 2, 4, 10, 5);
        let b = kmeans(&pts, 2, 4, 10, 5);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn more_clusters_than_distinct_points_survives() {
        // 3 identical points, k = 2: must not panic or NaN.
        let pts = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let r = kmeans(&pts, 2, 2, 10, 3);
        assert!(r.centroids.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn assignments_point_to_nearest_centroid() {
        let pts = blobs();
        let r = kmeans(&pts, 2, 2, 25, 9);
        for i in 0..pts.len() / 2 {
            let p = &pts[i * 2..i * 2 + 2];
            let assigned = r.assignments[i] as usize;
            let da = l2_sq(p, r.centroid(assigned, 2));
            for c in 0..2 {
                assert!(da <= l2_sq(p, r.centroid(c, 2)) + 1e-5);
            }
        }
    }
}
