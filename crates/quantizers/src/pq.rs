//! Product Quantization (paper Section 3.2.1).
//!
//! PQ splits a `D`-dimensional vector into `M_PQ` subvectors, trains a
//! k-means codebook of `K = 2^{L_PQ}` centroids per subspace, and encodes
//! each subvector as its nearest centroid's id. Distances are computed
//! either *asymmetrically* (ADC: exact query subvector vs. centroid, via a
//! per-query distance table) or *symmetrically* (SDC: centroid vs. centroid,
//! via a precomputed table) — HNSW-PQ uses ADC in the Candidate Acquisition
//! stage and SDC in Neighbor Selection, exactly as the paper describes.

use crate::kmeans::kmeans;
use crate::Codec;
use vecstore::VectorSet;

/// Per-subspace slice of the original dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SubspaceSpan {
    start: usize,
    len: usize,
}

/// A trained product quantizer.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    k: usize,
    bits: u8,
    spans: Vec<SubspaceSpan>,
    /// Concatenated codebooks; subspace `s` holds `k * spans[s].len` floats
    /// starting at `codebook_offsets[s]`.
    codebooks: Vec<f32>,
    codebook_offsets: Vec<usize>,
}

impl ProductQuantizer {
    /// Trains codebooks on (a sample of) `data`.
    ///
    /// * `m` — number of subspaces (`M_PQ`);
    /// * `bits` — codeword length per subspace (`L_PQ`), `1..=8`;
    /// * `train_iters` — Lloyd iterations per subspace.
    ///
    /// When `dim % m != 0` the first `dim % m` subspaces get one extra
    /// dimension.
    ///
    /// # Panics
    /// Panics if `m == 0`, `m > dim`, `bits` outside `1..=8`, or `data` is
    /// empty.
    pub fn train(data: &VectorSet, m: usize, bits: u8, train_iters: usize, seed: u64) -> Self {
        let dim = data.dim();
        assert!(m > 0 && m <= dim, "m must be in 1..=dim");
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let k = 1usize << bits;

        // Partition dimensions.
        let base = dim / m;
        let extra = dim % m;
        let mut spans = Vec::with_capacity(m);
        let mut start = 0;
        for s in 0..m {
            let len = base + usize::from(s < extra);
            spans.push(SubspaceSpan { start, len });
            start += len;
        }

        // Train one codebook per subspace.
        let mut codebooks = Vec::new();
        let mut codebook_offsets = Vec::with_capacity(m);
        for (s, span) in spans.iter().enumerate() {
            // Gather the subvectors contiguously for k-means.
            let mut sub = Vec::with_capacity(data.len() * span.len);
            for v in data.iter() {
                sub.extend_from_slice(&v[span.start..span.start + span.len]);
            }
            let result = kmeans(&sub, span.len, k, train_iters, seed.wrapping_add(s as u64));
            codebook_offsets.push(codebooks.len());
            codebooks.extend_from_slice(&result.centroids);
        }

        Self {
            dim,
            m,
            k,
            bits,
            spans,
            codebooks,
            codebook_offsets,
        }
    }

    /// Number of subspaces `M_PQ`.
    pub fn subspaces(&self) -> usize {
        self.m
    }

    /// Centroids per subspace `K = 2^{L_PQ}`.
    pub fn centroids_per_subspace(&self) -> usize {
        self.k
    }

    /// Codeword bits `L_PQ`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    #[inline]
    fn centroid(&self, s: usize, c: usize) -> &[f32] {
        let len = self.spans[s].len;
        let off = self.codebook_offsets[s] + c * len;
        &self.codebooks[off..off + len]
    }

    /// Encodes `v` into one centroid id per subspace.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim, "dimensionality mismatch");
        (0..self.m)
            .map(|s| {
                let span = self.spans[s];
                let sub = &v[span.start..span.start + span.len];
                let mut best = 0u8;
                let mut best_d = f32::INFINITY;
                for c in 0..self.k {
                    let d = simdops::l2_sq(sub, self.centroid(s, c));
                    if d < best_d {
                        best_d = d;
                        best = c as u8;
                    }
                }
                best
            })
            .collect()
    }

    /// Decodes codes back to the centroid concatenation (the paper's
    /// "derived vector").
    pub fn decode(&self, codes: &[u8]) -> Vec<f32> {
        assert_eq!(codes.len(), self.m, "one code per subspace expected");
        let mut out = vec![0.0f32; self.dim];
        for (s, &c) in codes.iter().enumerate() {
            let span = self.spans[s];
            out[span.start..span.start + span.len]
                .copy_from_slice(self.centroid(s, usize::from(c)));
        }
        out
    }

    /// Builds the per-query asymmetric distance table: entry `[s * k + c]`
    /// is the squared distance from `query`'s subvector `s` to centroid `c`.
    pub fn adc_table(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.dim, "dimensionality mismatch");
        let mut table = vec![0.0f32; self.m * self.k];
        for s in 0..self.m {
            let span = self.spans[s];
            let sub = &query[span.start..span.start + span.len];
            for c in 0..self.k {
                table[s * self.k + c] = simdops::l2_sq(sub, self.centroid(s, c));
            }
        }
        table
    }

    /// ADC distance: scans the table with the database vector's codes.
    #[inline]
    pub fn adc_distance(&self, table: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(table.len(), self.m * self.k);
        debug_assert_eq!(codes.len(), self.m);
        let mut acc = 0.0f32;
        for (s, &c) in codes.iter().enumerate() {
            acc += table[s * self.k + usize::from(c)];
        }
        acc
    }

    /// Precomputes the symmetric (centroid-to-centroid) distance tables:
    /// entry `[s][a][b]` at `s*k*k + a*k + b` is the squared distance
    /// between centroids `a` and `b` of subspace `s`.
    pub fn sdc_tables(&self) -> Vec<f32> {
        let mut tables = vec![0.0f32; self.m * self.k * self.k];
        for s in 0..self.m {
            for a in 0..self.k {
                for b in a..self.k {
                    let d = simdops::l2_sq(self.centroid(s, a), self.centroid(s, b));
                    tables[s * self.k * self.k + a * self.k + b] = d;
                    tables[s * self.k * self.k + b * self.k + a] = d;
                }
            }
        }
        tables
    }

    /// SDC distance between two code sequences, given [`Self::sdc_tables`].
    #[inline]
    pub fn sdc_distance(&self, tables: &[f32], a: &[u8], b: &[u8]) -> f32 {
        debug_assert_eq!(tables.len(), self.m * self.k * self.k);
        let kk = self.k * self.k;
        let mut acc = 0.0f32;
        for s in 0..self.m {
            acc += tables[s * kk + usize::from(a[s]) * self.k + usize::from(b[s])];
        }
        acc
    }
}

impl Codec for ProductQuantizer {
    fn dim(&self) -> usize {
        self.dim
    }

    fn reconstruct(&self, v: &[f32]) -> Vec<f32> {
        self.decode(&self.encode(v))
    }

    fn code_bytes(&self) -> usize {
        // Packed size: M_PQ codewords of L_PQ bits each.
        (self.m * usize::from(self.bits)).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn toy_data(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorSet::with_capacity(dim, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn encode_decode_reduces_error_with_more_bits() {
        let data = toy_data(300, 8, 1);
        let pq2 = ProductQuantizer::train(&data, 4, 2, 15, 7);
        let pq6 = ProductQuantizer::train(&data, 4, 6, 15, 7);
        let mut err2 = 0.0;
        let mut err6 = 0.0;
        for v in data.iter() {
            err2 += simdops::l2_sq(v, &pq2.reconstruct(v));
            err6 += simdops::l2_sq(v, &pq6.reconstruct(v));
        }
        assert!(err6 < err2, "6-bit error {err6} should beat 2-bit {err2}");
    }

    #[test]
    fn adc_table_matches_direct_computation() {
        let data = toy_data(200, 6, 2);
        let pq = ProductQuantizer::train(&data, 3, 4, 15, 3);
        let q = data.get(0);
        let table = pq.adc_table(q);
        let codes = pq.encode(data.get(1));
        let via_table = pq.adc_distance(&table, &codes);
        let direct = simdops::l2_sq(q, &pq.decode(&codes));
        assert!((via_table - direct).abs() < 1e-4, "{via_table} vs {direct}");
    }

    #[test]
    fn sdc_matches_decoded_distance() {
        let data = toy_data(200, 6, 4);
        let pq = ProductQuantizer::train(&data, 3, 4, 15, 5);
        let tables = pq.sdc_tables();
        let a = pq.encode(data.get(2));
        let b = pq.encode(data.get(3));
        let via_table = pq.sdc_distance(&tables, &a, &b);
        let direct = simdops::l2_sq(&pq.decode(&a), &pq.decode(&b));
        assert!((via_table - direct).abs() < 1e-4);
    }

    #[test]
    fn sdc_distance_to_self_is_zero() {
        let data = toy_data(100, 4, 8);
        let pq = ProductQuantizer::train(&data, 2, 3, 10, 9);
        let tables = pq.sdc_tables();
        let codes = pq.encode(data.get(0));
        assert_eq!(pq.sdc_distance(&tables, &codes, &codes), 0.0);
    }

    #[test]
    fn uneven_subspace_partition() {
        // dim = 7, m = 3 → spans of 3, 2, 2.
        let data = toy_data(100, 7, 11);
        let pq = ProductQuantizer::train(&data, 3, 4, 10, 13);
        let codes = pq.encode(data.get(0));
        assert_eq!(codes.len(), 3);
        assert_eq!(pq.decode(&codes).len(), 7);
    }

    #[test]
    fn code_bytes_packs_bits() {
        let data = toy_data(64, 8, 12);
        let pq = ProductQuantizer::train(&data, 8, 4, 5, 1);
        assert_eq!(pq.code_bytes(), 4); // 8 * 4 bits = 32 bits
        let pq8 = ProductQuantizer::train(&data, 8, 8, 5, 1);
        assert_eq!(pq8.code_bytes(), 8);
    }

    #[test]
    fn encoding_picks_nearest_centroid() {
        let data = toy_data(150, 4, 21);
        let pq = ProductQuantizer::train(&data, 2, 4, 15, 2);
        let v = data.get(5);
        let codes = pq.encode(v);
        // For each subspace, no other centroid is strictly closer.
        for s in 0..2 {
            let span_start = s * 2;
            let sub = &v[span_start..span_start + 2];
            let chosen = pq.centroid(s, usize::from(codes[s]));
            let chosen_d = simdops::l2_sq(sub, chosen);
            for c in 0..pq.centroids_per_subspace() {
                assert!(chosen_d <= simdops::l2_sq(sub, pq.centroid(s, c)) + 1e-6);
            }
        }
    }
}
