//! Scalar Quantization (paper Section 3.2.2).
//!
//! SQ maps each dimension to a small integer by an affine transform of the
//! observed value range. The paper evaluates `L_SQ ∈ {2, 4, 8, 16}` bits and
//! finds 8 bits optimal because it aligns with the `u8` lane width — 2- and
//! 4-bit codes still occupy a byte (no native type), while 16-bit codes
//! double the memory traffic (their Figure 4a).
//!
//! Two range modes are provided:
//!
//! * **global** (default): one `[min, max]` over all components. Distances
//!   between codes are then proportional to decoded distances, so integer
//!   SIMD kernels compare codes directly with *zero decode cost* — this is
//!   the "optimized version to avoid decoding overhead" the paper adopts
//!   from the Qdrant technical report;
//! * **per-dimension**: the textbook variant; exact per-axis ranges, but
//!   distances must fold a per-axis scale, which costs float math again.

use crate::Codec;
use vecstore::VectorSet;

/// Which value range the affine mapping uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqRange {
    /// One shared `[min, max]` for every dimension (fast integer compares).
    Global,
    /// Independent `[min, max]` per dimension (lower error, slower compares).
    PerDimension,
}

/// A trained scalar quantizer.
#[derive(Debug, Clone)]
pub struct ScalarQuantizer {
    dim: usize,
    bits: u8,
    range: SqRange,
    /// Per-dimension minima (length 1 when range is Global).
    mins: Vec<f32>,
    /// Per-dimension step sizes Δ = (max − min) / (2^bits − 1).
    deltas: Vec<f32>,
}

impl ScalarQuantizer {
    /// Fits the quantizer to the observed ranges of `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty or `bits` is outside `1..=16`.
    pub fn train(data: &VectorSet, bits: u8, range: SqRange) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        let dim = data.dim();
        let levels = (1u32 << bits) - 1;

        let (mins, deltas) = match range {
            SqRange::Global => {
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for v in data.iter() {
                    for &x in v {
                        lo = lo.min(x);
                        hi = hi.max(x);
                    }
                }
                let delta = span_to_delta(lo, hi, levels);
                (vec![lo], vec![delta])
            }
            SqRange::PerDimension => {
                let mut lo = vec![f32::INFINITY; dim];
                let mut hi = vec![f32::NEG_INFINITY; dim];
                for v in data.iter() {
                    for (i, &x) in v.iter().enumerate() {
                        lo[i] = lo[i].min(x);
                        hi[i] = hi[i].max(x);
                    }
                }
                let deltas = lo
                    .iter()
                    .zip(hi.iter())
                    .map(|(&l, &h)| span_to_delta(l, h, levels))
                    .collect();
                (lo, deltas)
            }
        };

        Self {
            dim,
            bits,
            range,
            mins,
            deltas,
        }
    }

    /// Codeword bits `L_SQ`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The configured range mode.
    pub fn range_mode(&self) -> SqRange {
        self.range
    }

    #[inline]
    fn min_of(&self, i: usize) -> f32 {
        match self.range {
            SqRange::Global => self.mins[0],
            SqRange::PerDimension => self.mins[i],
        }
    }

    #[inline]
    fn delta_of(&self, i: usize) -> f32 {
        match self.range {
            SqRange::Global => self.deltas[0],
            SqRange::PerDimension => self.deltas[i],
        }
    }

    /// Encodes into one `u16` per dimension (values fit `u8` when
    /// `bits <= 8`; [`Self::encode_u8`] gives the packed byte form).
    pub fn encode(&self, v: &[f32]) -> Vec<u16> {
        assert_eq!(v.len(), self.dim, "dimensionality mismatch");
        let levels = (1u32 << self.bits) - 1;
        v.iter()
            .enumerate()
            .map(|(i, &x)| {
                let delta = self.delta_of(i);
                if delta == 0.0 {
                    return 0;
                }
                let t = (x - self.min_of(i)) / delta;
                (t.round().max(0.0) as u32).min(levels) as u16
            })
            .collect()
    }

    /// Encodes into bytes; requires `bits <= 8`.
    ///
    /// # Panics
    /// Panics if `bits > 8`.
    pub fn encode_u8(&self, v: &[f32]) -> Vec<u8> {
        assert!(self.bits <= 8, "u8 codes need bits <= 8");
        self.encode(v).into_iter().map(|c| c as u8).collect()
    }

    /// Decodes codes back to (lossy) floats.
    pub fn decode(&self, codes: &[u16]) -> Vec<f32> {
        assert_eq!(codes.len(), self.dim, "dimensionality mismatch");
        codes
            .iter()
            .enumerate()
            .map(|(i, &c)| self.min_of(i) + f32::from(c) * self.delta_of(i))
            .collect()
    }

    /// Squared decoded distance between two `u8` code vectors.
    ///
    /// In `Global` mode this is one integer SIMD kernel plus one multiply;
    /// in `PerDimension` mode each axis is scaled individually.
    pub fn dist_sq_u8(&self, a: &[u8], b: &[u8]) -> f32 {
        debug_assert_eq!(a.len(), self.dim);
        debug_assert_eq!(b.len(), self.dim);
        match self.range {
            SqRange::Global => {
                let delta = self.deltas[0];
                simdops::l2_sq_u8(a, b) as f32 * delta * delta
            }
            SqRange::PerDimension => {
                let mut acc = 0.0f32;
                for i in 0..self.dim {
                    let d = (i16::from(a[i]) - i16::from(b[i])) as f32 * self.deltas[i];
                    acc += d * d;
                }
                acc
            }
        }
    }

    /// Squared decoded distance for `u16` codes (the 16-bit configuration).
    pub fn dist_sq_u16(&self, a: &[u16], b: &[u16]) -> f32 {
        debug_assert_eq!(a.len(), self.dim);
        debug_assert_eq!(b.len(), self.dim);
        let mut acc = 0.0f64;
        for i in 0..self.dim {
            let d = f64::from(i32::from(a[i]) - i32::from(b[i])) * f64::from(self.delta_of(i));
            acc += d * d;
        }
        acc as f32
    }
}

/// Step size for `levels + 1` quantization levels over `[lo, hi]`; zero-width
/// spans quantize to a single level.
fn span_to_delta(lo: f32, hi: f32, levels: u32) -> f32 {
    if hi <= lo || levels == 0 {
        0.0
    } else {
        (hi - lo) / levels as f32
    }
}

impl Codec for ScalarQuantizer {
    fn dim(&self) -> usize {
        self.dim
    }

    fn reconstruct(&self, v: &[f32]) -> Vec<f32> {
        self.decode(&self.encode(v))
    }

    fn code_bytes(&self) -> usize {
        let bytes_per_dim = if self.bits <= 8 { 1 } else { 2 };
        self.dim * bytes_per_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> VectorSet {
        VectorSet::from_flat(2, vec![0.0, 10.0, 1.0, 20.0, 0.5, 15.0, 0.25, 12.0])
    }

    #[test]
    fn roundtrip_error_bounded_by_half_delta() {
        let sq = ScalarQuantizer::train(&data(), 8, SqRange::PerDimension);
        for v in data().iter() {
            let r = sq.reconstruct(v);
            for (i, (&x, &y)) in v.iter().zip(r.iter()).enumerate() {
                assert!(
                    (x - y).abs() <= sq.delta_of(i) * 0.5 + 1e-6,
                    "dim {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn more_bits_less_error() {
        let d = data();
        let sq2 = ScalarQuantizer::train(&d, 2, SqRange::Global);
        let sq8 = ScalarQuantizer::train(&d, 8, SqRange::Global);
        let err = |sq: &ScalarQuantizer| -> f32 {
            d.iter()
                .map(|v| simdops::l2_sq(v, &sq.reconstruct(v)))
                .sum()
        };
        assert!(err(&sq8) < err(&sq2));
    }

    #[test]
    fn global_code_distance_matches_decoded_distance() {
        let d = data();
        let sq = ScalarQuantizer::train(&d, 8, SqRange::Global);
        let a = sq.encode_u8(d.get(0));
        let b = sq.encode_u8(d.get(1));
        let via_codes = sq.dist_sq_u8(&a, &b);
        let decoded = simdops::l2_sq(&sq.reconstruct(d.get(0)), &sq.reconstruct(d.get(1)));
        assert!(
            (via_codes - decoded).abs() < 1e-4,
            "{via_codes} vs {decoded}"
        );
    }

    #[test]
    fn per_dim_code_distance_matches_decoded_distance() {
        let d = data();
        let sq = ScalarQuantizer::train(&d, 8, SqRange::PerDimension);
        let a = sq.encode_u8(d.get(2));
        let b = sq.encode_u8(d.get(3));
        let via_codes = sq.dist_sq_u8(&a, &b);
        let decoded = simdops::l2_sq(&sq.reconstruct(d.get(2)), &sq.reconstruct(d.get(3)));
        assert!((via_codes - decoded).abs() < 1e-4);
    }

    #[test]
    fn codes_use_full_range() {
        let d = data();
        let sq = ScalarQuantizer::train(&d, 4, SqRange::PerDimension);
        // The min and max points should map to 0 and 15 respectively.
        let lo = sq.encode(&[0.0, 10.0]);
        let hi = sq.encode(&[1.0, 20.0]);
        assert_eq!(lo, vec![0, 0]);
        assert_eq!(hi, vec![15, 15]);
    }

    #[test]
    fn constant_dimension_is_stable() {
        let d = VectorSet::from_flat(2, vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0]);
        let sq = ScalarQuantizer::train(&d, 8, SqRange::PerDimension);
        let r = sq.reconstruct(&[5.0, 2.0]);
        assert!((r[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let d = data();
        let sq = ScalarQuantizer::train(&d, 8, SqRange::PerDimension);
        let codes = sq.encode(&[-100.0, 100.0]);
        assert_eq!(codes[0], 0);
        assert_eq!(codes[1], 255);
    }

    #[test]
    fn sixteen_bit_distance_path() {
        let d = data();
        let sq = ScalarQuantizer::train(&d, 16, SqRange::Global);
        let a = sq.encode(d.get(0));
        let b = sq.encode(d.get(1));
        let via_codes = sq.dist_sq_u16(&a, &b);
        let decoded = simdops::l2_sq(&sq.reconstruct(d.get(0)), &sq.reconstruct(d.get(1)));
        assert!((via_codes - decoded).abs() < 1e-3);
        assert_eq!(sq.code_bytes(), 4); // 2 dims * 2 bytes
    }
}
