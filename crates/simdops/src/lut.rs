//! The Flash distance kernel: register-resident 16-entry lookup tables
//! indexed by 4-bit codewords through SIMD byte shuffles.
//!
//! This is the arithmetic core of the paper (Section 3.3.5). For an inserted
//! vector the codec produces, per subspace `s`, an Asymmetric Distance Table
//! `ADT_s` of `K = 16` quantized (8-bit) partial distances — exactly 128
//! bits, the size of one SSE register. The graph stores every vertex's
//! neighbor codewords in *subspace-major batches* of `B = 16` neighbors, so
//!
//! * one register load fetches the 16 codewords of a batch in subspace `s`,
//! * one `pshufb` uses those codewords as indices into the register-resident
//!   `ADT_s`, yielding 16 partial distances simultaneously,
//! * packed adds accumulate partials across subspaces into 16-bit sums.
//!
//! With `M_F` subspaces the whole batch distance costs `M_F` loads + `M_F`
//! shuffles + `2·M_F` adds — versus `32·D/U` register loads per *single*
//! distance in the baseline (paper Eq. 12 vs Eq. 13).
//!
//! Wider registers process more subspaces per instruction: AVX2 handles two
//! ADTs per `vpshufb`, AVX-512 four (Figure 12 in the paper). All variants
//! produce bit-identical results to the scalar path.

use crate::level::{current_level, SimdLevel};

/// Number of neighbors processed per batch — fixed to `K = 2^{L_F} = 16` so
/// one batch of codewords and one ADT each fill a 128-bit lane.
pub const LUT_BATCH: usize = 16;

/// Accumulates batch distances for one block of neighbors.
///
/// * `tables`: `m * 16` bytes; `tables[s*16 + c]` is the quantized partial
///   distance to centroid `c` in subspace `s` (the ADT).
/// * `codes`: `m * 16` bytes, subspace-major; `codes[s*16 + j]` is neighbor
///   `j`'s 4-bit codeword (value `0..=15`) in subspace `s`.
/// * `out[j]` receives `Σ_s tables[s*16 + codes[s*16 + j]]` for the 16
///   neighbors `j`.
///
/// Sums are exact in `u16` for `m ≤ 257` (each partial ≤ 255).
///
/// # Panics
/// Panics if slice lengths don't equal `m * 16`, or if any codeword has a
/// high nibble set (debug builds only — release relies on the encoder's
/// invariant; `pshufb` would read the low nibble but scalar would index out
/// of table range, so the encoder masks to 4 bits).
#[inline]
pub fn lut16_batch(tables: &[u8], codes: &[u8], m: usize, out: &mut [u16; LUT_BATCH]) {
    assert_eq!(tables.len(), m * LUT_BATCH, "ADT length mismatch");
    assert_eq!(codes.len(), m * LUT_BATCH, "code block length mismatch");
    debug_assert!(codes.iter().all(|&c| c < 16), "codeword exceeds 4 bits");
    match current_level() {
        SimdLevel::Scalar => lut16_batch_scalar(tables, codes, m, out),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { lut16_batch_sse(tables, codes, m, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { lut16_batch_avx2(tables, codes, m, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { lut16_batch_avx512(tables, codes, m, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => lut16_batch_scalar(tables, codes, m, out),
    }
}

/// Scalar reference implementation; the oracle for the SIMD paths.
#[inline]
pub fn lut16_batch_scalar(tables: &[u8], codes: &[u8], m: usize, out: &mut [u16; LUT_BATCH]) {
    out.fill(0);
    for s in 0..m {
        let table = &tables[s * LUT_BATCH..(s + 1) * LUT_BATCH];
        let block = &codes[s * LUT_BATCH..(s + 1) * LUT_BATCH];
        for (o, &c) in out.iter_mut().zip(block.iter()) {
            *o += u16::from(table[usize::from(c & 0x0f)]);
        }
    }
}

/// Single-vector variant: looks up one codeword per subspace.
///
/// Used when a distance is needed for one vertex outside a batch (e.g. the
/// entry point of a search). `codes[s]` is the 4-bit codeword in subspace
/// `s`.
#[inline]
pub fn lut16_single(tables: &[u8], codes: &[u8], m: usize) -> u16 {
    assert_eq!(tables.len(), m * LUT_BATCH, "ADT length mismatch");
    assert_eq!(codes.len(), m, "one codeword per subspace expected");
    let mut acc = 0u16;
    for s in 0..m {
        acc += u16::from(tables[s * LUT_BATCH + usize::from(codes[s] & 0x0f)]);
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3,sse4.1")]
unsafe fn lut16_batch_sse(tables: &[u8], codes: &[u8], m: usize, out: &mut [u16; LUT_BATCH]) {
    use std::arch::x86_64::*;
    let mut acc_lo = _mm_setzero_si128(); // neighbors 0..8 as u16
    let mut acc_hi = _mm_setzero_si128(); // neighbors 8..16 as u16
    for s in 0..m {
        let table = _mm_loadu_si128(tables.as_ptr().add(s * 16) as *const __m128i);
        let code = _mm_loadu_si128(codes.as_ptr().add(s * 16) as *const __m128i);
        let partial = _mm_shuffle_epi8(table, code);
        acc_lo = _mm_add_epi16(acc_lo, _mm_cvtepu8_epi16(partial));
        acc_hi = _mm_add_epi16(acc_hi, _mm_cvtepu8_epi16(_mm_srli_si128(partial, 8)));
    }
    _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, acc_lo);
    _mm_storeu_si128(out.as_mut_ptr().add(8) as *mut __m128i, acc_hi);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lut16_batch_avx2(tables: &[u8], codes: &[u8], m: usize, out: &mut [u16; LUT_BATCH]) {
    use std::arch::x86_64::*;
    // Two subspaces per iteration: `vpshufb` shuffles each 128-bit lane with
    // its own table, so lane 0 looks up subspace s and lane 1 subspace s+1.
    let mut acc_a = _mm256_setzero_si256(); // 16 u16 accumulators (subspace stream A)
    let mut acc_b = _mm256_setzero_si256(); // 16 u16 accumulators (subspace stream B)
    let pairs = m / 2;
    for p in 0..pairs {
        let tables2 = _mm256_loadu_si256(tables.as_ptr().add(p * 32) as *const __m256i);
        let codes2 = _mm256_loadu_si256(codes.as_ptr().add(p * 32) as *const __m256i);
        let partial = _mm256_shuffle_epi8(tables2, codes2);
        let lane0 = _mm256_castsi256_si128(partial); // subspace 2p, 16 u8
        let lane1 = _mm256_extracti128_si256(partial, 1); // subspace 2p+1
        acc_a = _mm256_add_epi16(acc_a, _mm256_cvtepu8_epi16(lane0));
        acc_b = _mm256_add_epi16(acc_b, _mm256_cvtepu8_epi16(lane1));
    }
    let mut acc = _mm256_add_epi16(acc_a, acc_b);
    if m % 2 == 1 {
        let s = m - 1;
        let table = _mm_loadu_si128(tables.as_ptr().add(s * 16) as *const __m128i);
        let code = _mm_loadu_si128(codes.as_ptr().add(s * 16) as *const __m128i);
        let partial = _mm_shuffle_epi8(table, code);
        acc = _mm256_add_epi16(acc, _mm256_cvtepu8_epi16(partial));
    }
    _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, acc);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn lut16_batch_avx512(tables: &[u8], codes: &[u8], m: usize, out: &mut [u16; LUT_BATCH]) {
    use std::arch::x86_64::*;
    // Four subspaces per iteration: 512-bit `vpshufb` keeps per-128-bit-lane
    // semantics, so each lane pairs one ADT with its code batch.
    let mut acc_a = _mm512_setzero_si512(); // 32 u16: subspaces 4p, 4p+1
    let mut acc_b = _mm512_setzero_si512(); // 32 u16: subspaces 4p+2, 4p+3
    let quads = m / 4;
    for p in 0..quads {
        let tables4 = _mm512_loadu_si512(tables.as_ptr().add(p * 64) as *const __m512i);
        let codes4 = _mm512_loadu_si512(codes.as_ptr().add(p * 64) as *const __m512i);
        let partial = _mm512_shuffle_epi8(tables4, codes4);
        let lo256 = _mm512_castsi512_si256(partial); // lanes 0,1 (32 u8)
        let hi256 = _mm512_extracti64x4_epi64(partial, 1); // lanes 2,3
        acc_a = _mm512_add_epi16(acc_a, _mm512_cvtepu8_epi16(lo256));
        acc_b = _mm512_add_epi16(acc_b, _mm512_cvtepu8_epi16(hi256));
    }
    // acc = per-lane-pair sums; fold the two 16-lane groups together.
    let acc512 = _mm512_add_epi16(acc_a, acc_b);
    let lo = _mm512_castsi512_si256(acc512);
    let hi = _mm512_extracti64x4_epi64(acc512, 1);
    let mut acc = _mm256_add_epi16(lo, hi);
    // Tail subspaces (m % 4) via the SSE step.
    for s in quads * 4..m {
        let table = _mm_loadu_si128(tables.as_ptr().add(s * 16) as *const __m128i);
        let code = _mm_loadu_si128(codes.as_ptr().add(s * 16) as *const __m128i);
        let partial = _mm_shuffle_epi8(table, code);
        acc = _mm256_add_epi16(acc, _mm256_cvtepu8_epi16(partial));
    }
    _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{supported_levels, with_level};

    fn arb_bytes(n: usize, seed: u64, max: u16) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 48) as u16 % (max + 1)) as u8
            })
            .collect()
    }

    #[test]
    fn all_levels_match_scalar() {
        for m in [1usize, 2, 3, 4, 5, 7, 8, 15, 16, 32, 33, 64] {
            let tables = arb_bytes(m * 16, 11, 255);
            let codes = arb_bytes(m * 16, 23, 15);
            let mut reference = [0u16; LUT_BATCH];
            lut16_batch_scalar(&tables, &codes, m, &mut reference);
            for level in supported_levels() {
                let mut got = [0u16; LUT_BATCH];
                with_level(level, || lut16_batch(&tables, &codes, m, &mut got));
                assert_eq!(got, reference, "level {level:?} m={m}");
            }
        }
    }

    #[test]
    fn zero_tables_give_zero_distances() {
        let m = 8;
        let tables = vec![0u8; m * 16];
        let codes = arb_bytes(m * 16, 5, 15);
        let mut out = [1u16; LUT_BATCH];
        lut16_batch(&tables, &codes, m, &mut out);
        assert_eq!(out, [0u16; LUT_BATCH]);
    }

    #[test]
    fn single_subspace_is_plain_lookup() {
        let mut tables = vec![0u8; 16];
        for (c, t) in tables.iter_mut().enumerate() {
            *t = (c * 3) as u8;
        }
        let mut codes = vec![0u8; 16];
        for (j, c) in codes.iter_mut().enumerate() {
            *c = (15 - j) as u8;
        }
        let mut out = [0u16; LUT_BATCH];
        lut16_batch(&tables, &codes, 1, &mut out);
        for j in 0..16 {
            assert_eq!(out[j], ((15 - j) * 3) as u16);
        }
    }

    #[test]
    fn saturating_headroom_u16() {
        // Worst case: all partials 255 with m = 64 → 16320, fits u16.
        let m = 64;
        let tables = vec![255u8; m * 16];
        let codes = vec![0u8; m * 16];
        let mut out = [0u16; LUT_BATCH];
        lut16_batch(&tables, &codes, m, &mut out);
        assert_eq!(out, [255 * 64u16; LUT_BATCH]);
    }

    #[test]
    fn single_matches_batch_column() {
        let m = 12;
        let tables = arb_bytes(m * 16, 31, 255);
        let codes = arb_bytes(m * 16, 37, 15);
        let mut batch = [0u16; LUT_BATCH];
        lut16_batch(&tables, &codes, m, &mut batch);
        for j in 0..LUT_BATCH {
            let per_subspace: Vec<u8> = (0..m).map(|s| codes[s * 16 + j]).collect();
            assert_eq!(lut16_single(&tables, &per_subspace, m), batch[j]);
        }
    }

    #[test]
    #[should_panic(expected = "ADT length mismatch")]
    fn bad_table_length_panics() {
        let mut out = [0u16; LUT_BATCH];
        lut16_batch(&[0u8; 15], &[0u8; 16], 1, &mut out);
    }
}
