//! Runtime-dispatched SIMD kernels for the `hnsw-flash` workspace.
//!
//! The paper identifies two CPU-level bottlenecks in graph indexing:
//! excessive register loads when streaming full-precision vectors through
//! narrow SIMD registers, and serial table lookups that cannot use SIMD at
//! all. This crate provides the kernels both sides of that comparison need:
//!
//! * [`f32dist`] — full-precision L2² / inner-product kernels (the baseline
//!   HNSW distance path) in scalar, SSE (128-bit), AVX2 (256-bit) and
//!   AVX-512 variants;
//! * [`u8dist`] — distances over scalar-quantized `u8` codes (HNSW-SQ path);
//! * [`lut`] — the Flash kernel: 16-entry 8-bit lookup tables resident in a
//!   SIMD register, indexed by 4-bit codewords via byte-shuffle instructions
//!   (`pshufb` / `vpshufb`), producing 16 partial distances per instruction;
//! * [`level`] — feature detection plus a process-wide dispatch override so
//!   the benchmark harness can force SSE/AVX2/AVX-512 paths (paper Fig. 12)
//!   and fully disable SIMD (paper Table 3).
//!
//! All public entry points are safe; `unsafe` is confined to the
//! `#[target_feature]` implementations, each guarded by runtime detection.

pub mod f32dist;
pub mod level;
pub mod lut;
pub mod prefetch;
pub mod u8dist;

pub use f32dist::{inner_product, l2_sq, norm_sq};
pub use level::{current_level, detect_level, set_level_override, supported_levels, SimdLevel};
pub use lut::{lut16_batch, lut16_single, LUT_BATCH};
pub use prefetch::{prefetch_read, prefetch_slice};
pub use u8dist::l2_sq_u8;
