//! SIMD capability detection and process-wide dispatch control.
//!
//! The paper's Figure 12 compares indexing time under SSE (128-bit), AVX
//! (256-bit) and AVX-512 register widths, and Table 3 ablates SIMD entirely.
//! To reproduce those experiments without rebuilding, every kernel in this
//! crate dispatches through [`current_level`], which is the minimum of what
//! the CPU supports and an optional override installed by
//! [`set_level_override`].

use std::sync::atomic::{AtomicU8, Ordering};

/// Available instruction tiers, ordered from weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SimdLevel {
    /// Pure scalar code — used for the "without SIMD optimization" ablation.
    Scalar = 0,
    /// 128-bit SSE (requires SSSE3 for `pshufb` and SSE4.1 for widening).
    Sse = 1,
    /// 256-bit AVX2.
    Avx2 = 2,
    /// 512-bit AVX-512 (requires F + BW for byte shuffles).
    Avx512 = 3,
}

impl SimdLevel {
    /// Register width in bits for this tier (scalar reported as 32).
    pub fn register_bits(self) -> usize {
        match self {
            SimdLevel::Scalar => 32,
            SimdLevel::Sse => 128,
            SimdLevel::Avx2 => 256,
            SimdLevel::Avx512 => 512,
        }
    }

    /// Human-readable name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse => "SSE",
            SimdLevel::Avx2 => "AVX",
            SimdLevel::Avx512 => "AVX512",
        }
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            1 => SimdLevel::Sse,
            2 => SimdLevel::Avx2,
            3 => SimdLevel::Avx512,
            _ => SimdLevel::Scalar,
        }
    }
}

/// Sentinel meaning "no override installed".
const NO_OVERRIDE: u8 = u8::MAX;

static LEVEL_OVERRIDE: AtomicU8 = AtomicU8::new(NO_OVERRIDE);

/// Detects the strongest tier this CPU supports.
///
/// The SSE tier additionally requires SSSE3 (`pshufb`) and SSE4.1
/// (`pmovzxbw`), both ubiquitous on x86-64 CPUs from the last 15 years; if
/// they are absent we fall back to scalar rather than risk an illegal
/// instruction.
pub fn detect_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
        {
            return SimdLevel::Sse;
        }
        SimdLevel::Scalar
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

/// Installs a process-wide cap on the dispatch tier, or removes it.
///
/// `Some(level)` clamps every kernel to at most `level` (it can never raise
/// the tier above what the hardware supports); `None` restores pure
/// detection. Intended for the Figure-12 / Table-3 experiments and for tests
/// that compare SIMD and scalar outputs.
pub fn set_level_override(level: Option<SimdLevel>) {
    let v = level.map(|l| l as u8).unwrap_or(NO_OVERRIDE);
    LEVEL_OVERRIDE.store(v, Ordering::SeqCst);
}

/// The tier kernels dispatch on right now: `min(detected, override)`.
pub fn current_level() -> SimdLevel {
    let detected = detect_level();
    let ov = LEVEL_OVERRIDE.load(Ordering::Relaxed);
    if ov == NO_OVERRIDE {
        detected
    } else {
        detected.min(SimdLevel::from_u8(ov))
    }
}

/// Runs `f` with the dispatch tier capped at `level`, restoring the previous
/// override afterwards (even on panic). Handy for tests and benches.
pub fn with_level<T>(level: SimdLevel, f: impl FnOnce() -> T) -> T {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            LEVEL_OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let prev = LEVEL_OVERRIDE.load(Ordering::SeqCst);
    let _guard = Restore(prev);
    LEVEL_OVERRIDE.store(level as u8, Ordering::SeqCst);
    f()
}

/// All tiers supported by this CPU, weakest first. Used by the Figure-12
/// harness to enumerate runnable configurations.
pub fn supported_levels() -> Vec<SimdLevel> {
    let top = detect_level();
    [
        SimdLevel::Scalar,
        SimdLevel::Sse,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ]
    .into_iter()
    .filter(|&l| l <= top)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_caps_but_never_raises() {
        let detected = detect_level();
        with_level(SimdLevel::Scalar, || {
            assert_eq!(current_level(), SimdLevel::Scalar);
        });
        with_level(SimdLevel::Avx512, || {
            assert_eq!(current_level(), detected.min(SimdLevel::Avx512));
        });
        assert_eq!(current_level(), detected);
    }

    #[test]
    fn with_level_restores_on_exit() {
        set_level_override(Some(SimdLevel::Sse));
        with_level(SimdLevel::Scalar, || {
            assert_eq!(current_level(), SimdLevel::Scalar);
        });
        assert_eq!(current_level(), detect_level().min(SimdLevel::Sse));
        set_level_override(None);
    }

    #[test]
    fn register_bits_monotone() {
        let levels = [
            SimdLevel::Scalar,
            SimdLevel::Sse,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
        ];
        for w in levels.windows(2) {
            assert!(w[0].register_bits() < w[1].register_bits());
        }
    }

    #[test]
    fn supported_levels_starts_with_scalar() {
        let levels = supported_levels();
        assert_eq!(levels[0], SimdLevel::Scalar);
        for w in levels.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
