//! Software prefetch hints for pointer-light hot loops.
//!
//! Graph search is memory-bound: the next candidate's neighbor row and
//! codes are cold by construction (the beam jumps around the dataset).
//! Issuing a prefetch for the *next* candidate while the current block is
//! being scored overlaps the miss latency with useful work. These are
//! hints only — wrong or out-of-bounds-adjacent addresses cost nothing
//! correctness-wise — so the helpers are safe to call with any in-bounds
//! slice.

/// Requests `addr`'s cache line into all cache levels (read intent).
#[inline(always)]
pub fn prefetch_read<T>(addr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it never faults, even on invalid
    // addresses, and SSE is baseline on x86_64.
    unsafe {
        core::arch::x86_64::_mm_prefetch(addr.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is an architectural hint and never faults.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) addr,
            options(nostack, preserves_flags)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = addr;
}

/// Prefetches every cache line covering `data` (read intent). Sized for
/// the structures the search loop touches per candidate: one CSR neighbor
/// row or one node's code block, i.e. a handful of lines at most.
#[inline]
pub fn prefetch_slice<T>(data: &[T]) {
    const LINE: usize = 64;
    let bytes = std::mem::size_of_val(data);
    let base = data.as_ptr().cast::<u8>();
    let mut off = 0;
    while off < bytes {
        prefetch_read(base.wrapping_add(off));
        off += LINE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_safe_noop_semantically() {
        let data: Vec<u32> = (0..100).collect();
        prefetch_read(data.as_ptr());
        prefetch_slice(&data);
        prefetch_slice::<u32>(&[]);
        assert_eq!(data[99], 99, "prefetch must not alter memory");
    }
}
