//! Distances over scalar-quantized `u8` codes (the HNSW-SQ path).
//!
//! Scalar quantization maps each `f32` dimension to a `u8` bucket; distances
//! are then computed directly on the integer codes (the decoded affine
//! transform is monotone per-dimension, so comparing integer-code distances
//! is equivalent when every dimension shares a scale — and a good
//! approximation otherwise; see `quantizers::sq`). Integer arithmetic packs
//! 4x more lanes per register than `f32`, which is where HNSW-SQ's modest
//! speedup comes from.

use crate::level::{current_level, SimdLevel};

/// Squared L2 distance between two `u8` code vectors, as `u32`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn l2_sq_u8(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    match current_level() {
        SimdLevel::Scalar => l2_sq_u8_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { l2_sq_u8_sse(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { l2_sq_u8_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => l2_sq_u8_scalar(a, b),
    }
}

/// Scalar reference implementation (also the test oracle).
#[inline]
pub fn l2_sq_u8_scalar(a: &[u8], b: &[u8]) -> u32 {
    let mut acc = 0u32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = i32::from(x) - i32::from(y);
        acc += (d * d) as u32;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2,sse4.1")]
unsafe fn l2_sq_u8_sse(a: &[u8], b: &[u8]) -> u32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let chunks = n / 16;
    let mut acc = _mm_setzero_si128();
    for i in 0..chunks {
        let va = _mm_loadu_si128(a.as_ptr().add(i * 16) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(i * 16) as *const __m128i);
        // Widen to i16 (max |diff| = 255, squares fit i32 via pmaddwd).
        let a_lo = _mm_cvtepu8_epi16(va);
        let b_lo = _mm_cvtepu8_epi16(vb);
        let a_hi = _mm_cvtepu8_epi16(_mm_srli_si128(va, 8));
        let b_hi = _mm_cvtepu8_epi16(_mm_srli_si128(vb, 8));
        let d_lo = _mm_sub_epi16(a_lo, b_lo);
        let d_hi = _mm_sub_epi16(a_hi, b_hi);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(d_lo, d_lo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(d_hi, d_hi));
    }
    // Horizontal sum of 4 x i32.
    let hi64 = _mm_unpackhi_epi64(acc, acc);
    let sum2 = _mm_add_epi32(acc, hi64);
    let hi32 = _mm_shuffle_epi32(sum2, 0b01);
    let sum = _mm_add_epi32(sum2, hi32);
    let mut out = _mm_cvtsi128_si32(sum) as u32;
    for i in chunks * 16..n {
        let d = i32::from(a[i]) - i32::from(b[i]);
        out += (d * d) as u32;
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn l2_sq_u8_avx2(a: &[u8], b: &[u8]) -> u32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let chunks = n / 32;
    let mut acc = _mm256_setzero_si256();
    for i in 0..chunks {
        let va = _mm256_loadu_si256(a.as_ptr().add(i * 32) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i * 32) as *const __m256i);
        let a_lo = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(va));
        let b_lo = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vb));
        let a_hi = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(va, 1));
        let b_hi = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(vb, 1));
        let d_lo = _mm256_sub_epi16(a_lo, b_lo);
        let d_hi = _mm256_sub_epi16(a_hi, b_hi);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_lo, d_lo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_hi, d_hi));
    }
    // Horizontal sum of 8 x i32.
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let sum128 = _mm_add_epi32(lo, hi);
    let hi64 = _mm_unpackhi_epi64(sum128, sum128);
    let sum2 = _mm_add_epi32(sum128, hi64);
    let hi32 = _mm_shuffle_epi32(sum2, 0b01);
    let sum = _mm_add_epi32(sum2, hi32);
    let mut out = _mm_cvtsi128_si32(sum) as u32;
    for i in chunks * 32..n {
        let d = i32::from(a[i]) - i32::from(b[i]);
        out += (d * d) as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{supported_levels, with_level};

    fn codes(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn all_levels_agree() {
        for n in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 256, 768] {
            let a = codes(n, 3);
            let b = codes(n, 7);
            let reference = l2_sq_u8_scalar(&a, &b);
            for level in supported_levels() {
                let got = with_level(level, || l2_sq_u8(&a, &b));
                assert_eq!(got, reference, "level {level:?} n={n}");
            }
        }
    }

    #[test]
    fn identity_distance_zero() {
        let a = codes(100, 1);
        assert_eq!(l2_sq_u8(&a, &a), 0);
    }

    #[test]
    fn extreme_values_do_not_overflow_lane_math() {
        // 255 vs 0 in every slot: per-dim square = 65025.
        let a = vec![255u8; 64];
        let b = vec![0u8; 64];
        assert_eq!(l2_sq_u8(&a, &b), 65025 * 64);
    }

    #[test]
    fn known_small_case() {
        assert_eq!(l2_sq_u8(&[1, 2, 3], &[4, 0, 3]), 9 + 4);
    }
}
