//! Full-precision `f32` distance kernels with runtime SIMD dispatch.
//!
//! These implement the baseline HNSW distance path the paper profiles in
//! Figure 1: each computation streams the two vectors through SIMD registers
//! in `D / (register_width / 32)` loads per operand — the `N_RL_orig` cost of
//! Equation (12).

use crate::level::{current_level, SimdLevel};

/// Squared Euclidean distance `‖a − b‖²`.
///
/// The graph algorithms only ever *compare* distances, so we return the
/// squared value and skip the square root (monotone transform).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    match current_level() {
        SimdLevel::Scalar => l2_sq_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { l2_sq_sse(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { l2_sq_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { l2_sq_avx512(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => l2_sq_scalar(a, b),
    }
}

/// Inner product `a · b`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    match current_level() {
        SimdLevel::Scalar => ip_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { ip_sse(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { ip_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { ip_avx512(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => ip_scalar(a, b),
    }
}

/// Squared norm `‖a‖²`.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    inner_product(a, a)
}

// ---------------------------------------------------------------------------
// Scalar reference implementations.
// ---------------------------------------------------------------------------

/// Scalar L2²; also the reference oracle for the SIMD paths in tests.
#[inline]
pub fn l2_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[inline]
fn ip_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

// ---------------------------------------------------------------------------
// x86-64 SIMD implementations. Each function is only reachable after runtime
// detection confirms the corresponding feature set (see `level`).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn l2_sq_sse(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm_setzero_ps();
    let chunks = n / 4;
    for i in 0..chunks {
        let va = _mm_loadu_ps(a.as_ptr().add(i * 4));
        let vb = _mm_loadu_ps(b.as_ptr().add(i * 4));
        let d = _mm_sub_ps(va, vb);
        acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
    }
    // Horizontal sum of 4 lanes.
    let shuf = _mm_movehl_ps(acc, acc);
    let sums = _mm_add_ps(acc, shuf);
    let shuf2 = _mm_shuffle_ps(sums, sums, 0b01);
    let total = _mm_add_ss(sums, shuf2);
    let mut out = _mm_cvtss_f32(total);
    for i in chunks * 4..n {
        let d = a[i] - b[i];
        out += d * d;
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn ip_sse(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm_setzero_ps();
    let chunks = n / 4;
    for i in 0..chunks {
        let va = _mm_loadu_ps(a.as_ptr().add(i * 4));
        let vb = _mm_loadu_ps(b.as_ptr().add(i * 4));
        acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
    }
    let shuf = _mm_movehl_ps(acc, acc);
    let sums = _mm_add_ps(acc, shuf);
    let shuf2 = _mm_shuffle_ps(sums, sums, 0b01);
    let total = _mm_add_ss(sums, shuf2);
    let mut out = _mm_cvtss_f32(total);
    for i in chunks * 4..n {
        out += a[i] * b[i];
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let chunks = n / 8;
    for i in 0..chunks {
        let va = _mm256_loadu_ps(a.as_ptr().add(i * 8));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i * 8));
        let d = _mm256_sub_ps(va, vb);
        acc = _mm256_fmadd_ps(d, d, acc);
    }
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps(acc, 1);
    let sum128 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehl_ps(sum128, sum128);
    let sums = _mm_add_ps(sum128, shuf);
    let shuf2 = _mm_shuffle_ps(sums, sums, 0b01);
    let total = _mm_add_ss(sums, shuf2);
    let mut out = _mm_cvtss_f32(total);
    for i in chunks * 8..n {
        let d = a[i] - b[i];
        out += d * d;
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn ip_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let chunks = n / 8;
    for i in 0..chunks {
        let va = _mm256_loadu_ps(a.as_ptr().add(i * 8));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i * 8));
        acc = _mm256_fmadd_ps(va, vb, acc);
    }
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps(acc, 1);
    let sum128 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehl_ps(sum128, sum128);
    let sums = _mm_add_ps(sum128, shuf);
    let shuf2 = _mm_shuffle_ps(sums, sums, 0b01);
    let total = _mm_add_ss(sums, shuf2);
    let mut out = _mm_cvtss_f32(total);
    for i in chunks * 8..n {
        out += a[i] * b[i];
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn l2_sq_avx512(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let chunks = n / 16;
    for i in 0..chunks {
        let va = _mm512_loadu_ps(a.as_ptr().add(i * 16));
        let vb = _mm512_loadu_ps(b.as_ptr().add(i * 16));
        let d = _mm512_sub_ps(va, vb);
        acc = _mm512_fmadd_ps(d, d, acc);
    }
    let mut out = _mm512_reduce_add_ps(acc);
    for i in chunks * 16..n {
        let d = a[i] - b[i];
        out += d * d;
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn ip_avx512(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let chunks = n / 16;
    for i in 0..chunks {
        let va = _mm512_loadu_ps(a.as_ptr().add(i * 16));
        let vb = _mm512_loadu_ps(b.as_ptr().add(i * 16));
        acc = _mm512_fmadd_ps(va, vb, acc);
    }
    let mut out = _mm512_reduce_add_ps(acc);
    for i in chunks * 16..n {
        out += a[i] * b[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{supported_levels, with_level};

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        // Deterministic pseudo-random data without pulling in `rand` here.
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            a.push(((state >> 40) as f32) / 16777216.0 - 0.5);
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.push(((state >> 40) as f32) / 16777216.0 - 0.5);
        }
        (a, b)
    }

    #[test]
    fn all_levels_agree_on_l2() {
        for n in [1usize, 3, 4, 7, 8, 15, 16, 17, 64, 100, 768, 1024] {
            let (a, b) = vecs(n);
            let reference = l2_sq_scalar(&a, &b);
            for level in supported_levels() {
                let got = with_level(level, || l2_sq(&a, &b));
                let tol = 1e-4 * (1.0 + reference.abs());
                assert!(
                    (got - reference).abs() < tol,
                    "level {level:?} n={n}: {got} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn all_levels_agree_on_ip() {
        for n in [1usize, 5, 8, 16, 33, 256, 768] {
            let (a, b) = vecs(n);
            let reference: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            for level in supported_levels() {
                let got = with_level(level, || inner_product(&a, &b));
                let tol = 1e-4 * (1.0 + reference.abs());
                assert!(
                    (got - reference).abs() < tol,
                    "level {level:?} n={n}: {got} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn l2_identity_is_zero() {
        let (a, _) = vecs(129);
        assert_eq!(l2_sq(&a, &a), 0.0);
    }

    #[test]
    fn l2_known_value() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(l2_sq(&a, &b), 25.0);
    }

    #[test]
    fn norm_sq_matches_self_ip() {
        let (a, _) = vecs(77);
        let n = norm_sq(&a);
        let ip = inner_product(&a, &a);
        assert!((n - ip).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_lengths_panic() {
        let _ = l2_sq(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn empty_vectors_distance_zero() {
        assert_eq!(l2_sq(&[], &[]), 0.0);
        assert_eq!(inner_product(&[], &[]), 0.0);
    }
}
