//! On-disk persistence for the LSM index — the missing half of the
//! overnight-rebuild story: the rebuilt index must be *served* after a
//! process restart without re-running construction.
//!
//! Layout (all little-endian, versioned magics):
//!
//! ```text
//! <dir>/
//!   lsm.meta            index-level config + id counter
//!   seg000/ … segNNN/   one directory per sealed segment:
//!     vectors.fvecs       raw vectors (standard fvecs)
//!     graph.hfg           frozen topology (graphs::persist format)
//!     seg.meta            ids, tombstones, Flash + HNSW parameters
//! ```
//!
//! Flash codes are *not* stored: the codec retrains deterministically from
//! the persisted vectors and seed, and [`graphs::Hnsw::from_frozen`]
//! rebuilds the per-node codeword payloads from the topology — so the
//! reloaded segment serves through the exact same batched-lookup path as
//! the original.

use crate::lsm::{LsmConfig, LsmVectorIndex};
use crate::memtable::MemTable;
use crate::segment::Segment;
use flash::FlashParams;
use graphs::HnswParams;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const SEG_MAGIC: &[u8; 8] = b"HFSEG01\0";
const LSM_MAGIC: &[u8; 8] = b"HFLSM01\0";

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn write_flash_params(w: &mut impl Write, p: &FlashParams) -> io::Result<()> {
    write_u32(w, p.d_f as u32)?;
    write_u32(w, p.m_f as u32)?;
    write_u32(w, p.train_sample as u32)?;
    write_u32(w, p.kmeans_iters as u32)?;
    write_u64(w, p.seed)?;
    write_f64(w, p.grid_quantile)
}

fn read_flash_params(r: &mut impl Read) -> io::Result<FlashParams> {
    Ok(FlashParams {
        d_f: read_u32(r)? as usize,
        m_f: read_u32(r)? as usize,
        train_sample: read_u32(r)? as usize,
        kmeans_iters: read_u32(r)? as usize,
        seed: read_u64(r)?,
        grid_quantile: read_f64(r)?,
    })
}

fn write_hnsw_params(w: &mut impl Write, p: &HnswParams) -> io::Result<()> {
    write_u32(w, p.c as u32)?;
    write_u32(w, p.r as u32)?;
    write_u64(w, p.seed)
}

fn read_hnsw_params(r: &mut impl Read) -> io::Result<HnswParams> {
    Ok(HnswParams {
        c: read_u32(r)? as usize,
        r: read_u32(r)? as usize,
        seed: read_u64(r)?,
    })
}

impl Segment {
    /// Writes the segment under `dir` (created if missing).
    ///
    /// # Errors
    /// Returns any underlying I/O error.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        vecstore::io::write_fvecs(&dir.join("vectors.fvecs"), self.base_vectors())?;
        self.topology().save(&dir.join("graph.hfg"))?;

        let mut w = io::BufWriter::new(fs::File::create(dir.join("seg.meta"))?);
        w.write_all(SEG_MAGIC)?;
        write_u32(&mut w, self.len() as u32)?;
        for &id in self.external_ids() {
            write_u64(&mut w, id)?;
        }
        for &dead in self.tombstones() {
            w.write_all(&[u8::from(dead)])?;
        }
        write_flash_params(&mut w, self.flash_params())?;
        write_hnsw_params(&mut w, self.hnsw_params())?;
        w.flush()
    }

    /// Reloads a segment from `dir`: vectors from fvecs, topology from the
    /// graph file, codec retrained deterministically from the stored
    /// parameters, payloads rebuilt from the adjacency.
    ///
    /// # Errors
    /// Returns an error on I/O failure or a malformed/corrupt directory.
    pub fn load(dir: &Path) -> io::Result<Segment> {
        let vectors = vecstore::io::read_fvecs(&dir.join("vectors.fvecs"))?;
        let graph = graphs::GraphLayers::load(&dir.join("graph.hfg"))?;

        let mut r = io::BufReader::new(fs::File::open(dir.join("seg.meta"))?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != SEG_MAGIC {
            return Err(bad("not a segment meta file"));
        }
        let n = read_u32(&mut r)? as usize;
        if n != vectors.len() || n != graph.len() {
            return Err(bad("segment meta, vectors and graph disagree on size"));
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(read_u64(&mut r)?);
        }
        let mut dead = vec![0u8; n];
        r.read_exact(&mut dead)?;
        let dead: Vec<bool> = dead.into_iter().map(|b| b != 0).collect();
        let flash = read_flash_params(&mut r)?;
        let hnsw = read_hnsw_params(&mut r)?;

        Ok(Segment::restore(vectors, graph, ids, dead, flash, hnsw))
    }
}

impl LsmVectorIndex {
    /// Persists the whole index under `dir`. The memtable is flushed into
    /// a segment first, so the on-disk form is entirely immutable files.
    ///
    /// # Errors
    /// Returns any underlying I/O error. A partially written directory
    /// from a failed save will be rejected by [`Self::load`].
    pub fn save(&mut self, dir: &Path) -> io::Result<()> {
        self.flush();
        fs::create_dir_all(dir)?;
        let mut w = io::BufWriter::new(fs::File::create(dir.join("lsm.meta"))?);
        w.write_all(LSM_MAGIC)?;
        let config = *self.config();
        write_u32(&mut w, config.dim as u32)?;
        write_u32(&mut w, config.memtable_cap as u32)?;
        write_flash_params(&mut w, &config.flash)?;
        write_hnsw_params(&mut w, &config.hnsw)?;
        write_u64(&mut w, self.next_id())?;
        write_u32(&mut w, self.segments().len() as u32)?;
        w.flush()?;
        for (i, seg) in self.segments().iter().enumerate() {
            seg.save(&dir.join(format!("seg{i:03}")))?;
        }
        Ok(())
    }

    /// Reloads an index persisted by [`Self::save`].
    ///
    /// # Errors
    /// Returns an error on I/O failure or a malformed/corrupt directory.
    pub fn load(dir: &Path) -> io::Result<LsmVectorIndex> {
        let mut r = io::BufReader::new(fs::File::open(dir.join("lsm.meta"))?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != LSM_MAGIC {
            return Err(bad("not an LSM index directory"));
        }
        let dim = read_u32(&mut r)? as usize;
        let memtable_cap = read_u32(&mut r)? as usize;
        let flash = read_flash_params(&mut r)?;
        let hnsw = read_hnsw_params(&mut r)?;
        let next_id = read_u64(&mut r)?;
        let n_segments = read_u32(&mut r)? as usize;
        if dim == 0 || memtable_cap == 0 {
            return Err(bad("corrupt LSM meta"));
        }

        let config = LsmConfig {
            dim,
            memtable_cap,
            flash,
            hnsw,
        };
        let mut segments = Vec::with_capacity(n_segments);
        for i in 0..n_segments {
            segments.push(Segment::load(&dir.join(format!("seg{i:03}")))?);
        }
        Ok(LsmVectorIndex::restore(
            config,
            MemTable::new(dim),
            segments,
            next_id,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("hnsw_flash_lsm_persist")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn populated_index(n: usize, seed: u64) -> LsmVectorIndex {
        let mut config = LsmConfig::for_dim(16);
        config.memtable_cap = 200;
        config.hnsw = HnswParams {
            c: 48,
            r: 8,
            seed: 5,
        };
        let mut index = LsmVectorIndex::new(config);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..n {
            let v: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            index.insert(&v);
        }
        index
    }

    #[test]
    fn segment_save_load_round_trips_search() {
        let dir = tmp("segment_roundtrip");
        let (base, queries) =
            vecstore::generate(&vecstore::DatasetProfile::SsnppLike.spec(), 400, 5, 11);
        let ids: Vec<u64> = (0..400u64).map(|i| i * 2).collect();
        let mut seg = Segment::build(
            base,
            ids,
            FlashParams::auto(256),
            HnswParams {
                c: 48,
                r: 8,
                seed: 3,
            },
        );
        seg.delete(10);
        seg.save(&dir).unwrap();

        let loaded = Segment::load(&dir).unwrap();
        assert_eq!(loaded.len(), 400);
        assert_eq!(loaded.live(), 399);
        assert!(!loaded.contains(10));
        for qi in 0..queries.len() {
            let a = seg.search(queries.get(qi), 5, 64);
            let b = loaded.search(queries.get(qi), 5, 64);
            assert_eq!(
                a.iter().map(|h| h.id).collect::<Vec<_>>(),
                b.iter().map(|h| h.id).collect::<Vec<_>>(),
                "query {qi}"
            );
        }
    }

    #[test]
    fn lsm_save_load_preserves_state_and_ids() {
        let dir = tmp("lsm_roundtrip");
        let mut index = populated_index(500, 7);
        index.delete(3);
        index.delete(450); // still in the memtable
        index.save(&dir).unwrap();

        let loaded = LsmVectorIndex::load(&dir).unwrap();
        let (a, b) = (index.stats(), loaded.stats());
        assert_eq!(a.live, b.live);
        assert_eq!(b.memtable, 0, "on-disk form is fully sealed");
        assert!(!loaded.contains(3));
        assert!(!loaded.contains(450));
        assert!(loaded.contains(100));

        // New inserts continue the id sequence without collisions.
        let mut loaded = loaded;
        let fresh = loaded.insert(&[0.5; 16]);
        assert_eq!(fresh, 500);
    }

    #[test]
    fn lsm_search_agrees_after_reload() {
        let dir = tmp("lsm_search");
        let mut index = populated_index(400, 13);
        index.save(&dir).unwrap();
        let loaded = LsmVectorIndex::load(&dir).unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..10 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let a: Vec<u64> = index.search(&q, 5, 96).iter().map(|h| h.id).collect();
            let b: Vec<u64> = loaded.search(&q, 5, 96).iter().map(|h| h.id).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn corrupt_meta_rejected() {
        let dir = tmp("corrupt");
        let mut index = populated_index(250, 3);
        index.save(&dir).unwrap();
        // Flip the magic.
        let meta = dir.join("lsm.meta");
        let mut bytes = fs::read(&meta).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&meta, &bytes).unwrap();
        assert!(LsmVectorIndex::load(&dir).is_err());
    }

    #[test]
    fn missing_segment_dir_rejected() {
        let dir = tmp("missing_seg");
        let mut index = populated_index(250, 5);
        index.save(&dir).unwrap();
        fs::remove_dir_all(dir.join("seg000")).unwrap();
        assert!(LsmVectorIndex::load(&dir).is_err());
    }
}
