//! An immutable, Flash-indexed data segment with tombstone deletes.

use crate::Hit;
use flash::{FlashHnsw, FlashParams, FlashProvider};
use graphs::{DistanceProvider, Hnsw, HnswParams};
use vecstore::VectorSet;

/// A sealed segment: an HNSW-Flash graph over one batch of vectors.
///
/// Segments are never modified structurally after sealing — deletes only
/// flip tombstones. The graph still *routes* through tombstoned vertices
/// (removing them would require the re-linking surgery LSM systems avoid),
/// so a segment's search quality decays as its dead fraction grows; the
/// decay is what [`crate::LsmVectorIndex::rebuild`] repairs.
pub struct Segment {
    index: FlashHnsw,
    /// External ids, indexed by the segment-local vector id.
    ids: Vec<u64>,
    dead: Vec<bool>,
    live: usize,
    flash: FlashParams,
    hnsw: HnswParams,
}

impl Segment {
    /// Seals `vectors` (with their external `ids`) into a Flash-indexed
    /// segment.
    ///
    /// # Panics
    /// Panics if `vectors` and `ids` disagree in length or are empty.
    pub fn build(vectors: VectorSet, ids: Vec<u64>, flash: FlashParams, hnsw: HnswParams) -> Self {
        assert_eq!(vectors.len(), ids.len(), "one external id per vector");
        assert!(!ids.is_empty(), "segments must be non-empty");
        let n = ids.len();
        let provider = FlashProvider::new(vectors, flash);
        let index = Hnsw::build(provider, hnsw);
        Self {
            index,
            ids,
            dead: vec![false; n],
            live: n,
            flash,
            hnsw,
        }
    }

    /// Reassembles a segment from persisted parts: the codec retrains
    /// deterministically from `flash` (same sample, same seed), and the
    /// graph payloads are rebuilt from the topology — used by
    /// [`Segment::load`](crate::Segment::load).
    ///
    /// # Panics
    /// Panics if the parts disagree on the vector count.
    pub fn restore(
        vectors: VectorSet,
        topology: graphs::GraphLayers,
        ids: Vec<u64>,
        dead: Vec<bool>,
        flash: FlashParams,
        hnsw: HnswParams,
    ) -> Self {
        assert_eq!(vectors.len(), ids.len(), "one external id per vector");
        assert_eq!(ids.len(), dead.len(), "one tombstone slot per vector");
        let provider = FlashProvider::new(vectors, flash);
        let index = Hnsw::from_frozen(provider, hnsw, &topology);
        let live = dead.iter().filter(|&&d| !d).count();
        Self {
            index,
            ids,
            dead,
            live,
            flash,
            hnsw,
        }
    }

    /// The raw vectors the segment covers (persisted as fvecs).
    pub fn base_vectors(&self) -> &VectorSet {
        self.index.provider().base()
    }

    /// Freezes the graph topology (persisted via `graphs::persist`).
    pub fn topology(&self) -> graphs::GraphLayers {
        self.index.freeze()
    }

    /// External ids by local id.
    pub fn external_ids(&self) -> &[u64] {
        &self.ids
    }

    /// Tombstone flags by local id.
    pub fn tombstones(&self) -> &[bool] {
        &self.dead
    }

    /// The Flash parameters the segment was coded with.
    pub fn flash_params(&self) -> &FlashParams {
        &self.flash
    }

    /// The HNSW parameters the segment was built with.
    pub fn hnsw_params(&self) -> &HnswParams {
        &self.hnsw
    }

    /// Total vectors in the segment (live + tombstoned).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the segment holds no vectors (never true post-build).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Live vector count.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Tombstoned vector count.
    pub fn dead(&self) -> usize {
        self.ids.len() - self.live
    }

    /// Whether `id` is present and live here.
    pub fn contains(&self, id: u64) -> bool {
        self.local_of(id).is_some()
    }

    /// Tombstones `id` if live; returns whether it did.
    pub fn delete(&mut self, id: u64) -> bool {
        if let Some(local) = self.local_of(id) {
            self.dead[local] = true;
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn local_of(&self, id: u64) -> Option<usize> {
        self.ids
            .iter()
            .enumerate()
            .position(|(i, &eid)| eid == id && !self.dead[i])
    }

    /// k-NN over the live vectors: a filtered beam search on the Flash
    /// graph followed by exact rescoring of the surviving candidates.
    ///
    /// The rerank pool is `ef` wide (not `k`): quantized distances tie
    /// heavily, and a pool as large as the beam keeps a consolidated
    /// single-segment index as accurate as a many-segment fan-out whose
    /// union of per-segment pools is implicitly wide.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        if self.live == 0 {
            return Vec::new();
        }
        let dead = &self.dead;
        let accept = move |lid: u32| !dead[lid as usize];
        let pool = ef.max(k.max(1) * 2);
        let found = self.index.search_filtered(query, pool, ef, &accept);
        let base = self.index.provider().base();
        let mut hits: Vec<Hit> = found
            .into_iter()
            .map(|r| Hit {
                id: self.ids[r.id as usize],
                dist: simdops::l2_sq(query, base.get(r.id as usize)),
            })
            .collect();
        hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }

    /// Copies the live `(id, vector)` pairs out (rebuild input).
    pub fn export_live(&self) -> (VectorSet, Vec<u64>) {
        let base = self.index.provider().base();
        let mut out = VectorSet::with_capacity(base.dim(), self.live);
        let mut ids = Vec::with_capacity(self.live);
        for (i, v) in base.iter().enumerate() {
            if !self.dead[i] {
                out.push(v);
                ids.push(self.ids[i]);
            }
        }
        (out, ids)
    }

    /// Index bytes (graph + Flash codes + id map + tombstones).
    pub fn bytes(&self) -> usize {
        self.index.index_bytes() + self.ids.len() * 8 + self.dead.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::{generate, DatasetProfile};

    fn small_segment(n: usize, seed: u64) -> (Segment, VectorSet) {
        let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), n, 8, seed);
        let ids: Vec<u64> = (0..n as u64).map(|i| i + 1000).collect();
        let seg = Segment::build(
            base,
            ids,
            FlashParams::auto(256),
            HnswParams {
                c: 48,
                r: 8,
                seed: 7,
            },
        );
        (seg, queries)
    }

    #[test]
    fn search_returns_external_ids() {
        let (seg, queries) = small_segment(300, 1);
        let hits = seg.search(queries.get(0), 5, 48);
        assert_eq!(hits.len(), 5);
        for h in &hits {
            assert!(
                h.id >= 1000 && h.id < 1300,
                "unexpected external id {}",
                h.id
            );
        }
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist, "hits must be distance-sorted");
        }
    }

    #[test]
    fn delete_excludes_from_results() {
        let (mut seg, queries) = small_segment(300, 2);
        let q = queries.get(0);
        let top = seg.search(q, 1, 64)[0].id;
        assert!(seg.delete(top));
        assert!(!seg.contains(top));
        assert_eq!(seg.dead(), 1);
        let after = seg.search(q, 5, 64);
        assert!(after.iter().all(|h| h.id != top), "deleted id resurfaced");
    }

    #[test]
    fn delete_unknown_id_is_noop() {
        let (mut seg, _) = small_segment(200, 3);
        assert!(!seg.delete(99_999));
        assert_eq!(seg.live(), 200);
    }

    #[test]
    fn export_live_skips_tombstones() {
        let (mut seg, _) = small_segment(200, 4);
        seg.delete(1000);
        seg.delete(1001);
        let (vectors, ids) = seg.export_live();
        assert_eq!(vectors.len(), 198);
        assert_eq!(ids.len(), 198);
        assert!(!ids.contains(&1000));
        assert!(!ids.contains(&1001));
    }

    #[test]
    fn all_deleted_segment_returns_empty() {
        let (mut seg, queries) = small_segment(64, 5);
        for id in 1000..1064 {
            seg.delete(id);
        }
        assert_eq!(seg.live(), 0);
        assert!(seg.search(queries.get(0), 3, 32).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_segment_rejected() {
        let _ = Segment::build(
            VectorSet::new(4),
            Vec::new(),
            FlashParams::auto(4),
            HnswParams::default(),
        );
    }
}
