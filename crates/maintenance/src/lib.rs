//! Index maintenance under continuous updates — the workload that makes
//! construction speed a user-facing metric.
//!
//! The paper's introduction motivates Flash with the *reconstruction
//! bottleneck* of modern vector databases: data and embedding models update
//! continuously, systems absorb updates with an LSM-style pipeline
//! (AnalyticDB-V, Milvus, SPFresh), avoiding rebuilds degrades accuracy
//! (*"from 0.95 to 0.88 after 20 update cycles"*), and the periodic rebuild
//! must fit an overnight window that full-precision HNSW construction
//! blows through. This crate implements that pipeline end to end so the
//! claim can be measured:
//!
//! * [`MemTable`] — the mutable write buffer; brute-force searched.
//! * [`Segment`] — an immutable HNSW-Flash index over a sealed batch, with
//!   tombstone deletes (search filters dead vertices but the graph keeps
//!   routing through them — the structural decay that erodes recall).
//! * [`LsmVectorIndex`] — the user-facing index: inserts go to the
//!   memtable and spill into sealed segments; deletes tombstone; searches
//!   fan out across memtable + segments and merge; [`LsmVectorIndex::rebuild`]
//!   compacts every live vector into one fresh segment (the overnight
//!   rebuild whose cost Flash attacks).
//! * [`cycles`] — the update-cycle simulator behind the
//!   `ext2_update_cycles` experiment binary.
//!
//! ```
//! use maintenance::{LsmConfig, LsmVectorIndex};
//!
//! let mut config = LsmConfig::for_dim(8);
//! config.memtable_cap = 64;
//! let mut index = LsmVectorIndex::new(config);
//!
//! let a = index.insert(&[0.0; 8]);
//! let b = index.insert(&[1.0; 8]);
//! assert_eq!(index.search(&[0.9; 8], 1, 16)[0].id, b);
//!
//! index.delete(a);
//! let report = index.rebuild(); // the "overnight" compaction
//! assert_eq!(report.vectors, 1);
//! assert!(index.contains(b) && !index.contains(a));
//! ```

pub mod cycles;
pub mod lsm;
pub mod memtable;
pub mod persist;
pub mod segment;

pub use cycles::{simulate_cycles, CyclePoint, CycleWorkload};
pub use lsm::{LsmConfig, LsmStats, LsmVectorIndex, RebuildReport};
pub use memtable::MemTable;
pub use segment::Segment;

/// The workspace-wide search hit type (re-exported from `graphs`): for
/// LSM searches `id` is the stable external id and `dist` the exact
/// (full-precision) squared L2 distance.
pub use graphs::Hit;
