//! The update-cycle simulator: measures how search quality decays when
//! rebuilds are skipped and what a periodic rebuild costs.
//!
//! One *cycle* replaces a fraction of the corpus: `churn` of the live
//! vectors are deleted and the same number of fresh vectors inserted (the
//! paper's motivating scenario of continuous data/model updates). After
//! each cycle the simulator measures recall@k against the *current* live
//! ground truth, so the number directly tracks what a user would see.

use crate::lsm::{LsmConfig, LsmVectorIndex};
use crate::Hit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use vecstore::VectorSet;

/// Workload description for [`simulate_cycles`].
#[derive(Debug, Clone, Copy)]
pub struct CycleWorkload {
    /// Initial corpus size.
    pub n: usize,
    /// Fraction of live vectors replaced each cycle (e.g. `0.05`).
    pub churn: f64,
    /// Number of update cycles.
    pub cycles: usize,
    /// Queries per measurement.
    pub queries: usize,
    /// Recall@k.
    pub k: usize,
    /// Beam width for measurement searches.
    pub ef: usize,
    /// Rebuild every `rebuild_every` cycles; `0` disables rebuilds.
    pub rebuild_every: usize,
    /// RNG seed.
    pub seed: u64,
}

/// One measured point of the cycle simulation.
#[derive(Debug, Clone, Copy)]
pub struct CyclePoint {
    /// Cycle number (0 = right after the initial load).
    pub cycle: usize,
    /// Recall@k against the live ground truth.
    pub recall: f64,
    /// Mean search latency over the measurement queries.
    pub latency: Duration,
    /// Segments serving queries at measurement time.
    pub segments: usize,
    /// Tombstoned vertices still in graphs.
    pub dead: usize,
    /// Time spent rebuilding during this cycle (zero when none ran).
    pub rebuild_time: Duration,
}

/// Runs the update-cycle workload over a generator of fresh vectors and
/// returns one [`CyclePoint`] per cycle (plus the initial point 0).
pub fn simulate_cycles(
    config: LsmConfig,
    workload: CycleWorkload,
    mut fresh: impl FnMut(&mut SmallRng) -> Vec<f32>,
) -> Vec<CyclePoint> {
    assert!(workload.n > 0, "empty initial corpus");
    assert!(
        (0.0..=1.0).contains(&workload.churn),
        "churn must be a fraction"
    );
    let mut rng = SmallRng::seed_from_u64(workload.seed);
    let mut index = LsmVectorIndex::new(config);
    let mut live_ids: Vec<u64> = Vec::with_capacity(workload.n);
    let mut vectors_by_id: Vec<(u64, Vec<f32>)> = Vec::with_capacity(workload.n);

    for _ in 0..workload.n {
        let v = fresh(&mut rng);
        let id = index.insert(&v);
        live_ids.push(id);
        vectors_by_id.push((id, v));
    }
    index.flush();

    let mut points = Vec::with_capacity(workload.cycles + 1);
    points.push(measure(
        &index,
        &vectors_by_id,
        &workload,
        &mut rng,
        0,
        Duration::ZERO,
    ));

    let per_cycle = ((workload.n as f64 * workload.churn).round() as usize).max(1);
    for cycle in 1..=workload.cycles {
        // Delete `per_cycle` random live vectors…
        for _ in 0..per_cycle {
            if live_ids.is_empty() {
                break;
            }
            let pick = rng.gen_range(0..live_ids.len());
            let id = live_ids.swap_remove(pick);
            index.delete(id);
            vectors_by_id.retain(|(eid, _)| *eid != id);
        }
        // …and insert the same number of fresh ones.
        for _ in 0..per_cycle {
            let v = fresh(&mut rng);
            let id = index.insert(&v);
            live_ids.push(id);
            vectors_by_id.push((id, v));
        }
        index.flush();

        let rebuild_time = if workload.rebuild_every > 0 && cycle % workload.rebuild_every == 0 {
            index.rebuild().duration
        } else {
            Duration::ZERO
        };

        points.push(measure(
            &index,
            &vectors_by_id,
            &workload,
            &mut rng,
            cycle,
            rebuild_time,
        ));
    }
    points
}

/// Measures recall@k and latency over `workload.queries` random live
/// vectors perturbed into queries, with exact ground truth by linear scan.
fn measure(
    index: &LsmVectorIndex,
    live: &[(u64, Vec<f32>)],
    workload: &CycleWorkload,
    rng: &mut SmallRng,
    cycle: usize,
    rebuild_time: Duration,
) -> CyclePoint {
    let mut hit = 0usize;
    let mut total = 0usize;
    let mut elapsed = Duration::ZERO;
    for _ in 0..workload.queries {
        // Query = a live vector plus small noise, so ground truth is
        // non-trivial but anchored to the current corpus.
        let (_, anchor) = &live[rng.gen_range(0..live.len())];
        let q: Vec<f32> = anchor
            .iter()
            .map(|&x| x + rng.gen_range(-0.05..0.05f32))
            .collect();

        let truth = exact_topk(live, &q, workload.k);
        let start = std::time::Instant::now();
        let found = index.search(&q, workload.k, workload.ef);
        elapsed += start.elapsed();
        let found_ids: Vec<u64> = found.iter().map(|h| h.id).collect();
        total += truth.len();
        hit += truth.iter().filter(|t| found_ids.contains(&t.id)).count();
    }
    let stats = index.stats();
    CyclePoint {
        cycle,
        recall: if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        },
        latency: elapsed / workload.queries.max(1) as u32,
        segments: stats.segments,
        dead: stats.dead,
        rebuild_time,
    }
}

/// Exact k-NN over the live `(id, vector)` pairs.
fn exact_topk(live: &[(u64, Vec<f32>)], q: &[f32], k: usize) -> Vec<Hit> {
    let mut all: Vec<Hit> = live
        .iter()
        .map(|(id, v)| Hit {
            id: *id,
            dist: simdops::l2_sq(q, v),
        })
        .collect();
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

/// Convenience generator: clustered Gaussian vectors matching the dataset
/// profiles used across the experiment suite.
pub fn gaussian_generator(dim: usize) -> impl FnMut(&mut SmallRng) -> Vec<f32> {
    // A handful of fixed cluster centers; fresh vectors sample one center
    // plus noise, so the distribution stays stationary across cycles.
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|c| {
            let mut r = SmallRng::seed_from_u64(0xC0FFEE ^ c);
            (0..dim).map(|_| r.gen_range(-1.0..1.0f32)).collect()
        })
        .collect();
    move |rng: &mut SmallRng| {
        let c = &centers[rng.gen_range(0..centers.len())];
        c.iter()
            .map(|&x| x + rng.gen_range(-0.25..0.25f32))
            .collect()
    }
}

/// Keeps `VectorSet` in the public surface for callers that already hold a
/// dataset and want to drive cycles from it (sequential draws, wrap-around).
pub fn dataset_generator(data: VectorSet) -> impl FnMut(&mut SmallRng) -> Vec<f32> {
    let mut next = 0usize;
    move |_rng: &mut SmallRng| {
        let v = data.get(next % data.len()).to_vec();
        next += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(cycles: usize, rebuild_every: usize) -> CycleWorkload {
        CycleWorkload {
            n: 600,
            churn: 0.10,
            cycles,
            queries: 12,
            k: 5,
            ef: 48,
            rebuild_every,
            seed: 42,
        }
    }

    fn config() -> LsmConfig {
        let mut c = LsmConfig::for_dim(16);
        c.memtable_cap = 256;
        c.hnsw = graphs::HnswParams {
            c: 48,
            r: 8,
            seed: 9,
        };
        c
    }

    #[test]
    fn produces_one_point_per_cycle_plus_initial() {
        let points = simulate_cycles(config(), workload(4, 0), gaussian_generator(16));
        assert_eq!(points.len(), 5);
        assert_eq!(points[0].cycle, 0);
        assert_eq!(points[4].cycle, 4);
    }

    #[test]
    fn initial_recall_is_high() {
        let points = simulate_cycles(config(), workload(0, 0), gaussian_generator(16));
        assert!(
            points[0].recall >= 0.85,
            "initial recall {}",
            points[0].recall
        );
    }

    #[test]
    fn without_rebuild_segments_and_tombstones_accumulate() {
        let points = simulate_cycles(config(), workload(6, 0), gaussian_generator(16));
        let last = points.last().unwrap();
        assert!(last.segments > points[0].segments, "segments must grow");
        assert!(last.dead > 0, "tombstones must accumulate");
    }

    #[test]
    fn rebuild_resets_segments_and_tombstones() {
        let points = simulate_cycles(config(), workload(4, 2), gaussian_generator(16));
        // Cycles 2 and 4 rebuild: one segment, zero tombstones afterwards.
        for p in points.iter().filter(|p| p.cycle > 0 && p.cycle % 2 == 0) {
            assert_eq!(p.segments, 1, "cycle {}: {} segments", p.cycle, p.segments);
            assert_eq!(p.dead, 0, "cycle {}: {} tombstones", p.cycle, p.dead);
            assert!(p.rebuild_time > Duration::ZERO);
        }
    }

    #[test]
    fn rebuilt_index_maintains_recall() {
        let with = simulate_cycles(config(), workload(6, 2), gaussian_generator(16));
        let last = with.last().unwrap();
        assert!(last.recall >= 0.80, "post-rebuild recall {}", last.recall);
    }

    #[test]
    fn dataset_generator_cycles_through_data() {
        let mut data = VectorSet::new(2);
        data.push(&[1.0, 0.0]);
        data.push(&[0.0, 1.0]);
        let mut gen = dataset_generator(data);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(gen(&mut rng), vec![1.0, 0.0]);
        assert_eq!(gen(&mut rng), vec![0.0, 1.0]);
        assert_eq!(gen(&mut rng), vec![1.0, 0.0], "wraps around");
    }
}
