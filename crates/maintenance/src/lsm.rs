//! The user-facing LSM vector index: memtable + sealed segments + rebuild.

use crate::memtable::MemTable;
use crate::segment::Segment;
use crate::Hit;
use flash::FlashParams;
use graphs::HnswParams;
use std::time::{Duration, Instant};
use vecstore::VectorSet;

/// Configuration of the LSM pipeline.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Memtable capacity; reaching it seals the buffer into a segment.
    pub memtable_cap: usize,
    /// Flash coding parameters for sealed segments.
    pub flash: FlashParams,
    /// HNSW construction parameters for sealed segments.
    pub hnsw: HnswParams,
}

impl LsmConfig {
    /// Defaults scaled for tests and examples: a 2 048-vector memtable and
    /// the paper's tuned Flash settings for `dim`.
    pub fn for_dim(dim: usize) -> Self {
        Self {
            dim,
            memtable_cap: 2048,
            flash: FlashParams::auto(dim),
            hnsw: HnswParams {
                c: 96,
                r: 12,
                seed: 0x11FE,
            },
        }
    }
}

/// Point-in-time shape of the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmStats {
    /// Sealed segments currently serving queries.
    pub segments: usize,
    /// Live vectors across segments + memtable.
    pub live: usize,
    /// Tombstoned vectors still occupying graph vertices.
    pub dead: usize,
    /// Vectors in the mutable buffer.
    pub memtable: usize,
}

/// Outcome of a rebuild (the paper's "overnight reconstruction").
#[derive(Debug, Clone, Copy)]
pub struct RebuildReport {
    /// Wall-clock spent rebuilding (dominated by Flash construction).
    pub duration: Duration,
    /// Live vectors compacted into the new segment.
    pub vectors: usize,
    /// Tombstones reclaimed.
    pub reclaimed: usize,
}

/// An LSM-maintained ANN index over Flash segments.
///
/// Inserts are `O(1)` appends until the memtable seals; deletes tombstone
/// in place; searches fan out over the memtable scan and a filtered graph
/// search per segment, merging by exact distance. Over many update cycles
/// the segment count and tombstone fraction grow and search quality decays;
/// [`Self::rebuild`] compacts everything into one fresh segment, which is
/// exactly the operation whose cost determines whether the maintenance
/// window fits — and which Flash accelerates by an order of magnitude.
pub struct LsmVectorIndex {
    config: LsmConfig,
    memtable: MemTable,
    segments: Vec<Segment>,
    next_id: u64,
    generation: u64,
}

impl LsmVectorIndex {
    /// An empty index.
    pub fn new(config: LsmConfig) -> Self {
        assert!(
            config.memtable_cap >= 1,
            "memtable capacity must be positive"
        );
        Self {
            memtable: MemTable::new(config.dim),
            segments: Vec::new(),
            next_id: 0,
            generation: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Reassembles an index from persisted parts (see
    /// [`Self::load`](LsmVectorIndex::load)).
    pub fn restore(
        config: LsmConfig,
        memtable: MemTable,
        segments: Vec<Segment>,
        next_id: u64,
    ) -> Self {
        Self {
            config,
            memtable,
            segments,
            next_id,
            generation: 0,
        }
    }

    /// Monotone mutation counter: bumped by every operation that can change
    /// search results ([`Self::insert`], [`Self::delete`], [`Self::flush`],
    /// [`Self::rebuild`]). Result caches key their entries to this value and
    /// treat a bump as wholesale invalidation (see `serving::QueryCache`).
    /// Not persisted: a restored index restarts at 0, which is safe because
    /// caches built over the old process are gone with it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The sealed segments, oldest first.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The next external id that [`Self::insert`] will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Inserts a vector, returning its stable external id. Seals the
    /// memtable into a segment when it reaches capacity.
    ///
    /// # Panics
    /// Panics if `v`'s length differs from the configured dimension.
    pub fn insert(&mut self, v: &[f32]) -> u64 {
        assert_eq!(v.len(), self.config.dim, "dimension mismatch");
        let id = self.next_id;
        self.next_id += 1;
        self.generation += 1;
        self.memtable.insert(id, v);
        if self.memtable.len() >= self.config.memtable_cap {
            self.flush();
        }
        id
    }

    /// Tombstones `id` wherever it lives; returns whether it was found.
    pub fn delete(&mut self, id: u64) -> bool {
        let deleted = self.memtable.delete(id) || self.segments.iter_mut().any(|s| s.delete(id));
        if deleted {
            self.generation += 1;
        }
        deleted
    }

    /// Whether `id` is live anywhere.
    pub fn contains(&self, id: u64) -> bool {
        self.memtable.contains(id) || self.segments.iter().any(|s| s.contains(id))
    }

    /// k-NN across memtable and all segments, merged by exact distance.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        let mut hits = self.memtable.search(query, k);
        for seg in &self.segments {
            hits.extend(seg.search(query, k, ef));
        }
        hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        hits.dedup_by_key(|h| h.id);
        hits.truncate(k);
        hits
    }

    /// Seals the memtable into a segment (no-op when it holds no live
    /// vectors).
    pub fn flush(&mut self) {
        if self.memtable.live() == 0 {
            // Nothing worth sealing; clear any all-tombstone residue.
            let _ = self.memtable.drain_live();
            return;
        }
        let (vectors, ids) = self.memtable.drain_live();
        // Sealing re-encodes exact memtable vectors into a compressed
        // segment, which can shift reported distances — invalidate caches.
        self.generation += 1;
        self.segments.push(Segment::build(
            vectors,
            ids,
            self.config.flash,
            self.config.hnsw,
        ));
    }

    /// Compacts every live vector (segments + memtable) into one fresh
    /// Flash segment, dropping all tombstones. This is the periodic
    /// reconstruction the paper's introduction describes; its duration is
    /// dominated by graph construction, so Flash shrinks the maintenance
    /// window directly.
    pub fn rebuild(&mut self) -> RebuildReport {
        let start = Instant::now();
        self.generation += 1;
        let reclaimed: usize = self.segments.iter().map(|s| s.dead()).sum();
        let mut all = VectorSet::new(self.config.dim);
        let mut ids = Vec::new();
        for seg in &self.segments {
            let (v, i) = seg.export_live();
            all.extend_from(&v);
            ids.extend(i);
        }
        for (id, v) in self.memtable.iter_live() {
            all.push(v);
            ids.push(id);
        }
        self.segments.clear();
        let _ = self.memtable.drain_live();
        let vectors = ids.len();
        if vectors > 0 {
            self.segments.push(Segment::build(
                all,
                ids,
                self.config.flash,
                self.config.hnsw,
            ));
        }
        RebuildReport {
            duration: start.elapsed(),
            vectors,
            reclaimed,
        }
    }

    /// Current shape of the index.
    pub fn stats(&self) -> LsmStats {
        LsmStats {
            segments: self.segments.len(),
            live: self.memtable.live() + self.segments.iter().map(|s| s.live()).sum::<usize>(),
            dead: self.segments.iter().map(|s| s.dead()).sum(),
            memtable: self.memtable.len(),
        }
    }

    /// Total bytes across memtable and segments.
    pub fn bytes(&self) -> usize {
        self.memtable.bytes() + self.segments.iter().map(|s| s.bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn config(dim: usize, cap: usize) -> LsmConfig {
        let mut c = LsmConfig::for_dim(dim);
        c.memtable_cap = cap;
        c.hnsw = HnswParams {
            c: 48,
            r: 8,
            seed: 3,
        };
        c
    }

    fn random_vec(rng: &mut SmallRng, dim: usize) -> Vec<f32> {
        (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn ids_are_stable_and_monotonic() {
        let mut index = LsmVectorIndex::new(config(8, 64));
        let mut rng = SmallRng::seed_from_u64(1);
        let a = index.insert(&random_vec(&mut rng, 8));
        let b = index.insert(&random_vec(&mut rng, 8));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert!(index.contains(a));
    }

    #[test]
    fn memtable_seals_at_capacity() {
        let mut index = LsmVectorIndex::new(config(8, 128));
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..300 {
            index.insert(&random_vec(&mut rng, 8));
        }
        let stats = index.stats();
        assert_eq!(stats.segments, 2, "two seals at cap 128 after 300 inserts");
        assert_eq!(stats.live, 300);
        assert_eq!(stats.memtable, 300 - 256);
    }

    #[test]
    fn search_spans_memtable_and_segments() {
        let mut index = LsmVectorIndex::new(config(4, 64));
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..80 {
            index.insert(&random_vec(&mut rng, 4));
        }
        // 64 sealed + 16 in memtable. Plant one distinctive vector in each.
        let sealed_probe = index.search(&[0.0; 4], 1, 32); // whatever is closest
        assert!(!sealed_probe.is_empty());
        let special = index.insert(&[9.0, 9.0, 9.0, 9.0]);
        let hits = index.search(&[9.0, 9.0, 9.0, 9.0], 1, 32);
        assert_eq!(hits[0].id, special, "memtable vector must be findable");
    }

    #[test]
    fn delete_across_tiers() {
        let mut index = LsmVectorIndex::new(config(4, 32));
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ids = Vec::new();
        for _ in 0..48 {
            ids.push(index.insert(&random_vec(&mut rng, 4)));
        }
        // ids[0] is sealed; the last insert is still buffered.
        assert!(index.delete(ids[0]));
        assert!(index.delete(*ids.last().unwrap()));
        assert!(!index.delete(9999));
        assert!(!index.contains(ids[0]));
        let stats = index.stats();
        assert_eq!(stats.live, 46);
    }

    #[test]
    fn rebuild_compacts_to_single_segment() {
        let mut index = LsmVectorIndex::new(config(8, 64));
        let mut rng = SmallRng::seed_from_u64(5);
        let mut ids = Vec::new();
        for _ in 0..200 {
            ids.push(index.insert(&random_vec(&mut rng, 8)));
        }
        for id in ids.iter().take(40) {
            index.delete(*id);
        }
        let before = index.stats();
        assert!(before.segments >= 3);
        assert_eq!(before.dead + before.live, 200);

        let report = index.rebuild();
        assert_eq!(report.vectors, 160);
        let after = index.stats();
        assert_eq!(after.segments, 1);
        assert_eq!(after.live, 160);
        assert_eq!(after.dead, 0);

        // Deleted ids stay gone; survivors stay findable.
        assert!(!index.contains(ids[0]));
        assert!(index.contains(ids[100]));
    }

    #[test]
    fn rebuild_of_empty_index_is_harmless() {
        let mut index = LsmVectorIndex::new(config(4, 16));
        let report = index.rebuild();
        assert_eq!(report.vectors, 0);
        assert_eq!(index.stats().segments, 0);
        assert!(index.search(&[0.0; 4], 3, 16).is_empty());
    }

    #[test]
    fn search_never_returns_tombstoned_ids() {
        let mut index = LsmVectorIndex::new(config(4, 64));
        let mut rng = SmallRng::seed_from_u64(6);
        let mut ids = Vec::new();
        for _ in 0..128 {
            ids.push(index.insert(&random_vec(&mut rng, 4)));
        }
        for id in ids.iter().step_by(3) {
            index.delete(*id);
        }
        let q = random_vec(&mut rng, 4);
        for hit in index.search(&q, 10, 64) {
            assert!(index.contains(hit.id), "dead id {} returned", hit.id);
        }
    }
}
