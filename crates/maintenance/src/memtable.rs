//! The mutable write buffer of the LSM pipeline.

use crate::Hit;
use vecstore::VectorSet;

/// An append-only buffer of recent inserts, searched by brute force.
///
/// Fresh vectors live here until the buffer reaches the configured
/// capacity, at which point [`crate::LsmVectorIndex`] seals it into an
/// immutable Flash-indexed [`crate::Segment`]. Brute force is the right
/// structure at this scale: the buffer is small and fully cache-resident,
/// so a linear scan beats graph overhead and needs no maintenance.
pub struct MemTable {
    vectors: VectorSet,
    ids: Vec<u64>,
    dead: Vec<bool>,
    live: usize,
}

impl MemTable {
    /// An empty buffer for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        Self {
            vectors: VectorSet::new(dim),
            ids: Vec::new(),
            dead: Vec::new(),
            live: 0,
        }
    }

    /// Number of buffered vectors (live + tombstoned).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the buffer holds no vectors at all.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of live (non-deleted) vectors.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Appends a vector under an external id.
    pub fn insert(&mut self, id: u64, v: &[f32]) {
        self.vectors.push(v);
        self.ids.push(id);
        self.dead.push(false);
        self.live += 1;
    }

    /// Tombstones `id` if present and live; returns whether it did.
    pub fn delete(&mut self, id: u64) -> bool {
        for (i, &eid) in self.ids.iter().enumerate() {
            if eid == id && !self.dead[i] {
                self.dead[i] = true;
                self.live -= 1;
                return true;
            }
        }
        false
    }

    /// Whether `id` is present and live.
    pub fn contains(&self, id: u64) -> bool {
        self.ids
            .iter()
            .enumerate()
            .any(|(i, &eid)| eid == id && !self.dead[i])
    }

    /// Brute-force k-NN over the live vectors.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self
            .vectors
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.dead[*i])
            .map(|(i, v)| Hit {
                id: self.ids[i],
                dist: simdops::l2_sq(query, v),
            })
            .collect();
        hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }

    /// Drains the live contents for sealing, leaving the buffer empty.
    /// Returns `(vectors, ids)` with tombstoned entries dropped.
    pub fn drain_live(&mut self) -> (VectorSet, Vec<u64>) {
        let mut out = VectorSet::with_capacity(self.vectors.dim(), self.live);
        let mut ids = Vec::with_capacity(self.live);
        for (i, v) in self.vectors.iter().enumerate() {
            if !self.dead[i] {
                out.push(v);
                ids.push(self.ids[i]);
            }
        }
        self.vectors = VectorSet::new(self.vectors.dim());
        self.ids.clear();
        self.dead.clear();
        self.live = 0;
        (out, ids)
    }

    /// Iterates over the live `(id, vector)` pairs.
    pub fn iter_live(&self) -> impl Iterator<Item = (u64, &[f32])> + '_ {
        self.vectors
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.dead[*i])
            .map(|(i, v)| (self.ids[i], v))
    }

    /// Bytes held by the buffer (vectors + ids + tombstones).
    pub fn bytes(&self) -> usize {
        self.vectors.payload_bytes() + self.ids.len() * 8 + self.dead.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(points: &[(u64, [f32; 2])]) -> MemTable {
        let mut t = MemTable::new(2);
        for (id, v) in points {
            t.insert(*id, v);
        }
        t
    }

    #[test]
    fn insert_search_finds_nearest() {
        let t = table_with(&[(10, [0.0, 0.0]), (11, [5.0, 5.0]), (12, [1.0, 0.0])]);
        let hits = t.search(&[0.9, 0.1], 2);
        assert_eq!(hits[0].id, 12);
        assert_eq!(hits[1].id, 10);
    }

    #[test]
    fn delete_hides_vector() {
        let mut t = table_with(&[(1, [0.0, 0.0]), (2, [1.0, 1.0])]);
        assert!(t.delete(1));
        assert!(!t.delete(1), "double delete must be a no-op");
        assert!(!t.contains(1));
        assert_eq!(t.live(), 1);
        let hits = t.search(&[0.0, 0.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 2);
    }

    #[test]
    fn drain_live_drops_tombstones_and_resets() {
        let mut t = table_with(&[(1, [0.0, 0.0]), (2, [1.0, 1.0]), (3, [2.0, 2.0])]);
        t.delete(2);
        let (vectors, ids) = t.drain_live();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(vectors.len(), 2);
        assert!(t.is_empty());
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn search_empty_returns_nothing() {
        let t = MemTable::new(4);
        assert!(t.search(&[0.0; 4], 3).is_empty());
    }

    #[test]
    fn bytes_grow_with_inserts() {
        let mut t = MemTable::new(8);
        let before = t.bytes();
        t.insert(1, &[0.5; 8]);
        assert!(t.bytes() > before);
    }
}
