//! Query-result caching with generation-based invalidation.
//!
//! [`QueryCache`] is an LRU (the generic `cachesim::Lru`) keyed by a
//! canonical hash of the query bytes plus every result-shaping
//! [`SearchRequest`] option. Entries are tagged with the **generation**
//! their response was computed under; mutating indexes bump their counter
//! (`maintenance::LsmVectorIndex::generation`) and a
//! [`QueryCache::set_generation`] / [`QueryCache::invalidate_all`] call
//! makes every older entry miss lazily — no eager scan.
//!
//! [`CachedIndex`] composes the cache with any [`AnnIndex`] (including a
//! `ShardedIndex`), serving repeated requests from memory.

use cachesim::Lru;
use engine::{AnnIndex, SearchRequest, SearchResponse};
use metrics::SpanKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hit/miss counters of a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the underlying search (includes
    /// generation-stale entries).
    pub misses: u64,
    /// Requests that bypassed the cache (predicate filters are opaque and
    /// cannot be hashed canonically).
    pub uncacheable: u64,
}

impl QueryCacheStats {
    /// Fraction of cacheable lookups served from memory, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The hashable, comparable canonical form of a cacheable request: the
/// query as **canonicalized** bit patterns plus every result-shaping
/// option. Stored in each entry so a 64-bit key collision is detected by
/// comparison instead of silently serving another query's results.
///
/// Canonicalization matters because f32 bit patterns are finer-grained
/// than distance semantics: `-0.0` and `0.0` compare equal in every
/// distance kernel (identical results), so they must share one cache
/// entry; NaN payloads are the opposite — a NaN query has no meaningful
/// result set at all, and the 2²² distinct NaN bit patterns would each
/// poison their own slot — so non-finite queries bypass the cache
/// entirely ([`QueryCacheStats::uncacheable`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CanonicalRequest {
    query_bits: Vec<u32>,
    k: usize,
    ef: usize,
    rerank: usize,
    label: Option<u32>,
    vbase_window: Option<usize>,
    /// `(epsilon0 bits, delta_d, seed)`.
    adsampling: Option<(u32, usize, u64)>,
}

/// The canonical bit pattern of one finite query component: `-0.0`
/// normalizes to `0.0` (they are the same point in every metric).
fn canonical_f32_bits(x: f32) -> u32 {
    if x == 0.0 {
        0.0f32.to_bits()
    } else {
        x.to_bits()
    }
}

impl CanonicalRequest {
    /// `None` for requests that must run uncached: predicate filters
    /// (closures have no canonical form) and non-finite queries (NaN/±∞
    /// have no meaningful result identity — see the type docs).
    fn of(request: &SearchRequest) -> Option<Self> {
        if request.filter.is_some() {
            return None;
        }
        if request.query.iter().any(|x| !x.is_finite()) {
            return None;
        }
        Some(Self {
            query_bits: request
                .query
                .iter()
                .map(|x| canonical_f32_bits(*x))
                .collect(),
            k: request.k,
            ef: request.ef,
            rerank: request.rerank,
            label: request.label,
            vbase_window: request.vbase_window,
            adsampling: request
                .adsampling
                .as_ref()
                .map(|o| (o.epsilon0.to_bits(), o.delta_d, o.seed)),
        })
    }

    fn hash64(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.query_bits.len());
        for &b in &self.query_bits {
            h.write_u32(b);
        }
        h.write_usize(self.k);
        h.write_usize(self.ef);
        h.write_usize(self.rerank);
        match self.label {
            None => h.write_u32(u32::MAX),
            Some(l) => {
                h.write_u32(1);
                h.write_u32(l);
            }
        }
        match self.vbase_window {
            None => h.write_usize(0),
            Some(w) => {
                h.write_usize(1);
                h.write_usize(w);
            }
        }
        match self.adsampling {
            None => h.write_u32(0),
            Some((eps, delta_d, seed)) => {
                h.write_u32(1);
                h.write_u32(eps);
                h.write_usize(delta_d);
                h.write_u64(seed);
            }
        }
        h.finish()
    }
}

/// Cached response plus the generation it was computed under and the
/// canonical request it answers (collision guard).
type Entry = (u64, CanonicalRequest, Arc<SearchResponse>);

/// An LRU over canonicalized search requests.
///
/// Thread-safe: lookups and inserts take one short mutex; generation and
/// counters are atomics.
pub struct QueryCache {
    lru: Mutex<Lru<u64, Entry>>,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    uncacheable: AtomicU64,
}

impl QueryCache {
    /// A cache holding at most `capacity` responses.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (use no cache instead of an empty one).
    pub fn new(capacity: usize) -> Self {
        Self {
            lru: Mutex::new(Lru::new(capacity)),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    /// The canonical cache key of `request`: an FNV-1a hash over the
    /// canonicalized query bits (`-0.0` = `0.0`) and every option that
    /// shapes the result set. Returns `None` for requests that always run
    /// uncached: predicate filters (closures have no canonical form) and
    /// non-finite queries (NaN bit patterns would poison distinct slots
    /// for meaningless result sets). The key is a
    /// fast index only: [`Self::get`] verifies the stored canonical
    /// request on every hit, so a 64-bit collision degrades to a miss,
    /// never to another query's results.
    pub fn key_of(request: &SearchRequest) -> Option<u64> {
        CanonicalRequest::of(request).map(|c| c.hash64())
    }

    /// The generation new entries are tagged with.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Invalidates every current entry by bumping the generation.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Adopts an external mutation counter (e.g.
    /// `LsmVectorIndex::generation()`): entries cached under a different
    /// value miss from now on.
    pub fn set_generation(&self, generation: u64) {
        self.generation.store(generation, Ordering::Release);
    }

    /// Looks `request` up under its `key`. A stale-generation entry is
    /// removed and reported as a miss; an entry whose stored canonical
    /// request differs (64-bit key collision) is left in place and
    /// reported as a miss.
    pub fn get(&self, key: u64, request: &SearchRequest) -> Option<Arc<SearchResponse>> {
        let canonical = CanonicalRequest::of(request)?;
        let current = self.generation();
        let mut lru = self.lru.lock().unwrap();
        let result = match lru.get(&key) {
            Some((generation, stored, response)) => {
                if *stored != canonical {
                    None // hash collision: the entry answers another request
                } else if *generation == current {
                    Some(Arc::clone(response))
                } else {
                    lru.remove(&key); // stale: reclaim the slot eagerly
                    None
                }
            }
            None => None,
        };
        drop(lru);
        if result.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Caches `response` as the answer to `request` under its `key`,
    /// tagged with the generation the response was **computed under**
    /// (read it via [`Self::generation`] *before* running the search). If
    /// the generation moved between the search and this insert — a
    /// mutation slipped in — the entry is born stale and will miss,
    /// instead of laundering pre-mutation results into the new
    /// generation. Filtered (uncacheable) requests are ignored.
    pub fn insert(
        &self,
        key: u64,
        request: &SearchRequest,
        computed_at: u64,
        response: Arc<SearchResponse>,
    ) {
        let Some(canonical) = CanonicalRequest::of(request) else {
            return;
        };
        debug_assert_eq!(canonical.hash64(), key, "key does not match request");
        self.lru
            .lock()
            .unwrap()
            .insert(key, (computed_at, canonical, response));
    }

    /// Records a request that bypassed the cache.
    fn note_uncacheable(&self) {
        self.uncacheable.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lru.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }
}

/// Any [`AnnIndex`] behind a [`QueryCache`]: repeated identical requests
/// are served from memory, everything else (and every filtered request)
/// passes through. Call [`Self::invalidate`] — or sync an external
/// generation with [`QueryCache::set_generation`] via [`Self::cache`] —
/// after the underlying data changes.
pub struct CachedIndex {
    inner: Arc<dyn AnnIndex>,
    cache: QueryCache,
}

impl CachedIndex {
    /// Wraps `inner` with a cache of `capacity` responses.
    pub fn new(inner: Arc<dyn AnnIndex>, capacity: usize) -> Self {
        Self {
            inner,
            cache: QueryCache::new(capacity),
        }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &Arc<dyn AnnIndex> {
        &self.inner
    }

    /// The cache (stats, generation control).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Drops every cached response (generation bump).
    pub fn invalidate(&self) {
        self.cache.invalidate_all();
    }

    /// The shared batch path: cache lookups first, then one inner
    /// `search_batch_timed` call over the deduplicated misses. Each
    /// query's reported duration is what *it* actually cost — the LRU
    /// lookup for hits, the lookup plus the inner index's own per-query
    /// measurement for misses (duplicates share the one inner search and
    /// its measured time).
    fn run_batch(&self, requests: &[SearchRequest]) -> Vec<(SearchResponse, Duration)> {
        let keys: Vec<Option<u64>> = requests.iter().map(QueryCache::key_of).collect();
        let computed_at = self.cache.generation();
        let mut responses: Vec<Option<SearchResponse>> = Vec::with_capacity(requests.len());
        let mut lookups: Vec<Duration> = Vec::with_capacity(requests.len());
        // For each missing request: its slot in the deduplicated miss list.
        let mut miss_slot: Vec<Option<usize>> = vec![None; requests.len()];
        let mut miss_requests: Vec<SearchRequest> = Vec::new();
        // Dedup on the full canonical request (not the 64-bit key), so a
        // key collision cannot merge two distinct queries.
        let mut slot_of_request: std::collections::HashMap<CanonicalRequest, usize> =
            std::collections::HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let t0 = Instant::now();
            let cached = match key {
                Some(key) => self.cache.get(*key, &requests[i]),
                None => {
                    self.cache.note_uncacheable();
                    None
                }
            };
            lookups.push(t0.elapsed());
            // A hit does no search work: its cost profile is all-zero, not
            // the profile the original miss paid (so coordinator-side
            // profile sums reconcile exactly with the work nodes performed).
            responses.push(cached.map(|c| {
                let mut response = (*c).clone();
                response.profile = metrics::QueryProfile::new();
                response
            }));
            if let Some(ctx) = &requests[i].trace {
                ctx.record_timed(
                    SpanKind::CacheLookup {
                        hit: responses[i].is_some(),
                    },
                    lookups[i].as_nanos() as u64,
                );
            }
            if responses[i].is_none() {
                let slot = match CanonicalRequest::of(&requests[i]) {
                    // Identical cacheable misses share one inner search.
                    Some(canonical) => *slot_of_request.entry(canonical).or_insert_with(|| {
                        miss_requests.push(requests[i].clone());
                        miss_requests.len() - 1
                    }),
                    None => {
                        miss_requests.push(requests[i].clone());
                        miss_requests.len() - 1
                    }
                };
                miss_slot[i] = Some(slot);
            }
        }
        if !miss_requests.is_empty() {
            // One shared Arc per fresh response: the cache insert clones
            // the Arc, not the hits, and only the returned copy is deep.
            let fresh: Vec<(Arc<SearchResponse>, Duration)> = self
                .inner
                .search_batch_timed(&miss_requests)
                .into_iter()
                .map(|(response, took)| (Arc::new(response), took))
                .collect();
            for (i, slot) in miss_slot.iter().enumerate() {
                if let Some(slot) = slot {
                    let (response, took) = &fresh[*slot];
                    if let Some(key) = keys[i] {
                        self.cache
                            .insert(key, &requests[i], computed_at, Arc::clone(response));
                    }
                    responses[i] = Some((**response).clone());
                    lookups[i] += *took;
                }
            }
        }
        responses
            .into_iter()
            .zip(lookups)
            .map(|(r, took)| (r.expect("every request answered"), took))
            .collect()
    }
}

impl AnnIndex for CachedIndex {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn search(&self, req: &SearchRequest) -> SearchResponse {
        let t0 = Instant::now();
        let Some(key) = QueryCache::key_of(req) else {
            self.cache.note_uncacheable();
            return self.inner.search(req);
        };
        if let Some(cached) = self.cache.get(key, req) {
            if let Some(ctx) = &req.trace {
                ctx.record_timed(
                    SpanKind::CacheLookup { hit: true },
                    t0.elapsed().as_nanos() as u64,
                );
            }
            // A hit does no search work: report an all-zero profile rather
            // than re-reporting the work the original miss paid.
            let mut response = (*cached).clone();
            response.profile = metrics::QueryProfile::new();
            return response;
        }
        if let Some(ctx) = &req.trace {
            ctx.record_timed(
                SpanKind::CacheLookup { hit: false },
                t0.elapsed().as_nanos() as u64,
            );
        }
        let computed_at = self.cache.generation();
        let response = self.inner.search(req);
        self.cache
            .insert(key, req, computed_at, Arc::new(response.clone()));
        response
    }

    /// Batch lookups hit the cache first; the misses (and every
    /// uncacheable request) are forwarded to the inner index in **one**
    /// `search_batch` call — preserving a sharded backend's cross-request
    /// fan-out instead of degrading to per-request scatter barriers — with
    /// duplicate cacheable misses searched once and fanned back out.
    fn search_batch(&self, requests: &[SearchRequest]) -> Vec<SearchResponse> {
        self.run_batch(requests)
            .into_iter()
            .map(|(response, _)| response)
            .collect()
    }

    /// Per-query latency through a cache is bimodal by design: hits cost
    /// one LRU lookup, misses cost the inner search. The timed batch
    /// reports exactly that — the lookup time for hits, the inner index's
    /// own per-query measurement (plus the lookup) for misses — instead of
    /// averaging both populations into one number.
    fn search_batch_timed(&self, requests: &[SearchRequest]) -> Vec<(SearchResponse, Duration)> {
        self.run_batch(requests)
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn export_graph(&self) -> Option<graphs::GraphLayers> {
        self.inner.export_graph()
    }
}

/// Minimal FNV-1a, enough for canonical request hashing (stable across
/// runs and platforms, unlike `DefaultHasher`).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    fn write_u32(&mut self, x: u32) {
        for b in x.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::AdSamplingOptions;

    fn req(k: usize) -> SearchRequest {
        SearchRequest::new(vec![1.0, 2.0, 3.0], k)
    }

    #[test]
    fn key_is_stable_and_option_sensitive() {
        let a = QueryCache::key_of(&req(5)).unwrap();
        assert_eq!(a, QueryCache::key_of(&req(5)).unwrap());
        for other in [
            req(6),                                          // k
            req(5).ef(256),                                  // ef
            req(5).rerank(4),                                // rerank
            req(5).label(0),                                 // label
            req(5).vbase(16),                                // vbase
            req(5).adsampling(AdSamplingOptions::default()), // adsampling
            SearchRequest::new(vec![1.0, 2.0, 3.5], 5),      // query bytes
        ] {
            assert_ne!(a, QueryCache::key_of(&other).unwrap(), "{other:?}");
        }
    }

    #[test]
    fn filtered_requests_are_uncacheable() {
        assert!(QueryCache::key_of(&req(5).filter(|_| true)).is_none());
    }

    #[test]
    fn negative_zero_shares_the_positive_zero_entry() {
        // -0.0 and 0.0 are the same point in every metric: identical
        // results, so they must share one cache entry.
        let pos = SearchRequest::new(vec![0.0, 1.0, 2.0], 5);
        let neg = SearchRequest::new(vec![-0.0, 1.0, 2.0], 5);
        let key = QueryCache::key_of(&pos).unwrap();
        assert_eq!(key, QueryCache::key_of(&neg).unwrap());
        let cache = QueryCache::new(4);
        cache.insert(
            key,
            &pos,
            cache.generation(),
            Arc::new(SearchResponse::default()),
        );
        assert!(
            cache.get(key, &neg).is_some(),
            "-0.0 query must hit the 0.0 entry, not occupy its own slot"
        );
    }

    #[test]
    fn non_finite_queries_bypass_the_cache() {
        for query in [
            vec![f32::NAN, 1.0],
            vec![1.0, f32::INFINITY],
            vec![f32::NEG_INFINITY, 0.0],
        ] {
            assert!(
                QueryCache::key_of(&SearchRequest::new(query.clone(), 3)).is_none(),
                "{query:?} must be uncacheable"
            );
        }
        // Through the CachedIndex they run (uncached) instead of poisoning
        // slots keyed by one of 2^22 NaN bit patterns.
        let mut set = vecstore::VectorSet::new(2);
        for i in 0..8 {
            set.push(&[i as f32, 0.0]);
        }
        let cached = CachedIndex::new(Arc::new(engine::FlatIndex::new(set)), 4);
        let nan_req = SearchRequest::new(vec![f32::NAN, 0.0], 2);
        let _ = cached.search(&nan_req);
        let _ = cached.search(&nan_req);
        let stats = cached.cache().stats();
        assert_eq!(stats.uncacheable, 2);
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert!(cached.cache().is_empty(), "no slot may be occupied");
    }

    #[test]
    fn hit_miss_and_generation_invalidation() {
        let cache = QueryCache::new(8);
        let r = req(5);
        let key = QueryCache::key_of(&r).unwrap();
        assert!(cache.get(key, &r).is_none()); // cold miss
        cache.insert(
            key,
            &r,
            cache.generation(),
            Arc::new(SearchResponse::default()),
        );
        assert!(cache.get(key, &r).is_some()); // hit
        cache.invalidate_all();
        assert!(cache.get(key, &r).is_none()); // stale entry discarded
        assert_eq!(cache.len(), 0, "stale slot reclaimed");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2)); // cold miss + stale miss
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn set_generation_adopts_external_counter() {
        let cache = QueryCache::new(4);
        let r = req(5);
        let key = QueryCache::key_of(&r).unwrap();
        cache.set_generation(7);
        cache.insert(
            key,
            &r,
            cache.generation(),
            Arc::new(SearchResponse::default()),
        );
        cache.set_generation(7); // unchanged: still valid
        assert!(cache.get(key, &r).is_some());
        cache.set_generation(8); // external mutation happened
        assert!(cache.get(key, &r).is_none());
    }

    #[test]
    fn stale_insert_cannot_launder_into_new_generation() {
        // A response computed under generation G but inserted after the
        // generation moved to G+1 must be born stale, not served as fresh.
        let cache = QueryCache::new(4);
        let r = req(5);
        let key = QueryCache::key_of(&r).unwrap();
        let computed_at = cache.generation();
        // ... the underlying search runs here, then a mutation slips in:
        cache.invalidate_all();
        cache.insert(key, &r, computed_at, Arc::new(SearchResponse::default()));
        assert!(
            cache.get(key, &r).is_none(),
            "pre-mutation result must miss"
        );
    }

    #[test]
    fn key_collision_misses_instead_of_serving_wrong_results() {
        // Simulate a 64-bit key collision: store request A's response,
        // then look a *different* request up under the same key. The
        // canonical-request comparison must reject it.
        let cache = QueryCache::new(4);
        let a = req(5);
        let b = req(5).ef(256); // distinct canonical form
        let key = QueryCache::key_of(&a).unwrap();
        cache.insert(
            key,
            &a,
            cache.generation(),
            Arc::new(SearchResponse::default()),
        );
        assert!(cache.get(key, &a).is_some(), "own request hits");
        assert!(
            cache.get(key, &b).is_none(),
            "colliding request must miss, not serve A's results"
        );
        assert!(
            cache.get(key, &a).is_some(),
            "the legitimate entry survives a collision miss"
        );
    }

    #[test]
    fn lru_eviction_caps_residency() {
        let cache = QueryCache::new(2);
        let requests: Vec<SearchRequest> = (1..=5).map(req).collect();
        for r in &requests {
            let key = QueryCache::key_of(r).unwrap();
            cache.insert(
                key,
                r,
                cache.generation(),
                Arc::new(SearchResponse::default()),
            );
        }
        assert_eq!(cache.len(), 2);
        let last = &requests[4];
        assert!(cache.get(QueryCache::key_of(last).unwrap(), last).is_some());
        let first = &requests[0];
        assert!(cache
            .get(QueryCache::key_of(first).unwrap(), first)
            .is_none());
    }
}
