//! Request batching with latency/throughput accounting.
//!
//! [`BatchExecutor`] queues [`SearchRequest`]s, coalesces them into
//! fixed-size batches, hands each batch to the index's
//! [`AnnIndex::search_batch`] (which a `ShardedIndex` fans out across its
//! worker pool), and reports per-query latency plus aggregate QPS through
//! the `metrics` crate.
//!
//! [`AdaptiveBatcher`] generalizes the close condition for online
//! serving: a batch executes when it reaches `batch_max` requests **or**
//! when its oldest request has waited `deadline` — whichever comes first
//! — so bursty traffic gets throughput-sized batches while a trickle is
//! never parked waiting for company. The event-driven front-end
//! ([`crate::distributed::EventServer`]) applies the same size-or-deadline
//! policy to wire requests.

use engine::{AnnIndex, SearchRequest, SearchResponse};
use metrics::{latency_summary, LatencySummary, QpsReport};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default batch size when the caller does not choose one.
pub const DEFAULT_BATCH_SIZE: usize = 32;

/// Outcome of one drained workload: responses in submission order plus the
/// latency/throughput accounting.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// One response per submitted request, in submission order.
    pub responses: Vec<SearchResponse>,
    /// Per-query latency samples in milliseconds, each query timed
    /// **individually** ([`AnnIndex::search_batch_timed`]): a sharded
    /// backend reports each query's own critical path, a caching backend
    /// the lookup time for hits. Percentiles therefore reflect per-query
    /// cost — a single slow query shows up at p99 instead of being
    /// averaged into its batch.
    pub latencies_ms: Vec<f64>,
    /// Aggregate throughput over the whole drain (batch wall-clock totals
    /// feed only this, never the latency samples).
    pub qps: QpsReport,
    /// Number of coalesced batches executed.
    pub batches: usize,
}

impl BatchReport {
    /// Percentile summary (p50/p95/p99) of the per-query latencies.
    pub fn latency(&self) -> LatencySummary {
        latency_summary(&self.latencies_ms)
    }

    /// Percentile summary over a subset of queries, addressed by their
    /// submission indices. This is the per-tenant accounting hook: a
    /// runner that interleaves several tenants' requests in one drain can
    /// split the shared latency samples back out per tenant.
    ///
    /// Out-of-range indices are ignored rather than panicking, so a
    /// caller's index list may be built before the drain completes.
    pub fn latency_of(&self, indices: impl IntoIterator<Item = usize>) -> LatencySummary {
        let samples: Vec<f64> = indices
            .into_iter()
            .filter_map(|i| self.latencies_ms.get(i).copied())
            .collect();
        latency_summary(&samples)
    }
}

/// Coalesces queued requests into batches against one [`AnnIndex`].
///
/// ```no_run
/// # use std::sync::Arc;
/// # use engine::{AnnIndex, SearchRequest};
/// # use serving::BatchExecutor;
/// # fn demo(index: Arc<dyn AnnIndex>, queries: Vec<Vec<f32>>) {
/// let mut executor = BatchExecutor::new(index).batch_size(64);
/// executor.submit_all(queries.into_iter().map(|q| SearchRequest::new(q, 10)));
/// let report = executor.run();
/// println!("QPS {:.0}, p99 {:.2} ms", report.qps.qps(), report.latency().p99_ms);
/// # }
/// ```
pub struct BatchExecutor {
    index: Arc<dyn AnnIndex>,
    batch_size: usize,
    queue: Vec<SearchRequest>,
}

impl BatchExecutor {
    /// An executor over `index` with the default batch size.
    pub fn new(index: Arc<dyn AnnIndex>) -> Self {
        Self {
            index,
            batch_size: DEFAULT_BATCH_SIZE,
            queue: Vec::new(),
        }
    }

    /// Sets the coalescing batch size (clamped to at least 1).
    pub fn batch_size(mut self, size: usize) -> Self {
        self.batch_size = size.max(1);
        self
    }

    /// Requests waiting to run.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Queues one request.
    pub fn submit(&mut self, request: SearchRequest) {
        self.queue.push(request);
    }

    /// Queues every request from `requests`.
    pub fn submit_all(&mut self, requests: impl IntoIterator<Item = SearchRequest>) {
        self.queue.extend(requests);
    }

    /// Drains the queue: runs every pending request in coalesced batches
    /// and returns the responses (submission order) with the accounting.
    pub fn run(&mut self) -> BatchReport {
        let queue = std::mem::take(&mut self.queue);
        let total = queue.len();
        let mut report = BatchReport {
            responses: Vec::with_capacity(total),
            latencies_ms: Vec::with_capacity(total),
            ..BatchReport::default()
        };
        let t0 = Instant::now();
        for batch in queue.chunks(self.batch_size) {
            for (response, took) in self.index.search_batch_timed(batch) {
                report.responses.push(response);
                report.latencies_ms.push(took.as_secs_f64() * 1000.0);
            }
            report.batches += 1;
        }
        report.qps = QpsReport {
            queries: total,
            seconds: t0.elapsed().as_secs_f64(),
        };
        report
    }
}

/// Default wait bound before a partial batch executes anyway.
pub const DEFAULT_BATCH_DEADLINE: Duration = Duration::from_micros(500);

/// A [`BatchExecutor`] whose batches close on size **or** deadline.
///
/// Submissions queue with their arrival time; [`Self::tick`] executes the
/// oldest `batch_max` requests once the queue is full enough or the
/// oldest has waited past `deadline`, and [`Self::finish`] drains the
/// rest and returns the same accounting as [`BatchExecutor::run`]
/// (responses in submission order, per-query latencies, aggregate QPS
/// measured from the first submission).
///
/// ```no_run
/// # use std::sync::Arc;
/// # use std::time::Duration;
/// # use engine::{AnnIndex, SearchRequest};
/// # use serving::AdaptiveBatcher;
/// # fn demo(index: Arc<dyn AnnIndex>, incoming: Vec<SearchRequest>) {
/// let mut batcher = AdaptiveBatcher::new(index)
///     .batch_max(64)
///     .deadline(Duration::from_millis(2));
/// for request in incoming {
///     batcher.submit(request);
///     batcher.tick(); // executes only when size or deadline closes a batch
/// }
/// let report = batcher.finish();
/// # }
/// ```
pub struct AdaptiveBatcher {
    index: Arc<dyn AnnIndex>,
    batch_max: usize,
    deadline: Duration,
    queue: VecDeque<(SearchRequest, Instant)>,
    responses: Vec<SearchResponse>,
    latencies_ms: Vec<f64>,
    batches: usize,
    started: Option<Instant>,
}

impl AdaptiveBatcher {
    /// A batcher over `index` with the default size
    /// ([`DEFAULT_BATCH_SIZE`]) and deadline ([`DEFAULT_BATCH_DEADLINE`]).
    pub fn new(index: Arc<dyn AnnIndex>) -> Self {
        Self {
            index,
            batch_max: DEFAULT_BATCH_SIZE,
            deadline: DEFAULT_BATCH_DEADLINE,
            queue: VecDeque::new(),
            responses: Vec::new(),
            latencies_ms: Vec::new(),
            batches: 0,
            started: None,
        }
    }

    /// Sets the size that closes a batch (clamped to at least 1).
    pub fn batch_max(mut self, size: usize) -> Self {
        self.batch_max = size.max(1);
        self
    }

    /// Sets the wait bound that closes a partial batch.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Requests waiting for a batch to close.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Queues one request, stamping its arrival.
    pub fn submit(&mut self, request: SearchRequest) {
        self.started.get_or_insert_with(Instant::now);
        self.queue.push_back((request, Instant::now()));
    }

    /// Whether a batch would close right now: the queue holds `batch_max`
    /// requests, or its oldest has waited at least `deadline`.
    pub fn ready(&self) -> bool {
        self.queue.len() >= self.batch_max
            || self
                .queue
                .front()
                .is_some_and(|(_, arrived)| arrived.elapsed() >= self.deadline)
    }

    /// Executes one batch if [`Self::ready`]; returns whether it did.
    /// Call this from the serving loop after each submission (and on
    /// idle passes, to enforce the deadline).
    pub fn tick(&mut self) -> bool {
        if !self.ready() || self.queue.is_empty() {
            return false;
        }
        let take = self.queue.len().min(self.batch_max);
        self.execute(take);
        true
    }

    /// Drains everything still queued (deadline notwithstanding) and
    /// returns the accumulated accounting.
    pub fn finish(mut self) -> BatchReport {
        while !self.queue.is_empty() {
            let take = self.queue.len().min(self.batch_max);
            self.execute(take);
        }
        let seconds = self.started.map_or(0.0, |t0| t0.elapsed().as_secs_f64());
        BatchReport {
            qps: QpsReport {
                queries: self.responses.len(),
                seconds,
            },
            responses: self.responses,
            latencies_ms: self.latencies_ms,
            batches: self.batches,
        }
    }

    fn execute(&mut self, take: usize) {
        let batch: Vec<SearchRequest> = self.queue.drain(..take).map(|(req, _)| req).collect();
        for (response, took) in self.index.search_batch_timed(&batch) {
            self.responses.push(response);
            self.latencies_ms.push(took.as_secs_f64() * 1000.0);
        }
        self.batches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::FlatIndex;
    use vecstore::VectorSet;

    fn flat(n: usize, dim: usize) -> (Arc<dyn AnnIndex>, VectorSet) {
        let mut set = VectorSet::new(dim);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|d| ((i * 13 + d) % 29) as f32).collect();
            set.push(&v);
        }
        (Arc::new(FlatIndex::new(set.clone())), set)
    }

    #[test]
    fn drains_in_submission_order_with_accounting() {
        let (index, base) = flat(50, 4);
        let mut ex = BatchExecutor::new(Arc::clone(&index)).batch_size(8);
        for qi in 0..20 {
            ex.submit(SearchRequest::new(base.get(qi).to_vec(), 3));
        }
        assert_eq!(ex.pending(), 20);
        let report = ex.run();
        assert_eq!(ex.pending(), 0);
        assert_eq!(report.responses.len(), 20);
        assert_eq!(report.latencies_ms.len(), 20);
        assert_eq!(report.batches, 3); // 8 + 8 + 4
        assert_eq!(report.qps.queries, 20);
        // Order: each response's best hit is the query vector itself.
        for (qi, r) in report.responses.iter().enumerate() {
            assert_eq!(r.hits[0].id, qi as u64);
        }
        let summary = report.latency();
        assert_eq!(summary.samples, 20);
        assert!(summary.p99_ms >= summary.p50_ms);
    }

    #[test]
    fn empty_queue_reports_zeroes() {
        let (index, _) = flat(10, 4);
        let report = BatchExecutor::new(index).run();
        assert!(report.responses.is_empty());
        assert_eq!(report.batches, 0);
        assert_eq!(report.qps.qps(), 0.0);
        assert_eq!(report.latency(), LatencySummary::default());
    }

    /// An index with deliberately skewed per-query cost: queries whose
    /// first component is ≥ `threshold` stall for `slow_ms` before being
    /// served.
    struct SkewedIndex {
        inner: FlatIndex,
        threshold: f32,
        slow_ms: u64,
    }

    impl AnnIndex for SkewedIndex {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn search(&self, req: &SearchRequest) -> SearchResponse {
            if req.query.first().is_some_and(|&x| x >= self.threshold) {
                std::thread::sleep(std::time::Duration::from_millis(self.slow_ms));
            }
            self.inner.search(req)
        }
        fn memory_bytes(&self) -> usize {
            self.inner.memory_bytes()
        }
    }

    #[test]
    fn skewed_per_query_cost_shows_up_in_percentiles() {
        // One pathological query in a batch of ten: with per-query timing
        // the tail percentile must expose it, and the fast majority must
        // not inherit its cost. Amortizing the batch wall-clock over its
        // members (the old accounting) collapses p50 == p99 == the mean,
        // failing both assertions.
        let mut set = VectorSet::new(2);
        for i in 0..20 {
            set.push(&[i as f32, 0.0]);
        }
        let slow_ms = 40;
        let index = Arc::new(SkewedIndex {
            inner: FlatIndex::new(set),
            threshold: 1_000.0,
            slow_ms,
        });
        let mut ex = BatchExecutor::new(index).batch_size(10);
        for qi in 0..9 {
            ex.submit(SearchRequest::new(vec![qi as f32, 0.0], 3));
        }
        ex.submit(SearchRequest::new(vec![5_000.0, 0.0], 3)); // the straggler
        let report = ex.run();
        assert_eq!(report.batches, 1, "all ten queries share one batch");
        let summary = report.latency();
        let slow = slow_ms as f64;
        assert!(
            summary.p99_ms >= slow,
            "p99 {:.3} ms must expose the {slow} ms straggler",
            summary.p99_ms
        );
        assert!(
            summary.p50_ms < slow / 4.0,
            "p50 {:.3} ms must not inherit the straggler's cost",
            summary.p50_ms
        );
    }

    #[test]
    fn latency_of_splits_samples_by_submission_index() {
        let (index, base) = flat(30, 4);
        let mut ex = BatchExecutor::new(index).batch_size(4);
        ex.submit_all((0..10).map(|qi| SearchRequest::new(base.get(qi).to_vec(), 2)));
        let report = ex.run();
        let evens = report.latency_of((0..10).step_by(2));
        assert_eq!(evens.samples, 5);
        let expected: Vec<f64> = (0..10).step_by(2).map(|i| report.latencies_ms[i]).collect();
        assert_eq!(evens, latency_summary(&expected));
        // Out-of-range indices are skipped, not fatal.
        let sparse = report.latency_of([1, 99]);
        assert_eq!(sparse.samples, 1);
        assert_eq!(report.latency_of([]), LatencySummary::default());
    }

    #[test]
    fn adaptive_batcher_closes_on_size() {
        let (index, base) = flat(40, 4);
        // A one-hour deadline: only size can close these batches.
        let mut batcher = AdaptiveBatcher::new(index)
            .batch_max(4)
            .deadline(Duration::from_secs(3600));
        let mut ticks = 0;
        for qi in 0..10 {
            batcher.submit(SearchRequest::new(base.get(qi).to_vec(), 3));
            ticks += usize::from(batcher.tick());
        }
        // Two full batches closed inline; two requests still wait.
        assert_eq!(ticks, 2);
        assert_eq!(batcher.pending(), 2);
        assert!(!batcher.ready());
        let report = batcher.finish();
        assert_eq!(report.batches, 3); // 4 + 4 + the drained 2
        assert_eq!(report.responses.len(), 10);
        for (qi, r) in report.responses.iter().enumerate() {
            assert_eq!(r.hits[0].id, qi as u64, "submission order preserved");
        }
    }

    #[test]
    fn adaptive_batcher_closes_on_deadline() {
        let (index, base) = flat(40, 4);
        // A huge size cap: only the deadline can close this batch.
        let mut batcher = AdaptiveBatcher::new(index)
            .batch_max(1_000)
            .deadline(Duration::from_millis(5));
        batcher.submit(SearchRequest::new(base.get(0).to_vec(), 3));
        assert!(!batcher.ready(), "one fresh request must not close");
        assert!(!batcher.tick());
        std::thread::sleep(Duration::from_millis(10));
        assert!(batcher.ready(), "the oldest waited past the deadline");
        assert!(batcher.tick());
        assert_eq!(batcher.pending(), 0);
        let report = batcher.finish();
        assert_eq!(report.batches, 1);
        assert_eq!(report.responses.len(), 1);
    }

    #[test]
    fn adaptive_batcher_finish_drains_and_accounts() {
        let (index, base) = flat(40, 4);
        let mut batcher = AdaptiveBatcher::new(index).batch_max(8);
        batcher.submit_many(&base, 6);
        let report = batcher.finish();
        assert_eq!(report.responses.len(), 6);
        assert_eq!(report.latencies_ms.len(), 6);
        assert_eq!(report.qps.queries, 6);
        assert!(report.qps.seconds > 0.0);
        // An untouched batcher reports all zeroes.
        let (index, _) = flat(10, 4);
        let empty = AdaptiveBatcher::new(index).finish();
        assert!(empty.responses.is_empty());
        assert_eq!(empty.batches, 0);
        assert_eq!(empty.qps.qps(), 0.0);
    }

    impl AdaptiveBatcher {
        fn submit_many(&mut self, base: &VectorSet, n: usize) {
            for qi in 0..n {
                self.submit(SearchRequest::new(base.get(qi).to_vec(), 3));
            }
        }
    }

    #[test]
    fn batch_size_is_clamped() {
        let (index, base) = flat(10, 4);
        let mut ex = BatchExecutor::new(index).batch_size(0);
        ex.submit_all((0..5).map(|qi| SearchRequest::new(base.get(qi).to_vec(), 2)));
        let report = ex.run();
        assert_eq!(report.batches, 5); // size clamped to 1
    }
}
