//! Deterministic fault injection for the serving layer.
//!
//! Replication and failover are only credible if the failure paths are
//! exercised, so this module makes any [`AnnIndex`] failable on a script:
//! a [`FaultPlan`] describes *when* an index misbehaves — error on the Nth
//! call, a latency spike, permanent death, scripted recovery — and
//! [`FaultyIndex`] replays the plan call by call. Plans are pure functions
//! of the call counter, so every run of a test or demo sees the identical
//! failure sequence.
//!
//! The serving layer routes around failures through the [`FallibleIndex`]
//! trait: real indexes never fail (the blanket `Arc<T: AnnIndex>` impl
//! always returns `Ok`), injected ones fail exactly as scripted, and a
//! `ReplicaGroup` treats both uniformly.
//!
//! ```
//! use engine::{AnnIndex, FlatIndex, SearchRequest};
//! use serving::{FallibleIndex, FaultPlan, FaultyIndex};
//! use std::sync::Arc;
//! use vecstore::VectorSet;
//!
//! let mut base = VectorSet::new(2);
//! for i in 0..10 {
//!     base.push(&[i as f32, 0.0]);
//! }
//! let inner: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base));
//! let faulty = FaultyIndex::new(inner, FaultPlan::new().fail_on(1));
//! let req = SearchRequest::new(vec![0.0, 0.0], 3);
//! assert!(faulty.try_search(&req).is_ok()); // call 0
//! assert!(faulty.try_search(&req).is_err()); // call 1: scripted error
//! assert!(faulty.try_search(&req).is_ok()); // call 2
//! ```

use engine::{AnnIndex, SearchRequest, SearchResponse};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why an injected (or detected) search failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A scripted one-shot error; the next call may succeed.
    Transient,
    /// The replica is dead — every call fails until (and unless) the
    /// plan's scripted recovery point.
    Dead,
    /// The replica answered, but the answer violates the protocol: hits
    /// outside the dense local id space, an undecodable wire frame, or a
    /// request with no wire form. A misbehaving node is routed around
    /// like a failed one instead of aborting the coordinator.
    Malformed,
}

/// The error a [`FallibleIndex`] search reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultError {
    /// 0-based call index on the failing index that tripped.
    pub call: u64,
    /// Transient error, dead replica, or malformed response.
    pub kind: FaultKind,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Transient => write!(f, "injected transient error on call {}", self.call),
            FaultKind::Dead => write!(f, "replica dead at call {}", self.call),
            FaultKind::Malformed => write!(f, "malformed response on call {}", self.call),
        }
    }
}

impl std::error::Error for FaultError {}

/// What a [`FaultPlan`] prescribes for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve normally.
    Ok,
    /// Serve normally after stalling for the given milliseconds (latency
    /// spike).
    Delay(u64),
    /// Fail the call.
    Error(FaultKind),
}

/// A deterministic per-call failure script for one index.
///
/// Call indexes are 0-based and count the calls *on the faulty index*
/// (not on the group routing to it). The plan is immutable state; the
/// call counter lives in [`FaultyIndex`], so one plan can be cloned onto
/// many replicas.
///
/// Precedence per call: the dead window (between [`Self::die_at`] and
/// [`Self::revive_at`]) beats scripted transient errors, which beat
/// latency spikes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Calls that fail with a transient error.
    fail_calls: BTreeSet<u64>,
    /// Calls that stall for N milliseconds before serving.
    delay_calls: BTreeMap<u64, u64>,
    /// First call of the dead window (permanent death unless revived).
    dead_from: Option<u64>,
    /// First call at which a dead index serves again (scripted recovery).
    revive_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that never misbehaves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fails call `call` with a transient error.
    pub fn fail_on(mut self, call: u64) -> Self {
        self.fail_calls.insert(call);
        self
    }

    /// Fails every call in `calls` with transient errors.
    pub fn fail_calls(mut self, calls: impl IntoIterator<Item = u64>) -> Self {
        self.fail_calls.extend(calls);
        self
    }

    /// Stalls call `call` for `millis` ms before serving it (latency
    /// spike — the call still succeeds).
    pub fn delay_on(mut self, call: u64, millis: u64) -> Self {
        self.delay_calls.insert(call, millis);
        self
    }

    /// The index dies at call `call`: that call and every later one fail,
    /// until a scripted [`Self::revive_at`] (if any).
    pub fn die_at(mut self, call: u64) -> Self {
        self.dead_from = Some(call);
        self
    }

    /// A dead index serves again from call `call` on (scripted recovery;
    /// only meaningful together with [`Self::die_at`]).
    pub fn revive_at(mut self, call: u64) -> Self {
        self.revive_at = Some(call);
        self
    }

    /// Whether the plan never injects a failure (delays keep an index
    /// healthy — slow is not down).
    pub fn is_healthy(&self) -> bool {
        self.fail_calls.is_empty() && self.dead_from.is_none()
    }

    /// The scripted action for 0-based call `call`.
    pub fn action_for(&self, call: u64) -> FaultAction {
        if let Some(dead_from) = self.dead_from {
            let revived = self.revive_at.is_some_and(|r| call >= r && r > dead_from);
            if call >= dead_from && !revived {
                return FaultAction::Error(FaultKind::Dead);
            }
        }
        if self.fail_calls.contains(&call) {
            return FaultAction::Error(FaultKind::Transient);
        }
        if let Some(&ms) = self.delay_calls.get(&call) {
            return FaultAction::Delay(ms);
        }
        FaultAction::Ok
    }
}

/// An [`AnnIndex`]-shaped service whose searches can fail.
///
/// This is the surface `ReplicaGroup` routes over. Production replicas
/// are plain `Arc<dyn AnnIndex>` handles (the blanket impl below — they
/// never fail); test and demo replicas are [`FaultyIndex`] wrappers that
/// fail on script.
pub trait FallibleIndex: Send + Sync {
    /// Number of vectors served.
    fn len(&self) -> usize;

    /// Whether the index serves no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Serves one request, or reports the injected failure.
    fn try_search(&self, request: &SearchRequest) -> Result<SearchResponse, FaultError>;

    /// Resident bytes.
    fn memory_bytes(&self) -> usize;
}

/// Real indexes never fail.
impl<T: AnnIndex + ?Sized> FallibleIndex for Arc<T> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn try_search(&self, request: &SearchRequest) -> Result<SearchResponse, FaultError> {
        Ok(self.search(request))
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

/// Any [`AnnIndex`] with a [`FaultPlan`] replayed over its calls.
pub struct FaultyIndex {
    inner: Arc<dyn AnnIndex>,
    plan: FaultPlan,
    calls: AtomicU64,
}

impl FaultyIndex {
    /// Wraps `inner` so its searches follow `plan`.
    pub fn new(inner: Arc<dyn AnnIndex>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            calls: AtomicU64::new(0),
        }
    }

    /// The script.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Calls served (or failed) so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl FallibleIndex for FaultyIndex {
    fn len(&self) -> usize {
        AnnIndex::len(&self.inner)
    }

    fn dim(&self) -> usize {
        AnnIndex::dim(&self.inner)
    }

    fn try_search(&self, request: &SearchRequest) -> Result<SearchResponse, FaultError> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        match self.plan.action_for(call) {
            FaultAction::Ok => Ok(self.inner.search(request)),
            FaultAction::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(self.inner.search(request))
            }
            FaultAction::Error(kind) => Err(FaultError { call, kind }),
        }
    }

    fn memory_bytes(&self) -> usize {
        AnnIndex::memory_bytes(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::FlatIndex;
    use vecstore::VectorSet;

    fn flat(n: usize) -> Arc<dyn AnnIndex> {
        let mut set = VectorSet::new(2);
        for i in 0..n {
            set.push(&[i as f32, 1.0]);
        }
        Arc::new(FlatIndex::new(set))
    }

    fn req() -> SearchRequest {
        SearchRequest::new(vec![0.0, 1.0], 3)
    }

    #[test]
    fn healthy_plan_never_acts() {
        let plan = FaultPlan::new().delay_on(2, 0);
        assert!(plan.is_healthy(), "delays do not make a plan unhealthy");
        for call in 0..100 {
            assert_ne!(
                plan.action_for(call),
                FaultAction::Error(FaultKind::Transient)
            );
        }
        assert_eq!(plan.action_for(2), FaultAction::Delay(0));
    }

    #[test]
    fn scripted_transient_errors_fire_exactly_once_each() {
        let plan = FaultPlan::new().fail_calls([1, 3]);
        assert!(!plan.is_healthy());
        let expected = [
            FaultAction::Ok,
            FaultAction::Error(FaultKind::Transient),
            FaultAction::Ok,
            FaultAction::Error(FaultKind::Transient),
            FaultAction::Ok,
        ];
        for (call, want) in expected.iter().enumerate() {
            assert_eq!(plan.action_for(call as u64), *want, "call {call}");
        }
    }

    #[test]
    fn death_is_permanent_without_revival() {
        let plan = FaultPlan::new().die_at(2);
        assert_eq!(plan.action_for(1), FaultAction::Ok);
        for call in 2..50 {
            assert_eq!(plan.action_for(call), FaultAction::Error(FaultKind::Dead));
        }
    }

    #[test]
    fn revival_ends_the_dead_window() {
        let plan = FaultPlan::new().die_at(2).revive_at(5);
        assert_eq!(plan.action_for(2), FaultAction::Error(FaultKind::Dead));
        assert_eq!(plan.action_for(4), FaultAction::Error(FaultKind::Dead));
        assert_eq!(plan.action_for(5), FaultAction::Ok);
        assert_eq!(plan.action_for(100), FaultAction::Ok);
    }

    #[test]
    fn dead_window_beats_transient_and_delay() {
        let plan = FaultPlan::new().fail_on(3).delay_on(3, 1).die_at(3);
        assert_eq!(plan.action_for(3), FaultAction::Error(FaultKind::Dead));
    }

    #[test]
    fn faulty_index_replays_the_plan_and_counts_calls() {
        let faulty = FaultyIndex::new(flat(10), FaultPlan::new().fail_on(1).die_at(3));
        let r = req();
        let ok = faulty.try_search(&r).unwrap();
        assert_eq!(ok.hits.len(), 3);
        let err = faulty.try_search(&r).unwrap_err();
        assert_eq!(err, {
            FaultError {
                call: 1,
                kind: FaultKind::Transient,
            }
        });
        assert!(faulty.try_search(&r).is_ok());
        for _ in 0..3 {
            assert_eq!(faulty.try_search(&r).unwrap_err().kind, FaultKind::Dead);
        }
        assert_eq!(faulty.calls(), 6);
        assert_eq!(faulty.len(), 10);
        assert_eq!(faulty.dim(), 2);
        assert!(faulty.memory_bytes() > 0);
    }

    #[test]
    fn arc_blanket_impl_never_fails_and_matches_search() {
        let index = flat(8);
        let r = req();
        let direct = index.search(&r);
        let via_fallible = FallibleIndex::try_search(&index, &r).unwrap();
        assert_eq!(direct.hits, via_fallible.hits);
        assert_eq!(FallibleIndex::len(&index), 8);
    }

    #[test]
    fn delay_serves_identical_results() {
        let inner = flat(10);
        let r = req();
        let want = inner.search(&r).hits;
        let slow = FaultyIndex::new(inner, FaultPlan::new().delay_on(0, 1));
        assert_eq!(slow.try_search(&r).unwrap().hits, want);
    }
}
