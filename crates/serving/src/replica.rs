//! Replicated shard groups with failover routing.
//!
//! A [`ReplicaGroup`] holds R replicas of one logical index — identical by
//! construction (same builder, seed, and shared codec over the same data;
//! the workspace's builds are deterministic) — and serves every request
//! from one healthy replica, transparently retrying siblings when a
//! replica fails. Because the replicas are identical, a failover returns
//! **bit-identical** hits to the healthy run, whatever the routing policy.
//!
//! The moving parts:
//!
//! * [`Router`] — places each request on a replica under a pluggable
//!   [`RoutingPolicy`] (`Primary`, `RoundRobin`, `LoadAware`), ordering
//!   the surviving replicas as retry fallbacks;
//! * the health model — per-replica error tracking (consecutive failures
//!   mark a replica down) and probed recovery (a marked-down replica is
//!   re-tried with live traffic after sitting out
//!   [`HealthConfig::probe_after`] group calls); every mark-down and
//!   recovery bumps the group [`ReplicaGroup::generation`] so result
//!   caches can invalidate across failover transitions;
//! * [`ReplicatedIndex`] — the full stack: a [`ShardedIndex`] whose every
//!   shard is a replica group, built with one globally-trained codec and
//!   searched scatter-gather on the shared worker pool.
//!
//! `ReplicaGroup` and `ReplicatedIndex` implement [`AnnIndex`], so they
//! nest under `BatchExecutor`, `CachedIndex`, and each other like any
//! other index. Failures come from the [`crate::fault`] module's
//! deterministic `FaultPlan` scripts (production replicas simply never
//! fail).

use crate::fault::{FallibleIndex, FaultError, FaultKind, FaultPlan, FaultyIndex};
use crate::pool::WorkerPool;
use crate::shard::{ShardPolicy, ShardedIndex};
use engine::{AnnIndex, IndexBuilder, SearchRequest, SearchResponse};
use metrics::{failover_summary, ReplicaCounters, ReplicaStats, SpanKind, SpanOutcome};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::VectorSet;

/// How a [`Router`] picks the replica that serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Always the lowest-indexed healthy replica; siblings are pure
    /// failover spares.
    Primary,
    /// Rotate across the healthy replicas call by call.
    RoundRobin,
    /// The healthy replica with the least accumulated search latency
    /// (ties broken by replica index) — slow or spiky replicas shed load.
    LoadAware,
}

impl RoutingPolicy {
    /// Every supported policy.
    pub const ALL: [RoutingPolicy; 3] = [
        RoutingPolicy::Primary,
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LoadAware,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicy::Primary => "primary",
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LoadAware => "load-aware",
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RoutingPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "primary" => Ok(RoutingPolicy::Primary),
            "round-robin" | "roundrobin" | "rr" => Ok(RoutingPolicy::RoundRobin),
            "load-aware" | "loadaware" | "load" => Ok(RoutingPolicy::LoadAware),
            other => Err(format!(
                "unknown routing policy `{other}` (accepted: primary, round-robin, load-aware)"
            )),
        }
    }
}

/// Health-model knobs of a [`ReplicaGroup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive failures that mark a replica down (min 1).
    pub error_threshold: u32,
    /// Group search calls a marked-down replica sits out before it is
    /// probed with live traffic again.
    pub probe_after: u64,
}

impl Default for HealthConfig {
    /// Mark down on the first error; probe again after 16 group calls.
    fn default() -> Self {
        Self {
            error_threshold: 1,
            probe_after: 16,
        }
    }
}

/// One replica's routing-relevant state at request time (input to
/// [`Router::plan`]).
#[derive(Debug, Clone, Copy)]
pub struct RouteCandidate {
    /// Replica index within the group.
    pub replica: usize,
    /// Not currently marked down.
    pub healthy: bool,
    /// Marked down, due for a live-traffic probe, and this request won
    /// the (single-flight) probe claim.
    pub due_probe: bool,
    /// Accumulated successful-search latency (the `LoadAware` signal).
    pub load_ns: u64,
}

/// Places `(request, shard)` jobs on replicas under a [`RoutingPolicy`].
///
/// The router is pure placement logic over [`RouteCandidate`] snapshots;
/// health state itself lives in the [`ReplicaGroup`] that owns the
/// router. Only `RoundRobin` keeps state (the rotation counter).
pub struct Router {
    policy: RoutingPolicy,
    rr: AtomicU64,
}

impl Router {
    /// A router with the given policy.
    pub fn new(policy: RoutingPolicy) -> Self {
        Self {
            policy,
            rr: AtomicU64::new(0),
        }
    }

    /// The placement policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// The attempt order for one request: due probes first (a recovered
    /// replica serves identical results, a still-dead one costs one
    /// failed attempt and falls through), then the healthy replicas in
    /// policy order, then the remaining marked-down replicas as a last
    /// resort (a fully-down group must still try everything).
    pub fn plan(&self, candidates: &[RouteCandidate]) -> Vec<usize> {
        let mut order: Vec<usize> = candidates
            .iter()
            .filter(|c| !c.healthy && c.due_probe)
            .map(|c| c.replica)
            .collect();
        let mut healthy: Vec<&RouteCandidate> = candidates.iter().filter(|c| c.healthy).collect();
        match self.policy {
            RoutingPolicy::Primary => {} // index order as given
            RoutingPolicy::RoundRobin => {
                if !healthy.is_empty() {
                    let start = self.rr.fetch_add(1, Ordering::Relaxed) as usize % healthy.len();
                    healthy.rotate_left(start);
                }
            }
            RoutingPolicy::LoadAware => healthy.sort_by_key(|c| (c.load_ns, c.replica)),
        }
        order.extend(healthy.iter().map(|c| c.replica));
        order.extend(
            candidates
                .iter()
                .filter(|c| !c.healthy && !c.due_probe)
                .map(|c| c.replica),
        );
        order
    }
}

/// The trace-span outcome of one failed replica attempt.
fn outcome_of(kind: FaultKind) -> SpanOutcome {
    match kind {
        FaultKind::Transient => SpanOutcome::Transient,
        FaultKind::Dead => SpanOutcome::Dead,
        FaultKind::Malformed => SpanOutcome::Malformed,
    }
}

/// One replica: the (possibly fault-injected) index plus health state and
/// failover counters.
struct Replica {
    index: Box<dyn FallibleIndex>,
    counters: ReplicaCounters,
    /// Consecutive failures since the last success.
    consecutive: AtomicU32,
    /// Marked down (out of normal routing).
    down: AtomicBool,
    /// Group-clock value at mark-down / last probe claim (schedules the
    /// next probe; probes claim it with a CAS so each window sends one).
    down_at: AtomicU64,
    /// The `LoadAware` routing signal. Distinct from the monotonic
    /// `counters.latency_ns()`: a replica that sat out a markdown
    /// accumulated nothing, so on recovery this is re-based to the
    /// busiest sibling — otherwise the just-recovered (coldest) replica
    /// would win every placement until its lifetime total caught up.
    load_ns: AtomicU64,
}

impl Replica {
    fn new(index: Box<dyn FallibleIndex>) -> Self {
        Self {
            index,
            counters: ReplicaCounters::new(),
            consecutive: AtomicU32::new(0),
            down: AtomicBool::new(false),
            down_at: AtomicU64::new(0),
            load_ns: AtomicU64::new(0),
        }
    }
}

/// R replicas of one logical index behind failover routing.
///
/// Implements [`AnnIndex`]; nest it under a [`ShardedIndex`] (one group
/// per shard — see [`ReplicatedIndex`]), a `CachedIndex`, or a
/// `BatchExecutor` like any other index.
///
/// # Panics
/// [`AnnIndex::search`] panics if **every** replica fails the request —
/// with at least one healthy replica per group, search never errors (the
/// property `tests/failure_injection.rs` proves for arbitrary fault
/// plans).
pub struct ReplicaGroup {
    replicas: Vec<Replica>,
    router: Router,
    health: HealthConfig,
    /// Monotonic group search counter (drives probe scheduling).
    clock: AtomicU64,
    /// Bumped on every mark-down and recovery: the invalidation hook for
    /// result caches layered above the group.
    generation: AtomicU64,
    len: usize,
    dim: usize,
}

impl ReplicaGroup {
    /// Assembles a group from pre-built replicas (production handles or
    /// [`FaultyIndex`] wrappers).
    ///
    /// # Panics
    /// Panics if `replicas` is empty or the replicas disagree on length
    /// or dimensionality (they must serve the same logical index).
    pub fn from_replicas(
        replicas: Vec<Box<dyn FallibleIndex>>,
        routing: RoutingPolicy,
        health: HealthConfig,
    ) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        let (len, dim) = (replicas[0].len(), replicas[0].dim());
        for (i, r) in replicas.iter().enumerate() {
            assert_eq!(r.len(), len, "replica {i} length disagrees");
            assert_eq!(r.dim(), dim, "replica {i} dimensionality disagrees");
        }
        Self {
            replicas: replicas.into_iter().map(Replica::new).collect(),
            router: Router::new(routing),
            health: HealthConfig {
                error_threshold: health.error_threshold.max(1),
                ..health
            },
            clock: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            len,
            dim,
        }
    }

    /// Builds `replicas` identical copies of `builder`'s index over
    /// `base`, training the coding codec **once** and sharing it across
    /// the copies. Deterministic construction makes the copies
    /// bit-identical, which is what lets failover preserve exact results.
    pub fn build(
        base: VectorSet,
        builder: &IndexBuilder,
        replicas: usize,
        routing: RoutingPolicy,
        health: HealthConfig,
    ) -> Self {
        let codec = builder.train_codec(&base);
        let replicas = replicas.max(1);
        let mut members: Vec<Box<dyn FallibleIndex>> = Vec::with_capacity(replicas);
        for _ in 1..replicas {
            let index: Arc<dyn AnnIndex> =
                Arc::from(builder.build_with_codec(base.clone(), &codec));
            members.push(Box::new(index));
        }
        // The last copy consumes `base` instead of cloning it once more.
        let index: Arc<dyn AnnIndex> = Arc::from(builder.build_with_codec(base, &codec));
        members.push(Box::new(index));
        Self::from_replicas(members, routing, health)
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The routing policy.
    pub fn routing(&self) -> RoutingPolicy {
        self.router.policy()
    }

    /// The health-model configuration.
    pub fn health_config(&self) -> HealthConfig {
        self.health
    }

    /// Bumped on every replica mark-down and recovery. Sync it into a
    /// `QueryCache` (`set_generation`) so responses cached across a
    /// failover transition miss instead of being served stale.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Whether replica `i` is currently marked down.
    pub fn is_marked_down(&self, i: usize) -> bool {
        self.replicas[i].down.load(Ordering::Acquire)
    }

    /// Per-replica failover counter snapshots.
    pub fn replica_stats(&self) -> Vec<ReplicaStats> {
        self.replicas
            .iter()
            .map(|r| r.counters.snapshot())
            .collect()
    }

    /// The group aggregate (element-wise sum of the per-replica stats).
    pub fn failover_stats(&self) -> ReplicaStats {
        failover_summary(&self.replica_stats())
    }

    /// Routes one request: try replicas in [`Router::plan`] order, record
    /// health transitions, and return the first success.
    ///
    /// A replica's response is only accepted if every hit lies inside the
    /// dense local id space `0..len` — the contract every graph-backed
    /// index and `FlatIndex` honor, and the one the sharded gather step
    /// relies on. A replica that answers with out-of-range ids (a buggy
    /// or byzantine remote node) is treated exactly like a failed one:
    /// the error counts toward mark-down and the request retries a
    /// sibling, instead of the malformed response aborting the
    /// coordinator at gather time.
    fn search_failover(&self, request: &SearchRequest) -> SearchResponse {
        let now = self.clock.fetch_add(1, Ordering::SeqCst);
        let candidates: Vec<RouteCandidate> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let down = r.down.load(Ordering::Acquire);
                // Probes are single-flight: a due probe is *claimed* by
                // CAS-ing `down_at` forward, so of N concurrent requests
                // only one pays the possibly-failed attempt per window.
                let down_at = r.down_at.load(Ordering::Acquire);
                let due_probe = down
                    && now.saturating_sub(down_at) >= self.health.probe_after
                    && r.down_at
                        .compare_exchange(down_at, now, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                RouteCandidate {
                    replica: i,
                    healthy: !down,
                    due_probe,
                    load_ns: r.load_ns.load(Ordering::Relaxed),
                }
            })
            .collect();
        let order = self.router.plan(&candidates);
        if let Some(trace) = &request.trace {
            trace.record(SpanKind::Route {
                candidates: order.len() as u64,
            });
        }
        let mut last_error: Option<FaultError> = None;
        for (attempt, &i) in order.iter().enumerate() {
            let replica = &self.replicas[i];
            let was_down = replica.down.load(Ordering::Acquire);
            replica.counters.record_search();
            if was_down {
                replica.counters.record_probe();
            }
            let t0 = Instant::now();
            let result = replica.index.try_search(request).and_then(|response| {
                // Reject protocol-violating answers before they can reach
                // the gather step (see the method docs).
                if response.hits.iter().any(|h| h.id >= self.len as u64) {
                    Err(FaultError {
                        call: now,
                        kind: FaultKind::Malformed,
                    })
                } else {
                    Ok(response)
                }
            });
            match result {
                Ok(response) => {
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    if let Some(trace) = &request.trace {
                        trace.record_timed(
                            SpanKind::ReplicaAttempt {
                                replica: i as u64,
                                outcome: SpanOutcome::Ok,
                            },
                            elapsed,
                        );
                    }
                    replica.counters.record_latency_ns(elapsed);
                    replica.load_ns.fetch_add(elapsed, Ordering::Relaxed);
                    replica.consecutive.store(0, Ordering::Release);
                    // The CAS makes each down→up transition count once even
                    // when concurrent requests probe the same replica.
                    if was_down
                        && replica
                            .down
                            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        // Re-base the routing load to the busiest sibling:
                        // the replica accumulated nothing while down, and
                        // `LoadAware` must not pin all traffic to it.
                        let max_load = self
                            .replicas
                            .iter()
                            .map(|r| r.load_ns.load(Ordering::Relaxed))
                            .max()
                            .unwrap_or(0);
                        replica.load_ns.store(max_load, Ordering::Relaxed);
                        replica.counters.record_recovery();
                        self.generation.fetch_add(1, Ordering::AcqRel);
                    }
                    return response;
                }
                Err(error) => {
                    if let Some(trace) = &request.trace {
                        trace.record_timed(
                            SpanKind::ReplicaAttempt {
                                replica: i as u64,
                                outcome: outcome_of(error.kind),
                            },
                            t0.elapsed().as_nanos() as u64,
                        );
                    }
                    replica.counters.record_error();
                    let consecutive = replica.consecutive.fetch_add(1, Ordering::AcqRel) + 1;
                    if was_down {
                        // Failed probe: restart the sit-out window (already
                        // claimed forward at planning time; this covers the
                        // last-resort attempts that bypassed the claim).
                        replica.down_at.store(now, Ordering::Release);
                    } else if consecutive >= self.health.error_threshold {
                        // Publish the timestamp *before* the down flag: a
                        // concurrent planner must never observe down=true
                        // with a stale down_at, which would make the
                        // just-failed replica immediately probe-due. A
                        // losing writer merely refreshes the window.
                        replica.down_at.store(now, Ordering::Release);
                        // One up→down transition per outage, even when
                        // concurrent requests fail on the replica together.
                        if replica
                            .down
                            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            replica.counters.record_markdown();
                            self.generation.fetch_add(1, Ordering::AcqRel);
                        }
                    }
                    if attempt + 1 < order.len() {
                        replica.counters.record_retry();
                    }
                    last_error = Some(error);
                }
            }
        }
        panic!(
            "all {} replicas failed the request (last error: {})",
            self.replicas.len(),
            last_error.expect("a non-empty group reports at least one error"),
        );
    }
}

impl AnnIndex for ReplicaGroup {
    fn len(&self) -> usize {
        self.len
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, request: &SearchRequest) -> SearchResponse {
        self.search_failover(request)
    }

    /// Real resident bytes: every replica is a physical copy.
    fn memory_bytes(&self) -> usize {
        self.replicas.iter().map(|r| r.index.memory_bytes()).sum()
    }
}

/// A [`ShardedIndex`] whose every shard is a [`ReplicaGroup`]: the full
/// replicated-serving stack, built with one globally-trained codec and a
/// shared worker pool, surviving any single replica loss per shard with
/// bit-identical results.
pub struct ReplicatedIndex {
    sharded: ShardedIndex,
    groups: Vec<Arc<ReplicaGroup>>,
}

impl ReplicatedIndex {
    /// Builds `shards × replicas` sub-indexes concurrently on a fresh
    /// pool of `threads` workers (which then serves the index), training
    /// the coding codec once on the full dataset and sharing it across
    /// every shard *and* replica.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        base: VectorSet,
        builder: &IndexBuilder,
        shards: usize,
        replicas: usize,
        shard_policy: ShardPolicy,
        routing: RoutingPolicy,
        health: HealthConfig,
        threads: usize,
    ) -> Self {
        Self::build_with_faults(
            base,
            builder,
            shards,
            replicas,
            shard_policy,
            routing,
            health,
            threads,
            |_, _| None,
        )
    }

    /// [`Self::build`] plus deterministic fault injection: `fault_for(s,
    /// r)` may hand replica `r` of shard `s` a [`FaultPlan`] (shard
    /// indexes refer to the non-empty partitions, in order). This is the
    /// hook the fault-injection tests and the `replicated_serving`
    /// example drive every failover path through.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_faults(
        base: VectorSet,
        builder: &IndexBuilder,
        shards: usize,
        replicas: usize,
        shard_policy: ShardPolicy,
        routing: RoutingPolicy,
        health: HealthConfig,
        threads: usize,
        fault_for: impl Fn(usize, usize) -> Option<FaultPlan>,
    ) -> Self {
        assert!(!base.is_empty(), "cannot shard an empty dataset");
        let replicas = replicas.max(1);
        let codec = builder.train_codec(&base);
        let (sets, id_maps): (Vec<VectorSet>, Vec<Vec<u64>>) =
            ShardedIndex::partition(&base, shards, shard_policy)
                .into_iter()
                .unzip();
        drop(base);
        let pool = Arc::new(WorkerPool::new(threads));

        // Build the full (shard × replica) grid concurrently: one flat job
        // list keeps every worker busy across shard boundaries. The last
        // replica of each shard consumes the partition instead of cloning
        // it once more (boxed closures: the two push sites differ in type).
        type BuildJob = Box<dyn FnOnce() -> Arc<dyn AnnIndex> + Send + 'static>;
        let mut jobs: Vec<BuildJob> = Vec::with_capacity(sets.len() * replicas);
        for set in sets {
            for _ in 1..replicas {
                let builder = builder.clone();
                let codec = codec.clone();
                let set = set.clone();
                jobs.push(Box::new(move || {
                    Arc::from(builder.build_with_codec(set, &codec)) as Arc<dyn AnnIndex>
                }));
            }
            let builder = builder.clone();
            let codec = codec.clone();
            jobs.push(Box::new(move || {
                Arc::from(builder.build_with_codec(set, &codec)) as Arc<dyn AnnIndex>
            }));
        }
        let mut built = pool.run(jobs).into_iter();

        let mut groups = Vec::with_capacity(id_maps.len());
        let shard_parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = id_maps
            .into_iter()
            .enumerate()
            .map(|(s, global_ids)| {
                let members: Vec<Box<dyn FallibleIndex>> = (0..replicas)
                    .map(|r| {
                        let index = built.next().expect("one build per (shard, replica)");
                        match fault_for(s, r) {
                            Some(plan) => {
                                Box::new(FaultyIndex::new(index, plan)) as Box<dyn FallibleIndex>
                            }
                            None => Box::new(index) as Box<dyn FallibleIndex>,
                        }
                    })
                    .collect();
                let group = Arc::new(ReplicaGroup::from_replicas(members, routing, health));
                groups.push(Arc::clone(&group));
                (Box::new(group) as Box<dyn AnnIndex>, global_ids)
            })
            .collect();
        Self {
            sharded: ShardedIndex::from_parts(shard_parts, shard_policy, pool),
            groups,
        }
    }

    /// The underlying sharded index.
    pub fn sharded(&self) -> &ShardedIndex {
        &self.sharded
    }

    /// The per-shard replica groups (health stats, generations).
    pub fn groups(&self) -> &[Arc<ReplicaGroup>] {
        &self.groups
    }

    /// Number of shards (non-empty partitions).
    pub fn shard_count(&self) -> usize {
        self.groups.len()
    }

    /// Replicas per shard.
    pub fn replica_count(&self) -> usize {
        self.groups.first().map_or(0, |g| g.replica_count())
    }

    /// The routing policy every group routes under.
    pub fn routing(&self) -> RoutingPolicy {
        self.groups
            .first()
            .map_or(RoutingPolicy::Primary, |g| g.routing())
    }

    /// Sum of the group generations — monotonic, bumps on every
    /// mark-down/recovery anywhere in the fleet. Sync it into a
    /// `QueryCache` exactly like `LsmVectorIndex::generation()`.
    pub fn generation(&self) -> u64 {
        self.groups.iter().map(|g| g.generation()).sum()
    }

    /// Fleet-wide failover aggregate (summed over shards and replicas).
    pub fn failover_stats(&self) -> ReplicaStats {
        failover_summary(
            &self
                .groups
                .iter()
                .map(|g| g.failover_stats())
                .collect::<Vec<_>>(),
        )
    }

    /// Per-shard, per-replica counter snapshots.
    pub fn replica_stats(&self) -> Vec<Vec<ReplicaStats>> {
        self.groups.iter().map(|g| g.replica_stats()).collect()
    }
}

impl AnnIndex for ReplicatedIndex {
    fn len(&self) -> usize {
        self.sharded.len()
    }

    fn dim(&self) -> usize {
        self.sharded.dim()
    }

    fn search(&self, request: &SearchRequest) -> SearchResponse {
        self.sharded.search(request)
    }

    fn search_batch(&self, requests: &[SearchRequest]) -> Vec<SearchResponse> {
        self.sharded.search_batch(requests)
    }

    fn search_batch_timed(&self, requests: &[SearchRequest]) -> Vec<(SearchResponse, Duration)> {
        self.sharded.search_batch_timed(requests)
    }

    fn memory_bytes(&self) -> usize {
        self.sharded.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::FlatIndex;

    fn corpus(n: usize, dim: usize) -> VectorSet {
        let mut set = VectorSet::new(dim);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|d| ((i * 31 + d * 7) % 97) as f32).collect();
            set.push(&v);
        }
        set
    }

    fn flat_replicas(base: &VectorSet, n: usize) -> Vec<Box<dyn FallibleIndex>> {
        (0..n)
            .map(|_| {
                let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base.clone()));
                Box::new(index) as Box<dyn FallibleIndex>
            })
            .collect()
    }

    fn group_with_plans(
        base: &VectorSet,
        plans: Vec<Option<FaultPlan>>,
        routing: RoutingPolicy,
        health: HealthConfig,
    ) -> ReplicaGroup {
        let members = plans
            .into_iter()
            .map(|plan| {
                let index: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base.clone()));
                match plan {
                    Some(plan) => Box::new(FaultyIndex::new(index, plan)) as Box<dyn FallibleIndex>,
                    None => Box::new(index) as Box<dyn FallibleIndex>,
                }
            })
            .collect();
        ReplicaGroup::from_replicas(members, routing, health)
    }

    #[test]
    fn router_orders_by_policy() {
        let candidates = |loads: [u64; 3]| {
            (0..3)
                .map(|i| RouteCandidate {
                    replica: i,
                    healthy: true,
                    due_probe: false,
                    load_ns: loads[i],
                })
                .collect::<Vec<_>>()
        };
        let primary = Router::new(RoutingPolicy::Primary);
        assert_eq!(primary.plan(&candidates([5, 0, 9])), vec![0, 1, 2]);

        let rr = Router::new(RoutingPolicy::RoundRobin);
        assert_eq!(rr.plan(&candidates([0, 0, 0])), vec![0, 1, 2]);
        assert_eq!(rr.plan(&candidates([0, 0, 0])), vec![1, 2, 0]);
        assert_eq!(rr.plan(&candidates([0, 0, 0])), vec![2, 0, 1]);
        assert_eq!(rr.plan(&candidates([0, 0, 0])), vec![0, 1, 2]);

        let load = Router::new(RoutingPolicy::LoadAware);
        assert_eq!(load.plan(&candidates([5, 0, 9])), vec![1, 0, 2]);
        assert_eq!(
            load.plan(&candidates([7, 7, 7])),
            vec![0, 1, 2],
            "ties by index"
        );
    }

    #[test]
    fn router_puts_due_probes_first_and_down_last() {
        let candidates = vec![
            RouteCandidate {
                replica: 0,
                healthy: false,
                due_probe: false,
                load_ns: 0,
            },
            RouteCandidate {
                replica: 1,
                healthy: true,
                due_probe: false,
                load_ns: 0,
            },
            RouteCandidate {
                replica: 2,
                healthy: false,
                due_probe: true,
                load_ns: 0,
            },
        ];
        let router = Router::new(RoutingPolicy::Primary);
        assert_eq!(router.plan(&candidates), vec![2, 1, 0]);
    }

    #[test]
    fn failover_returns_identical_results_and_marks_down() {
        let base = corpus(60, 4);
        let want =
            FlatIndex::new(base.clone()).search(&SearchRequest::new(base.get(3).to_vec(), 5));
        for routing in RoutingPolicy::ALL {
            let group = group_with_plans(
                &base,
                vec![Some(FaultPlan::new().die_at(0)), None],
                routing,
                HealthConfig::default(),
            );
            let req = SearchRequest::new(base.get(3).to_vec(), 5);
            let got = group.search(&req);
            assert_eq!(got.hits, want.hits, "{routing}");
            let stats = group.failover_stats();
            assert_eq!(stats.retries, 1, "{routing}: dead replica retried once");
            assert_eq!(stats.markdowns, 1, "{routing}");
            assert!(group.is_marked_down(0), "{routing}");
            assert_eq!(
                group.generation(),
                1,
                "{routing}: markdown bumps generation"
            );
            // Subsequent searches route straight to the healthy sibling.
            let again = group.search(&req);
            assert_eq!(again.hits, want.hits, "{routing}");
            assert_eq!(
                group.failover_stats().retries,
                1,
                "{routing}: no more retries"
            );
        }
    }

    #[test]
    fn probe_recovers_a_revived_replica() {
        let base = corpus(40, 4);
        let health = HealthConfig {
            error_threshold: 1,
            probe_after: 3,
        };
        // Replica 0 dies on its first call and revives on its second.
        let group = group_with_plans(
            &base,
            vec![Some(FaultPlan::new().die_at(0).revive_at(1)), None],
            RoutingPolicy::Primary,
            health,
        );
        let req = SearchRequest::new(base.get(0).to_vec(), 4);
        group.search(&req); // call 0: fails over, marks 0 down
        assert!(group.is_marked_down(0));
        for _ in 0..3 {
            group.search(&req); // sit-out window
        }
        assert!(
            !group.is_marked_down(0),
            "probe must have recovered replica 0"
        );
        let stats = group.replica_stats();
        assert_eq!(stats[0].probes, 1);
        assert_eq!(stats[0].recoveries, 1);
        assert_eq!(group.generation(), 2, "markdown + recovery");
    }

    #[test]
    fn failed_probe_restarts_the_sit_out_window() {
        let base = corpus(40, 4);
        let health = HealthConfig {
            error_threshold: 1,
            probe_after: 2,
        };
        let group = group_with_plans(
            &base,
            vec![Some(FaultPlan::new().die_at(0)), None], // never revives
            RoutingPolicy::Primary,
            health,
        );
        let req = SearchRequest::new(base.get(1).to_vec(), 4);
        for _ in 0..8 {
            group.search(&req);
        }
        let stats = group.replica_stats();
        assert!(stats[0].probes >= 2, "dead replica keeps being probed");
        assert_eq!(stats[0].recoveries, 0);
        assert!(group.is_marked_down(0));
        assert_eq!(
            group.generation(),
            1,
            "failed probes do not bump generation"
        );
    }

    #[test]
    fn error_threshold_tolerates_blips() {
        let base = corpus(40, 4);
        let health = HealthConfig {
            error_threshold: 2,
            probe_after: 100,
        };
        let group = group_with_plans(
            &base,
            // One isolated transient error: below the threshold.
            vec![Some(FaultPlan::new().fail_on(1)), None],
            RoutingPolicy::Primary,
            health,
        );
        let req = SearchRequest::new(base.get(2).to_vec(), 4);
        for _ in 0..4 {
            group.search(&req);
        }
        assert!(!group.is_marked_down(0), "one blip must not mark down");
        let stats = group.failover_stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.markdowns, 0);
        assert_eq!(group.generation(), 0);
    }

    /// A byzantine replica: answers every request, but with hit ids
    /// shifted outside the dense local id space — the shape of a
    /// misbehaving remote node in the distributed setting.
    struct EvilReplica {
        inner: FlatIndex,
        offset: u64,
    }

    impl FallibleIndex for EvilReplica {
        fn len(&self) -> usize {
            AnnIndex::len(&self.inner)
        }
        fn dim(&self) -> usize {
            AnnIndex::dim(&self.inner)
        }
        fn try_search(&self, request: &SearchRequest) -> Result<SearchResponse, FaultError> {
            let mut response = self.inner.search(request);
            for h in &mut response.hits {
                h.id += self.offset;
            }
            Ok(response)
        }
        fn memory_bytes(&self) -> usize {
            AnnIndex::memory_bytes(&self.inner)
        }
    }

    #[test]
    fn malformed_replica_response_fails_over_instead_of_aborting() {
        let base = corpus(50, 4);
        let members: Vec<Box<dyn FallibleIndex>> = vec![
            Box::new(EvilReplica {
                inner: FlatIndex::new(base.clone()),
                offset: 1_000,
            }),
            {
                let healthy: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base.clone()));
                Box::new(healthy)
            },
        ];
        let group =
            ReplicaGroup::from_replicas(members, RoutingPolicy::Primary, HealthConfig::default());
        let req = SearchRequest::new(base.get(4).to_vec(), 5);
        let want = FlatIndex::new(base.clone()).search(&req);
        // Under a sharded coordinator the out-of-range ids would have
        // panicked at gather time; the group must instead reject the
        // malformed answer, retry the sibling, and mark the liar down.
        let got = group.search(&req);
        assert_eq!(got.hits, want.hits);
        assert!(got.hits.iter().all(|h| (h.id as usize) < group.len()));
        let stats = group.failover_stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.markdowns, 1);
        assert!(group.is_marked_down(0), "byzantine replica is marked down");

        // And the full stack serves correct global results through it.
        let sharded = ShardedIndex::from_parts(
            vec![(Box::new(group) as Box<dyn AnnIndex>, (0..50).collect())],
            ShardPolicy::RoundRobin,
            Arc::new(WorkerPool::new(2)),
        );
        assert_eq!(sharded.search(&req).hits, want.hits);
    }

    #[test]
    #[should_panic(expected = "all 2 replicas failed")]
    fn fully_failed_group_panics_with_context() {
        let base = corpus(10, 4);
        let group = group_with_plans(
            &base,
            vec![
                Some(FaultPlan::new().die_at(0)),
                Some(FaultPlan::new().die_at(0)),
            ],
            RoutingPolicy::Primary,
            HealthConfig::default(),
        );
        let _ = group.search(&SearchRequest::new(base.get(0).to_vec(), 3));
    }

    #[test]
    fn group_rejects_mismatched_replicas() {
        let a = corpus(10, 4);
        let b = corpus(12, 4);
        let mut members = flat_replicas(&a, 1);
        members.extend(flat_replicas(&b, 1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ReplicaGroup::from_replicas(members, RoutingPolicy::Primary, HealthConfig::default())
        }));
        assert!(result.is_err(), "length mismatch must be rejected");
    }

    #[test]
    fn replica_group_build_makes_identical_copies() {
        let base = corpus(80, 8);
        let builder = IndexBuilder::new(engine::GraphKind::Hnsw, engine::Coding::Sq)
            .c(32)
            .r(8)
            .seed(5);
        let group = ReplicaGroup::build(
            base.clone(),
            &builder,
            3,
            RoutingPolicy::RoundRobin,
            HealthConfig::default(),
        );
        assert_eq!(group.replica_count(), 3);
        assert_eq!(group.len(), 80);
        assert_eq!(group.dim(), 8);
        let single = builder.build(base.clone());
        // Exhaustive settings: every replica (round-robin picks a
        // different one per call) equals the monolithic build exactly.
        for qi in [0usize, 13, 41] {
            let req = SearchRequest::new(base.get(qi).to_vec(), 5)
                .ef(128)
                .rerank(16);
            let want = single.search(&req).hits;
            for _ in 0..3 {
                assert_eq!(group.search(&req).hits, want, "query {qi}");
            }
        }
        assert_eq!(group.failover_stats().errors, 0);
    }

    #[test]
    fn replicated_index_shards_and_replicates() {
        let base = corpus(90, 8);
        let builder = IndexBuilder::new(engine::GraphKind::Hnsw, engine::Coding::Full)
            .c(32)
            .r(8)
            .seed(3);
        let replicated = ReplicatedIndex::build(
            base.clone(),
            &builder,
            3,
            2,
            ShardPolicy::RoundRobin,
            RoutingPolicy::RoundRobin,
            HealthConfig::default(),
            4,
        );
        assert_eq!(replicated.len(), 90);
        assert_eq!(replicated.shard_count(), 3);
        assert_eq!(replicated.replica_count(), 2);
        assert_eq!(replicated.routing(), RoutingPolicy::RoundRobin);
        let req = SearchRequest::new(base.get(7).to_vec(), 6)
            .ef(128)
            .rerank(16);
        let want = FlatIndex::new(base.clone()).search(&req);
        assert_eq!(replicated.search(&req).hits, want.hits);
        // Replicas are physical copies: memory doubles relative to 1 shard
        // of each (roughly — compare against the unreplicated build).
        let unreplicated = ShardedIndex::build(base, &builder, 3, ShardPolicy::RoundRobin, 2);
        assert!(replicated.memory_bytes() > unreplicated.memory_bytes());
    }
}
