//! A hand-rolled fixed-size worker pool on `std::thread` + channels.
//!
//! The workspace's `rayon` stand-in is sequential (no crates.io access),
//! so the serving layer brings its own parallelism: N OS threads pull
//! boxed jobs from one shared channel. Results are returned **in job
//! order** regardless of which worker finishes first, so every caller is
//! deterministic by construction.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool-id generator (0 is reserved for "not a worker thread").
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// The id of the pool this thread serves, if it is a worker thread.
    static SERVING_POOL: Cell<usize> = const { Cell::new(0) };
}

/// A fixed pool of worker threads executing boxed jobs.
///
/// Jobs are distributed through one multi-consumer queue; [`Self::run`]
/// scatters a job list and gathers results back into submission order.
/// Dropping the pool closes the queue and joins every worker.
pub struct WorkerPool {
    id: usize,
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("serving-worker-{i}"))
                    .spawn(move || {
                        SERVING_POOL.with(|p| p.set(id));
                        worker_loop(&receiver);
                    })
                    .expect("failed to spawn serving worker thread")
            })
            .collect();
        Self {
            id,
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one fire-and-forget job.
    ///
    /// # Panics
    /// Panics if every worker has died (only possible after a job panic).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("worker pool has shut down");
    }

    /// Runs every job on the pool and returns their results **in job
    /// order** — scheduling order never leaks into the output, which is
    /// what makes scatter-gather search deterministic.
    ///
    /// Re-entrant: when called *from one of this pool's own workers* (a
    /// nested `ShardedIndex` sharing the pool, or a job that fans out
    /// again), the jobs run inline on the current thread instead of being
    /// enqueued — enqueue-and-block from a worker would deadlock once
    /// every worker waits on sub-jobs that no free worker can run.
    ///
    /// # Panics
    /// Panics if a job panics (the panic is surfaced here, not swallowed).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if SERVING_POOL.with(|p| p.get()) == self.id {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let n = jobs.len();
        let (tx, rx) = channel::<(usize, std::thread::Result<T>)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                // The receiver may be gone if an earlier job panicked and
                // the caller already unwound; nothing useful to do then.
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = rx.recv().expect("a worker died without reporting");
            match result {
                Ok(v) => slots[i] = Some(v),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job reported exactly once"))
            .collect()
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the queue lock only while dequeuing, never while running.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match job {
            Ok(job) => job(),
            Err(_) => break, // queue closed: pool is shutting down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the queue
        for worker in self.workers.drain(..) {
            let _ = worker.join(); // a panicked worker already unwound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_in_order() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let jobs: Vec<_> = (0..64u64).map(|i| move || i * i).collect();
        let results = pool.run(jobs);
        assert_eq!(results, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = WorkerPool::new(0); // clamped to 1
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(vec![|| 7]), vec![7]);
    }

    #[test]
    fn execute_actually_parallelizes_state() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = Arc::clone(&counter);
                move || c.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let _ = pool.run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop waits for the queue to drain
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let pool = WorkerPool::new(2);
        let results: Vec<u8> = pool.run(Vec::<fn() -> u8>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn nested_run_on_same_pool_executes_inline() {
        // A job that fans out on its own pool must not deadlock: with 2
        // workers and 4 outer jobs each blocking on 3 inner jobs, the
        // enqueue-and-wait strategy would starve; inline execution runs
        // the inner jobs on the occupied worker instead.
        let pool = Arc::new(WorkerPool::new(2));
        let jobs: Vec<_> = (0..4u64)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<u64> = pool.run((0..3u64).map(|j| move || i * 10 + j).collect());
                    inner.iter().sum::<u64>()
                }
            })
            .collect();
        let results = pool.run(jobs);
        assert_eq!(results, vec![3, 33, 63, 93]);
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom")), Box::new(|| 3)];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(jobs)));
        assert!(caught.is_err());
    }
}
