//! The frame layer of the distributed serving protocol.
//!
//! One frame carries one [`Message`]:
//!
//! ```text
//! ┌────────┬─────────┬──────┬──────────┬─────────────┬─────────┬──────────────┐
//! │ magic  │ version │ kind │ trace_id │ payload_len │ payload │ FNV-1a 64    │
//! │ u16 LE │ u16 LE  │ u8   │ u64 LE   │ u32 LE      │ bytes   │ of payload   │
//! └────────┴─────────┴──────┴──────────┴─────────────┴─────────┴──────────────┘
//! ```
//!
//! Everything is explicit little-endian; payloads reuse the
//! `engine::wire` request/response encoding. The header's `trace_id`
//! (`0` = untraced) stitches node-side spans to the coordinator's trace:
//! a node answers with the request's trace id and records its own spans
//! under it, so a later [`Message::StatsRequest`] scrape returns spans a
//! coordinator can merge by id. A frame is rejected — never guessed at —
//! when the magic or version disagrees, the kind is unknown, the
//! checksum mismatches, the payload is truncated, or trailing bytes
//! follow the payload. Decoding is driven entirely by the declared
//! `payload_len`, so a reader can frame a byte stream without
//! understanding the payloads.

use crate::distributed::TransportError;
use crate::fault::{FaultError, FaultKind};
use engine::wire::{
    decode_request, decode_response, encode_request, encode_response, WireReader, WireWriter,
};
use engine::{SearchRequest, SearchResponse, WireError};
use metrics::trace::LANE_NONE;
use metrics::{SpanKind, SpanRecord, TransportStats};
use std::io::{Read, Write};

/// First two bytes of every frame (`"HW"` little-endian).
pub const WIRE_MAGIC: u16 = 0x4857;
/// Protocol revision; bumped on any layout change (v2 added the header
/// trace id and the stats message pair; v3 added the per-response query
/// cost profile and the node-side cumulative profile in stats).
pub const WIRE_VERSION: u16 = 3;
/// Header bytes before the payload (magic + version + kind + trace id +
/// length).
pub const HEADER_LEN: usize = 17;
/// Checksum bytes after the payload.
pub const TRAILER_LEN: usize = 8;
/// Frames larger than this are rejected before allocation — no legitimate
/// request or response gets close.
pub const MAX_PAYLOAD: usize = 256 << 20;

/// What went wrong on the node, as reported in an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The node could not make sense of the request frame.
    BadRequest = 1,
    /// The request is valid but the node cannot serve it (e.g. a frame
    /// kind this node does not handle).
    Unsupported = 2,
    /// The node's index reported a transient fault; a retry may succeed.
    FaultTransient = 3,
    /// The node's index is dead; retries fail until it recovers.
    FaultDead = 4,
    /// The node failed internally.
    Internal = 5,
    /// The node's admission control shed the request (queue full, quota
    /// exceeded, or deadline passed while queued); a retry on a sibling —
    /// or later — may succeed.
    Overloaded = 6,
}

impl ErrorCode {
    fn from_u16(x: u16) -> Result<Self, WireError> {
        Ok(match x {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::FaultTransient,
            4 => ErrorCode::FaultDead,
            5 => ErrorCode::Internal,
            6 => ErrorCode::Overloaded,
            other => return Err(WireError::Malformed(format!("unknown error code {other}"))),
        })
    }
}

/// A structured node-side error carried by [`Message::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// What failed.
    pub code: ErrorCode,
    /// Human-readable context (never parsed by the client).
    pub message: String,
}

impl WireFault {
    /// The error frame a node answers with when its index faults.
    pub fn from_fault(error: FaultError) -> Self {
        let code = match error.kind {
            FaultKind::Transient => ErrorCode::FaultTransient,
            FaultKind::Dead => ErrorCode::FaultDead,
            FaultKind::Malformed => ErrorCode::Internal,
        };
        Self {
            code,
            message: error.to_string(),
        }
    }

    /// The client-side [`FaultError`] this frame maps back to, stamped
    /// with the client's own call counter. Protocol-level codes
    /// (`BadRequest`/`Unsupported`/`Internal`) surface as
    /// [`FaultKind::Malformed`] — the node answered, but not with results.
    /// [`ErrorCode::Overloaded`] maps to [`FaultKind::Transient`]: a shed
    /// request is retryable, so the replica layer routes around the
    /// saturated node exactly as it routes around a transient fault.
    pub fn to_fault(&self, call: u64) -> FaultError {
        let kind = match self.code {
            ErrorCode::FaultTransient | ErrorCode::Overloaded => FaultKind::Transient,
            ErrorCode::FaultDead => FaultKind::Dead,
            ErrorCode::BadRequest | ErrorCode::Unsupported | ErrorCode::Internal => {
                FaultKind::Malformed
            }
        };
        FaultError { call, kind }
    }
}

/// A node's identity card, answered to [`Message::InfoRequest`] — what
/// [`super::RemoteIndex`] needs to stand in as an `AnnIndex`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfo {
    /// Vectors the node serves.
    pub len: u64,
    /// Vector dimensionality.
    pub dim: u32,
    /// Resident bytes of the node's index.
    pub memory_bytes: u64,
    /// Uptime in requests: search frames served since the node started
    /// (a restart shows as this going backwards).
    pub requests: u64,
    /// The node's data generation (bumped on mutation/rebuild), so a
    /// scrape can show node health without a separate probe.
    pub generation: u64,
}

/// A node's live observability snapshot, answered to
/// [`Message::StatsRequest`]: identity, server-side transport counters,
/// and the node's retained span buffer (stitched to coordinator traces
/// by the header trace ids).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// The identity card at scrape time.
    pub info: NodeInfo,
    /// Server-side frame/byte/failure counters.
    pub transport: TransportStats,
    /// Sum of the [`metrics::QueryProfile`]s of every search the node
    /// served since it started — the node-side ledger a coordinator
    /// reconciles its own aggregated profiles against.
    pub profile: metrics::QueryProfile,
    /// Retained node-side spans, in ring claim order.
    pub spans: Vec<SpanRecord>,
}

impl NodeStats {
    /// This snapshot as a JSON object (the `flash_cli stats` output).
    pub fn to_json(&self) -> metrics::Json {
        use metrics::Json;
        Json::Obj(vec![
            (
                "info".into(),
                Json::Obj(vec![
                    ("len".into(), Json::uint(self.info.len)),
                    ("dim".into(), Json::uint(u64::from(self.info.dim))),
                    ("memory_bytes".into(), Json::uint(self.info.memory_bytes)),
                    ("requests".into(), Json::uint(self.info.requests)),
                    ("generation".into(), Json::uint(self.info.generation)),
                ]),
            ),
            ("transport".into(), self.transport.to_json()),
            ("profile".into(), self.profile.to_json()),
            (
                "spans".into(),
                Json::Arr(self.spans.iter().map(SpanRecord::to_json).collect()),
            ),
        ])
    }
}

/// Everything that can cross the wire, one frame per message.
#[derive(Debug, Clone)]
pub enum Message {
    /// Coordinator → node: serve this request.
    Search(SearchRequest),
    /// Node → coordinator: the results.
    SearchOk(SearchResponse),
    /// Node → coordinator: the request failed.
    Error(WireFault),
    /// Coordinator → node: who are you?
    InfoRequest,
    /// Node → coordinator: identity card.
    InfoResponse(NodeInfo),
    /// Coordinator/CLI → node: hand over your counters and spans.
    StatsRequest,
    /// Node → coordinator: the live observability snapshot.
    StatsResponse(NodeStats),
}

fn encode_info(info: &NodeInfo, payload: &mut WireWriter) {
    payload.put_u64(info.len);
    payload.put_u32(info.dim);
    payload.put_u64(info.memory_bytes);
    payload.put_u64(info.requests);
    payload.put_u64(info.generation);
}

fn decode_info(p: &mut WireReader<'_>) -> Result<NodeInfo, WireError> {
    Ok(NodeInfo {
        len: p.get_u64()?,
        dim: p.get_u32()?,
        memory_bytes: p.get_u64()?,
        requests: p.get_u64()?,
        generation: p.get_u64()?,
    })
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Search(_) => 0,
            Message::SearchOk(_) => 1,
            Message::Error(_) => 2,
            Message::InfoRequest => 3,
            Message::InfoResponse(_) => 4,
            Message::StatsRequest => 5,
            Message::StatsResponse(_) => 6,
        }
    }

    /// The frame kind's diagnostic name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Search(_) => "Search",
            Message::SearchOk(_) => "SearchOk",
            Message::Error(_) => "Error",
            Message::InfoRequest => "InfoRequest",
            Message::InfoResponse(_) => "InfoResponse",
            Message::StatsRequest => "StatsRequest",
            Message::StatsResponse(_) => "StatsResponse",
        }
    }

    /// Encodes one untraced full frame (trace id `0`) — see
    /// [`Self::encode_traced`].
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        self.encode_traced(0)
    }

    /// Encodes one full frame (header + payload + checksum) carrying
    /// `trace_id` in the header (`0` = untraced).
    ///
    /// Fails only for values with no wire form (a predicate-filtered
    /// [`SearchRequest`]).
    pub fn encode_traced(&self, trace_id: u64) -> Result<Vec<u8>, WireError> {
        let mut payload = WireWriter::new();
        match self {
            Message::Search(request) => encode_request(request, &mut payload)?,
            Message::SearchOk(response) => encode_response(response, &mut payload),
            Message::Error(fault) => {
                payload.put_u16(fault.code as u16);
                payload.put_u32(fault.message.len() as u32);
                payload.put_bytes(fault.message.as_bytes());
            }
            Message::InfoRequest => {}
            Message::InfoResponse(info) => encode_info(info, &mut payload),
            Message::StatsRequest => {}
            Message::StatsResponse(stats) => {
                encode_info(&stats.info, &mut payload);
                payload.put_u64(stats.transport.frames_sent);
                payload.put_u64(stats.transport.frames_received);
                payload.put_u64(stats.transport.bytes_sent);
                payload.put_u64(stats.transport.bytes_received);
                payload.put_u64(stats.transport.errors);
                payload.put_u64(stats.transport.timeouts);
                payload.put_u64(stats.transport.reconnects);
                for x in stats.profile.as_array() {
                    payload.put_u64(x);
                }
                payload.put_u32(stats.spans.len() as u32);
                for span in &stats.spans {
                    let (a, b) = span.kind.payload();
                    payload.put_u64(span.trace_id);
                    payload.put_u64(span.seq);
                    payload.put_u8(span.kind.code());
                    payload.put_u32(span.lane_raw());
                    payload.put_u64(a);
                    payload.put_u64(b);
                    payload.put_u64(span.elapsed_ns);
                }
            }
        }
        let payload = payload.into_bytes();
        let mut frame = WireWriter::new();
        frame.put_u16(WIRE_MAGIC);
        frame.put_u16(WIRE_VERSION);
        frame.put_u8(self.kind());
        frame.put_u64(trace_id);
        frame.put_u32(payload.len() as u32);
        frame.put_bytes(&payload);
        frame.put_u64(fnv1a_64(&payload));
        Ok(frame.into_bytes())
    }

    /// Decodes one frame from the front of `bytes`, returning the
    /// message and the bytes consumed (the header trace id is dropped —
    /// see [`Self::decode_traced`]).
    pub fn decode(bytes: &[u8]) -> Result<(Message, usize), WireError> {
        let (message, _, consumed) = Self::decode_traced(bytes)?;
        Ok((message, consumed))
    }

    /// Decodes one frame from the front of `bytes`, returning the
    /// message, its header trace id, and the bytes consumed (a stream
    /// may hold several frames).
    pub fn decode_traced(bytes: &[u8]) -> Result<(Message, u64, usize), WireError> {
        let mut r = WireReader::new(bytes);
        let magic = r.get_u16()?;
        if magic != WIRE_MAGIC {
            return Err(WireError::Malformed(format!(
                "bad frame magic {magic:#06x} (expected {WIRE_MAGIC:#06x})"
            )));
        }
        let version = r.get_u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::Malformed(format!(
                "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
            )));
        }
        let kind = r.get_u8()?;
        let trace_id = r.get_u64()?;
        let payload_len = r.get_u32()? as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(WireError::Malformed(format!(
                "payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
            )));
        }
        let payload = r.get_bytes(payload_len)?;
        let checksum = r.get_u64()?;
        if checksum != fnv1a_64(payload) {
            return Err(WireError::Malformed(
                "frame checksum mismatch (corrupt payload)".into(),
            ));
        }
        let consumed = r.consumed();
        let mut p = WireReader::new(payload);
        let message = match kind {
            0 => Message::Search(decode_request(&mut p)?),
            1 => Message::SearchOk(decode_response(&mut p)?),
            2 => {
                let code = ErrorCode::from_u16(p.get_u16()?)?;
                let len = p.get_u32()? as usize;
                let message = String::from_utf8(p.get_bytes(len)?.to_vec())
                    .map_err(|_| WireError::Malformed("error message is not UTF-8".into()))?;
                Message::Error(WireFault { code, message })
            }
            3 => Message::InfoRequest,
            4 => Message::InfoResponse(decode_info(&mut p)?),
            5 => Message::StatsRequest,
            6 => {
                let info = decode_info(&mut p)?;
                let transport = TransportStats {
                    frames_sent: p.get_u64()?,
                    frames_received: p.get_u64()?,
                    bytes_sent: p.get_u64()?,
                    bytes_received: p.get_u64()?,
                    errors: p.get_u64()?,
                    timeouts: p.get_u64()?,
                    reconnects: p.get_u64()?,
                };
                let mut fields = [0u64; metrics::profile::PROFILE_FIELDS.len()];
                for slot in &mut fields {
                    *slot = p.get_u64()?;
                }
                let profile = metrics::QueryProfile::from_array(fields);
                let count = p.get_u32()? as usize;
                let mut spans = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    let span_trace = p.get_u64()?;
                    let seq = p.get_u64()?;
                    let code = p.get_u8()?;
                    let lane_raw = p.get_u32()?;
                    let a = p.get_u64()?;
                    let b = p.get_u64()?;
                    let elapsed_ns = p.get_u64()?;
                    let kind = SpanKind::from_raw(code, a, b)
                        .ok_or_else(|| WireError::Malformed(format!("unknown span kind {code}")))?;
                    spans.push(SpanRecord {
                        trace_id: span_trace,
                        seq,
                        lane: (lane_raw != LANE_NONE).then_some(lane_raw),
                        kind,
                        elapsed_ns,
                    });
                }
                Message::StatsResponse(NodeStats {
                    info,
                    transport,
                    profile,
                    spans,
                })
            }
            other => return Err(WireError::Malformed(format!("unknown frame kind {other}"))),
        };
        p.finish()?;
        Ok((message, trace_id, consumed))
    }
}

/// Writes one message as a frame carrying `trace_id` (`0` = untraced),
/// returning the bytes put on the wire.
pub fn write_message(
    w: &mut impl Write,
    message: &Message,
    trace_id: u64,
) -> Result<usize, TransportError> {
    let frame = message.encode_traced(trace_id)?;
    w.write_all(&frame)
        .map_err(|e| TransportError::from_io("write frame", &e))?;
    w.flush()
        .map_err(|e| TransportError::from_io("flush frame", &e))?;
    Ok(frame.len())
}

/// Reads one message off a byte stream, returning it with its header
/// trace id and the bytes consumed. `Ok(None)` means the peer closed the
/// connection cleanly *between* frames; mid-frame EOF is an error.
pub fn read_message(r: &mut impl Read) -> Result<Option<(Message, u64, usize)>, TransportError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r
            .read(&mut header[filled..])
            .map_err(|e| TransportError::from_io("read frame header", &e))?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(TransportError::Io(format!(
                "connection closed mid-header ({filled}/{HEADER_LEN} bytes)"
            )));
        }
        filled += n;
    }
    // The declared payload length drives the rest of the read.
    let payload_len = u32::from_le_bytes(header[13..17].try_into().unwrap()) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(TransportError::Wire(WireError::Malformed(format!(
            "payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        ))));
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload_len + TRAILER_LEN);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + payload_len + TRAILER_LEN, 0);
    r.read_exact(&mut frame[HEADER_LEN..])
        .map_err(|e| TransportError::from_io("read frame body", &e))?;
    let (message, trace_id, consumed) = Message::decode_traced(&frame)?;
    debug_assert_eq!(consumed, frame.len());
    Ok(Some((message, trace_id, consumed)))
}

/// One-shot FNV-1a over a byte slice (stable across runs and platforms;
/// the multiplier is the FNV-64 prime 2⁴⁰ + 2⁸ + 0xb3 — this constant is
/// wire format, other implementations must match it).
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::Hit;

    fn roundtrip(message: &Message) -> Message {
        let bytes = message.encode().unwrap();
        let (decoded, consumed) = Message::decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len(), "whole frame consumed");
        // Re-encoding must reproduce the identical bytes: the codec has
        // one canonical form.
        assert_eq!(decoded.encode().unwrap(), bytes);
        decoded
    }

    fn sample_info() -> NodeInfo {
        NodeInfo {
            len: 1000,
            dim: 128,
            memory_bytes: 1 << 20,
            requests: 42,
            generation: 3,
        }
    }

    #[test]
    fn every_message_kind_roundtrips() {
        let request = SearchRequest::new(vec![1.0, -2.5, 0.0], 4).ef(96).rerank(2);
        let response =
            SearchResponse::from_hits(vec![Hit { id: 1, dist: 0.25 }, Hit { id: 9, dist: 0.5 }]);
        for message in [
            Message::Search(request),
            Message::SearchOk(response),
            Message::Error(WireFault {
                code: ErrorCode::FaultDead,
                message: "replica dead at call 3".into(),
            }),
            Message::InfoRequest,
            Message::InfoResponse(sample_info()),
            Message::StatsRequest,
            Message::StatsResponse(NodeStats {
                info: sample_info(),
                transport: TransportStats {
                    frames_sent: 9,
                    frames_received: 9,
                    bytes_sent: 900,
                    bytes_received: 1800,
                    errors: 1,
                    timeouts: 0,
                    reconnects: 2,
                },
                profile: metrics::QueryProfile {
                    hops_upper: 10,
                    hops_base: 120,
                    dist_coded: 4000,
                    dist_exact: 90,
                    rows_scored: 130,
                    codeword_bytes: 64_000,
                    visited_inserts: 1500,
                    rerank_pool: 80,
                    scratch_checkouts: 9,
                },
                spans: vec![
                    SpanRecord {
                        trace_id: 0xDEAD_BEEF,
                        seq: 0,
                        lane: None,
                        kind: SpanKind::WireExchange {
                            bytes_out: 64,
                            bytes_in: 256,
                        },
                        elapsed_ns: 1234,
                    },
                    SpanRecord {
                        trace_id: 0xDEAD_BEEF,
                        seq: 1,
                        lane: Some(2),
                        kind: SpanKind::ReplicaAttempt {
                            replica: 1,
                            outcome: metrics::SpanOutcome::Ok,
                        },
                        elapsed_ns: 0,
                    },
                ],
            }),
        ] {
            let decoded = roundtrip(&message);
            assert_eq!(decoded.kind_name(), message.kind_name());
            if let (Message::StatsResponse(got), Message::StatsResponse(want)) =
                (&decoded, &message)
            {
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn header_trace_id_roundtrips() {
        let bytes = Message::InfoRequest
            .encode_traced(0xABCD_EF01_2345)
            .unwrap();
        let (message, trace_id, consumed) = Message::decode_traced(&bytes).unwrap();
        assert_eq!(trace_id, 0xABCD_EF01_2345);
        assert_eq!(consumed, bytes.len());
        assert_eq!(message.kind_name(), "InfoRequest");
        // Untraced frames carry the reserved zero id.
        let (_, untraced, _) =
            Message::decode_traced(&Message::InfoRequest.encode().unwrap()).unwrap();
        assert_eq!(untraced, 0);
    }

    #[test]
    fn truncated_frames_are_rejected_at_every_cut() {
        let bytes = Message::InfoResponse(sample_info()).encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must be rejected",
                bytes.len()
            );
        }
    }

    #[test]
    fn corrupt_payload_fails_the_checksum() {
        let mut bytes = Message::Search(SearchRequest::new(vec![1.0, 2.0], 3))
            .encode()
            .unwrap();
        let payload_at = HEADER_LEN + 2;
        bytes[payload_at] ^= 0x01;
        let err = Message::decode(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Malformed(ref what) if what.contains("checksum")));
    }

    #[test]
    fn wrong_magic_version_and_kind_are_rejected() {
        let good = Message::InfoRequest.encode().unwrap();
        let mut bad_magic = good.clone();
        bad_magic[0] = 0;
        assert!(Message::decode(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[2] = 0xFF;
        assert!(Message::decode(&bad_version).is_err());
        let mut bad_kind = good.clone();
        bad_kind[4] = 200;
        assert!(Message::decode(&bad_kind).is_err());
    }

    #[test]
    fn stream_read_write_roundtrips_and_detects_eof() {
        let mut buf = Vec::new();
        let a = Message::InfoRequest;
        let b = Message::Error(WireFault {
            code: ErrorCode::BadRequest,
            message: "nope".into(),
        });
        let wrote_a = write_message(&mut buf, &a, 77).unwrap();
        let wrote_b = write_message(&mut buf, &b, 0).unwrap();
        let mut cursor = std::io::Cursor::new(&buf);
        let (got_a, trace_a, read_a) = read_message(&mut cursor).unwrap().unwrap();
        let (got_b, trace_b, read_b) = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!((read_a, read_b), (wrote_a, wrote_b));
        assert_eq!((trace_a, trace_b), (77, 0));
        assert_eq!(got_a.kind_name(), "InfoRequest");
        assert!(matches!(got_b, Message::Error(ref f) if f.code == ErrorCode::BadRequest));
        assert!(read_message(&mut cursor).unwrap().is_none(), "clean EOF");
        // Mid-frame EOF is an error, not a silent None.
        let mut truncated = std::io::Cursor::new(&buf[..wrote_a + 3]);
        let _ = read_message(&mut truncated).unwrap();
        assert!(read_message(&mut truncated).is_err());
    }

    #[test]
    fn fault_codes_map_back_to_kinds() {
        let transient = WireFault::from_fault(FaultError {
            call: 2,
            kind: FaultKind::Transient,
        });
        assert_eq!(transient.code, ErrorCode::FaultTransient);
        assert_eq!(transient.to_fault(9).kind, FaultKind::Transient);
        assert_eq!(transient.to_fault(9).call, 9);
        let dead = WireFault::from_fault(FaultError {
            call: 0,
            kind: FaultKind::Dead,
        });
        assert_eq!(dead.to_fault(1).kind, FaultKind::Dead);
        let internal = WireFault {
            code: ErrorCode::Internal,
            message: String::new(),
        };
        assert_eq!(internal.to_fault(0).kind, FaultKind::Malformed);
        // A shed request is retryable: the replica layer must treat it
        // like a transient fault, not a dead or byzantine node.
        let overloaded = WireFault {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        };
        assert_eq!(overloaded.to_fault(4).kind, FaultKind::Transient);
    }

    #[test]
    fn overloaded_frames_roundtrip() {
        let decoded = roundtrip(&Message::Error(WireFault {
            code: ErrorCode::Overloaded,
            message: "shed after 12ms in queue".into(),
        }));
        let Message::Error(fault) = decoded else {
            panic!("expected an Error frame");
        };
        assert_eq!(fault.code, ErrorCode::Overloaded);
        assert_eq!(fault.message, "shed after 12ms in queue");
    }
}
