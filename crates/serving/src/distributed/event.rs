//! The event-driven serving front-end: one readiness loop per thread
//! multiplexing many client connections, with admission control.
//!
//! [`EventServer`] serves the same [`NodeHandler`] behind the same wire
//! protocol as the thread-per-connection [`super::NodeServer`], but its
//! capacity does not stop at `threads` concurrent clients: each loop
//! thread owns a set of **non-blocking** sockets and polls them for
//! readiness (hand-rolled over `std::net`, in the spirit of the
//! hand-rolled `WorkerPool` — no mio/tokio), so hundreds of connections
//! share a handful of threads, and frames **pipeline**: a client may
//! write N request frames back to back and read N replies, in order,
//! without waiting for each round trip.
//!
//! On top of the loop sit the production-traffic controls
//! ([`EventConfig`]):
//!
//! * **adaptive batching** — parsed requests queue per connection and are
//!   executed when the batch reaches `batch_max` frames, the oldest has
//!   waited `batch_deadline`, or the input goes quiescent (no partial
//!   frame pending), whichever is first — size *or* deadline closes the
//!   batch, idleness never waits for either;
//! * **per-client quotas with backpressure** — a connection with
//!   `client_quota` requests in flight is not read from until it drains,
//!   so the kernel's socket buffer (and ultimately the client) absorbs
//!   the excess instead of the node's memory;
//! * **deadline-aware load shedding** — a request that waited longer
//!   than `queue_deadline` in the admission queue is answered with a
//!   structured [`ErrorCode::Overloaded`] frame instead of being served
//!   late. The client maps it to a retryable transient fault, so a
//!   replica layer routes around the saturated node.
//!
//! Observability: every admission decision updates the global metrics
//! registry (`serving.frontend.queue_depth` gauge,
//! `serving.frontend.admitted` / `serving.frontend.shed` counters, and
//! the `serving.frontend.admission_wait_ns` histogram), and traced
//! requests get a `queue_wait` span (depth at enqueue, waited
//! nanoseconds) recorded into the handler's ring next to the usual
//! `wire_exchange` span.

use super::node::NodeHandler;
use super::transport::WireStream;
use super::wire::{
    ErrorCode, Message, WireFault, HEADER_LEN, MAX_PAYLOAD, TRAILER_LEN, WIRE_MAGIC, WIRE_VERSION,
};
use super::{NodeAddr, TransportError};
use engine::WireError;
use metrics::{Counter, Gauge, Log2Histogram, MetricsRegistry, SpanKind, TransportCounters};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a loop thread sleeps when a poll pass made no progress —
/// the shutdown-latency and idle-wakeup bound.
const IDLE_POLL: Duration = Duration::from_micros(200);

/// Bytes read from one connection per poll pass, and the cap on buffered
/// unparsed input per connection — past it, reading stops and the
/// kernel's socket buffer pushes back on the client.
const READ_CHUNK: usize = 16 * 1024;
const READ_BUF_CAP: usize = 1 << 20;

/// The admission-control knobs of an [`EventServer`].
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Readiness-loop threads; each multiplexes its own connection set.
    pub threads: usize,
    /// A batch closes when this many requests are queued…
    pub batch_max: usize,
    /// …or when the oldest queued request has waited this long —
    /// whichever comes first (quiescent input closes immediately).
    pub batch_deadline: Duration,
    /// In-flight (parsed, unanswered) requests allowed per connection;
    /// at the cap the connection is not read from until it drains.
    pub client_quota: usize,
    /// A request still queued after this long is answered
    /// [`ErrorCode::Overloaded`] instead of served late.
    pub queue_deadline: Duration,
}

impl Default for EventConfig {
    fn default() -> Self {
        Self {
            threads: 2,
            batch_max: 32,
            batch_deadline: Duration::from_micros(500),
            client_quota: 64,
            queue_deadline: Duration::from_millis(100),
        }
    }
}

/// Admission-control outcomes since the server started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests executed (admitted within their deadline).
    pub admitted: u64,
    /// Requests answered `Overloaded` past their queue deadline.
    pub shed: u64,
}

/// Everything the loop threads share.
struct Shared {
    handler: Arc<NodeHandler>,
    counters: Arc<TransportCounters>,
    config: EventConfig,
    shutdown: Arc<AtomicBool>,
    admitted: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    // Global-registry mirrors of the same decisions.
    admitted_total: Counter,
    shed_total: Counter,
    queue_depth: Gauge,
    admission_wait: Arc<Log2Histogram>,
}

/// Either listener family, non-blocking.
enum EventListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl EventListener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            EventListener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            EventListener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn try_clone(&self) -> std::io::Result<Self> {
        match self {
            EventListener::Tcp(l) => l.try_clone().map(EventListener::Tcp),
            #[cfg(unix)]
            EventListener::Unix(l) => l.try_clone().map(EventListener::Unix),
        }
    }

    fn accept(&self) -> std::io::Result<WireStream> {
        match self {
            EventListener::Tcp(l) => l.accept().map(|(s, _)| {
                // Framed RPC with pipelining: Nagle + delayed ACK would
                // hold small reply frames for up to 40ms.
                s.set_nodelay(true).ok();
                WireStream::Tcp(s)
            }),
            #[cfg(unix)]
            EventListener::Unix(l) => l.accept().map(|(s, _)| WireStream::Unix(s)),
        }
    }
}

/// One parsed-but-unanswered request in a connection's admission queue.
struct Pending {
    /// `None` after a malformed frame: the reply is pre-resolved.
    request: Option<Message>,
    /// The pre-resolved reply for frames that never reached the handler.
    resolved: Option<Message>,
    trace_id: u64,
    received: u64,
    enqueued: Instant,
    /// Queue depth observed at enqueue (the `queue_wait` span payload).
    depth: u64,
}

/// One multiplexed connection's state.
struct Conn {
    stream: WireStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    pending: VecDeque<Pending>,
    eof: bool,
    dead: bool,
    /// Set after a malformed frame: answer what's queued, then hang up
    /// (framing state is unrecoverable).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: WireStream) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            pending: VecDeque::new(),
            eof: false,
            dead: false,
            close_after_flush: false,
        }
    }

    /// Pulls available bytes (up to the backpressure caps) off the
    /// socket. Returns whether any arrived.
    fn fill(&mut self, shared: &Shared) -> bool {
        if self.eof || self.dead || self.close_after_flush {
            return false;
        }
        let mut progressed = false;
        let mut chunk = [0u8; READ_CHUNK];
        // Quota backpressure: a connection at its in-flight cap (or with
        // a large unparsed backlog) is simply not read from — the socket
        // buffer fills and the client blocks, instead of this node
        // queuing without bound.
        while self.pending.len() < shared.config.client_quota && self.read_buf.len() < READ_BUF_CAP
        {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    shared.counters.record_error();
                    self.dead = true;
                    break;
                }
            }
        }
        progressed
    }

    /// Frames the buffered bytes into the admission queue (up to the
    /// per-client quota; whole frames past it stay buffered).
    fn parse(&mut self, shared: &Shared) {
        while !self.close_after_flush && self.pending.len() < shared.config.client_quota {
            match frame_bounds(&self.read_buf) {
                Ok(None) => break, // partial frame: need more bytes
                Ok(Some(total)) => {
                    let result = Message::decode_traced(&self.read_buf[..total]);
                    self.read_buf.drain(..total);
                    match result {
                        Ok((message, trace_id, _)) => {
                            shared.counters.record_received(total as u64);
                            self.enqueue(shared, Some(message), None, trace_id, total as u64);
                        }
                        Err(e) => self.reject(shared, &e),
                    }
                }
                Err(e) => self.reject(shared, &e),
            }
        }
    }

    /// Queues one best-effort `BadRequest` answer for an undecodable
    /// frame and schedules the hang-up, mirroring the blocking path.
    fn reject(&mut self, shared: &Shared, error: &WireError) {
        shared.counters.record_error();
        let reply = Message::Error(WireFault {
            code: ErrorCode::BadRequest,
            message: error.to_string(),
        });
        // An undecodable frame has no recoverable trace id.
        self.enqueue(shared, None, Some(reply), 0, 0);
        self.read_buf.clear();
        self.close_after_flush = true;
    }

    fn enqueue(
        &mut self,
        shared: &Shared,
        request: Option<Message>,
        resolved: Option<Message>,
        trace_id: u64,
        received: u64,
    ) {
        let depth = self.pending.len() as u64;
        shared.queue_depth.add(1);
        self.pending.push_back(Pending {
            request,
            resolved,
            trace_id,
            received,
            enqueued: Instant::now(),
            depth,
        });
    }

    /// Serves every queued request in arrival order: shed past-deadline
    /// requests with `Overloaded`, run the rest through the handler, and
    /// stage each reply frame (pipelined replies keep request order).
    fn execute(&mut self, shared: &Shared) {
        while let Some(mut p) = self.pending.pop_front() {
            shared.queue_depth.add(-1);
            let waited = p.enqueued.elapsed();
            let reply = if let Some(reply) = p.resolved.take() {
                reply
            } else if waited >= shared.config.queue_deadline {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                shared.shed_total.inc();
                Message::Error(WireFault {
                    code: ErrorCode::Overloaded,
                    message: format!("request shed after {waited:?} in the admission queue"),
                })
            } else {
                shared.admitted.fetch_add(1, Ordering::Relaxed);
                shared.admitted_total.inc();
                shared.admission_wait.observe(waited.as_nanos() as u64);
                shared.handler.handle(
                    p.request
                        .take()
                        .expect("unresolved pendings carry a request"),
                )
            };
            if p.trace_id != 0 {
                shared.handler.ring().record(
                    p.trace_id,
                    None,
                    SpanKind::QueueWait { depth: p.depth },
                    waited.as_nanos() as u64,
                );
            }
            match reply.encode_traced(p.trace_id) {
                Ok(frame) => {
                    shared.counters.record_sent(frame.len() as u64);
                    if p.trace_id != 0 {
                        shared.handler.ring().record(
                            p.trace_id,
                            None,
                            SpanKind::WireExchange {
                                bytes_out: frame.len() as u64,
                                bytes_in: p.received,
                            },
                            0,
                        );
                    }
                    self.write_buf.extend_from_slice(&frame);
                }
                Err(_) => {
                    // A reply with no wire form (cannot happen for the
                    // kinds a handler emits, but never hang the client).
                    shared.counters.record_error();
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Pushes staged reply bytes until the socket would block. Returns
    /// whether any left.
    fn flush(&mut self, shared: &Shared) -> bool {
        let mut progressed = false;
        while !self.write_buf.is_empty() && !self.dead {
            match self.stream.write(&self.write_buf) {
                Ok(0) => {
                    self.dead = true;
                }
                Ok(n) => {
                    self.write_buf.drain(..n);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    shared.counters.record_error();
                    self.dead = true;
                }
            }
        }
        if self.write_buf.is_empty()
            && (self.close_after_flush || (self.eof && self.pending.is_empty()))
        {
            self.dead = true;
        }
        progressed
    }
}

/// Locates one whole frame at the front of `buf`.
///
/// `Ok(Some(len))` — a full frame of `len` bytes is buffered;
/// `Ok(None)` — the frame (or its header) is still partial;
/// `Err` — the bytes can never frame (bad magic/version, oversized
/// payload), so the connection's framing state is unrecoverable.
fn frame_bounds(buf: &[u8]) -> Result<Option<usize>, WireError> {
    if buf.len() >= 2 {
        let magic = u16::from_le_bytes([buf[0], buf[1]]);
        if magic != WIRE_MAGIC {
            return Err(WireError::Malformed(format!(
                "bad frame magic {magic:#06x} (expected {WIRE_MAGIC:#06x})"
            )));
        }
    }
    if buf.len() >= 4 {
        let version = u16::from_le_bytes([buf[2], buf[3]]);
        if version != WIRE_VERSION {
            return Err(WireError::Malformed(format!(
                "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
            )));
        }
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let payload_len = u32::from_le_bytes(buf[13..17].try_into().unwrap()) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Malformed(format!(
            "payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        )));
    }
    let total = HEADER_LEN + payload_len + TRAILER_LEN;
    Ok((buf.len() >= total).then_some(total))
}

/// Hosts any [`engine::AnnIndex`] behind the same [`NodeHandler`] and
/// wire protocol as [`super::NodeServer`], but event-driven: `threads`
/// readiness loops multiplex all client connections, pipeline frames per
/// connection, batch adaptively, and shed overload (see the module
/// docs). [`Self::shutdown`] (also run on drop) severs live connections
/// and joins every loop thread; it never needs a wake-up dial, because
/// no loop thread ever blocks.
pub struct EventServer {
    addr: NodeAddr,
    shutdown: Arc<AtomicBool>,
    loops: Vec<JoinHandle<()>>,
    counters: Arc<TransportCounters>,
    handler: Arc<NodeHandler>,
    admitted: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    unix_path: Option<PathBuf>,
}

impl EventServer {
    /// Binds `addr` and starts `config.threads` readiness loops serving
    /// `handler`.
    pub fn bind(
        addr: &NodeAddr,
        handler: NodeHandler,
        config: EventConfig,
    ) -> Result<Self, TransportError> {
        let (listener, bound_addr, unix_path) = match addr {
            NodeAddr::Tcp(a) => {
                let listener = TcpListener::bind(a.as_str())
                    .map_err(|e| TransportError::Io(format!("bind {addr}: {e}")))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| TransportError::Io(format!("local_addr {addr}: {e}")))?;
                (
                    EventListener::Tcp(listener),
                    NodeAddr::Tcp(local.to_string()),
                    None,
                )
            }
            #[cfg(unix)]
            NodeAddr::Unix(path) => {
                let listener = UnixListener::bind(path)
                    .map_err(|e| TransportError::Io(format!("bind {addr}: {e}")))?;
                (
                    EventListener::Unix(listener),
                    addr.clone(),
                    Some(path.clone()),
                )
            }
        };
        listener
            .set_nonblocking()
            .map_err(|e| TransportError::Io(format!("set_nonblocking {addr}: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::clone(handler.counters());
        let admitted = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let registry = MetricsRegistry::global();
        let handler = Arc::new(handler);
        let shared = Arc::new(Shared {
            handler: Arc::clone(&handler),
            counters: Arc::clone(&counters),
            config: config.clone(),
            shutdown: Arc::clone(&shutdown),
            admitted: Arc::clone(&admitted),
            shed: Arc::clone(&shed),
            admitted_total: registry.counter("serving.frontend.admitted"),
            shed_total: registry.counter("serving.frontend.shed"),
            queue_depth: registry.gauge("serving.frontend.queue_depth"),
            admission_wait: registry.histogram("serving.frontend.admission_wait_ns"),
        });
        // The original handle serves loop 0; clones serve the rest (all
        // non-blocking, so the kernel distributes accepts across them).
        let mut listeners = Vec::new();
        for _ in 1..config.threads.max(1) {
            listeners.push(
                listener
                    .try_clone()
                    .map_err(|e| TransportError::Io(format!("clone listener: {e}")))?,
            );
        }
        listeners.insert(0, listener);
        let mut handles = Vec::new();
        for (t, listener) in listeners.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("node-event-{t}"))
                .spawn(move || event_loop(listener, &shared))
                .expect("failed to spawn event-loop thread");
            handles.push(handle);
        }
        Ok(Self {
            addr: bound_addr,
            shutdown,
            loops: handles,
            counters,
            handler,
            admitted,
            shed,
            unix_path,
        })
    }

    /// The hosted handler (what a [`super::ScrapeServer`] answers `/varz`
    /// from).
    pub fn handler(&self) -> &Arc<NodeHandler> {
        &self.handler
    }

    /// Shared handles to the live `(admitted, shed)` counters — the
    /// cumulative samples an SLO shed-fraction guard reads.
    pub fn admission_counters(&self) -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (Arc::clone(&self.admitted), Arc::clone(&self.shed))
    }

    /// The bound address (with TCP port 0 resolved) — what clients dial.
    pub fn addr(&self) -> &NodeAddr {
        &self.addr
    }

    /// Server-side frame/byte counters (the handler's ledger, same as a
    /// `StatsRequest` scrape).
    pub fn stats(&self) -> metrics::TransportStats {
        self.counters.snapshot()
    }

    /// Admission-control outcomes so far.
    pub fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    /// Stops the server: loop threads sever their connections and exit
    /// within one idle-poll interval, and are joined. No wake-up dial is
    /// needed (nothing ever blocks), so shutdown is robust on any bind
    /// interface. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One readiness loop: accept, read, frame, batch, execute, flush —
/// sleeping only when a full pass made no progress.
fn event_loop(listener: EventListener, shared: &Shared) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            for conn in &conns {
                shared.queue_depth.add(-(conn.pending.len() as i64));
                conn.stream.shutdown();
            }
            break;
        }
        let mut progressed = false;
        // Accept everything waiting (the kernel spreads accepts across
        // the cloned handles).
        loop {
            match listener.accept() {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_err() {
                        stream.shutdown();
                        continue;
                    }
                    conns.push(Conn::new(stream));
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // A transient accept failure (fd pressure): retry next
                // pass; the idle sleep below prevents a busy spin.
                Err(_) => break,
            }
        }
        // Read + frame.
        for conn in conns.iter_mut() {
            progressed |= conn.fill(shared);
            conn.parse(shared);
        }
        // Adaptive batch close: size, deadline, or quiescent input.
        let queued: usize = conns.iter().map(|c| c.pending.len()).sum();
        if queued > 0 {
            let now = Instant::now();
            let deadline_hit = conns
                .iter()
                .filter_map(|c| c.pending.front())
                .any(|p| now.duration_since(p.enqueued) >= shared.config.batch_deadline);
            let quiescent = conns.iter().all(|c| c.read_buf.is_empty());
            if queued >= shared.config.batch_max || deadline_hit || quiescent {
                for conn in conns.iter_mut() {
                    conn.execute(shared);
                }
                progressed = true;
            }
        }
        // Flush + prune.
        for conn in conns.iter_mut() {
            progressed |= conn.flush(shared);
        }
        conns.retain(|conn| {
            if conn.dead {
                shared.queue_depth.add(-(conn.pending.len() as i64));
                conn.stream.shutdown();
            }
            !conn.dead
        });
        if !progressed {
            std::thread::sleep(IDLE_POLL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_bounds_finds_whole_frames_and_rejects_garbage() {
        let frame = Message::InfoRequest.encode().unwrap();
        assert_eq!(frame_bounds(&frame), Ok(Some(frame.len())));
        // Two frames back to back: the first's bounds are reported.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        assert_eq!(frame_bounds(&two), Ok(Some(frame.len())));
        // Every strict prefix is "need more", never an error.
        for cut in 0..frame.len() {
            assert_eq!(frame_bounds(&frame[..cut]), Ok(None), "cut at {cut}");
        }
        // Garbage magic fails immediately — two bytes are enough.
        assert!(frame_bounds(&[0xFF, 0xFF]).is_err());
        let mut bad_version = frame.clone();
        bad_version[2] = 0x7F;
        assert!(frame_bounds(&bad_version).is_err());
        let mut oversized = frame;
        oversized[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(frame_bounds(&oversized).is_err());
    }

    #[test]
    fn default_config_is_sane() {
        let config = EventConfig::default();
        assert!(config.threads >= 1);
        assert!(config.batch_max >= 1);
        assert!(config.client_quota >= 1);
        assert!(config.queue_deadline > config.batch_deadline);
    }
}
