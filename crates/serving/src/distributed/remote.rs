//! The coordinator-side client: a remote node as an [`AnnIndex`].

use super::transport::Transport;
use super::wire::{Message, NodeInfo, WireFault};
use super::TransportError;
use crate::fault::{FallibleIndex, FaultError, FaultKind};
use engine::{AnnIndex, SearchRequest, SearchResponse};
use metrics::TransportStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A node in another process (or an in-process loopback), serving as an
/// index.
///
/// `RemoteIndex` implements both serving surfaces, which is the whole
/// point of the distributed layer:
///
/// * [`FallibleIndex`] — [`Self::try_search`] reports transport failures
///   and node-side faults as [`FaultError`]s, so remote nodes slot into a
///   [`crate::ReplicaGroup`] and inherit mark-down, probed recovery,
///   retry, and generation-based cache invalidation unchanged;
/// * [`AnnIndex`] — composes under [`crate::ShardedIndex`] /
///   `BatchExecutor` / `CachedIndex` like any local index. On this
///   infallible surface a transport failure panics (there is no error
///   channel and nothing to serve) — deployments that must survive node
///   loss put replicas behind a group, exactly as with local indexes.
///
/// Failure mapping: connect/I-O errors → [`FaultKind::Dead`] (the node is
/// unreachable until something changes — and the next probe re-dials),
/// timeouts → [`FaultKind::Transient`], undecodable or
/// protocol-violating frames → [`FaultKind::Malformed`]; a node-answered
/// error frame carries its own fault kind across the wire.
///
/// Identity is re-validated after every transport reconnect: a node that
/// was restarted with a different shard (length or dimensionality
/// mismatch against the connect handshake) is rejected with
/// [`FaultKind::Malformed`] instead of silently serving wrong results.
pub struct RemoteIndex {
    transport: Arc<dyn Transport>,
    info: NodeInfo,
    calls: AtomicU64,
    /// Transport reconnects already re-validated (lags
    /// `transport.stats().reconnects` until the next search notices).
    validated_reconnects: AtomicU64,
}

impl RemoteIndex {
    /// Performs the info handshake and returns the connected client.
    /// Fails fast if the node is unreachable or speaks something else.
    pub fn connect(transport: Arc<dyn Transport>) -> Result<Self, TransportError> {
        let info = Self::handshake(transport.as_ref())?;
        let validated_reconnects = AtomicU64::new(transport.stats().reconnects);
        Ok(Self {
            transport,
            info,
            calls: AtomicU64::new(0),
            validated_reconnects,
        })
    }

    fn handshake(transport: &dyn Transport) -> Result<NodeInfo, TransportError> {
        match transport.exchange(&Message::InfoRequest)? {
            Message::InfoResponse(info) => Ok(info),
            Message::Error(fault) => Err(TransportError::Io(format!(
                "node refused the info handshake: {}",
                fault.message
            ))),
            other => Err(TransportError::Io(format!(
                "node answered the info handshake with a {} frame",
                other.kind_name()
            ))),
        }
    }

    /// The node's identity card from the connect handshake.
    pub fn info(&self) -> NodeInfo {
        self.info
    }

    /// When the transport has re-dialed since the last check, re-runs the
    /// info handshake and rejects a node whose identity (length or
    /// dimensionality) changed — a restarted process serving a different
    /// shard must not be silently accepted.
    fn revalidate_after_reconnect(&self, call: u64) -> Result<(), FaultError> {
        let seen = self.transport.stats().reconnects;
        let validated = self.validated_reconnects.load(Ordering::Relaxed);
        if seen == validated {
            return Ok(());
        }
        let fresh =
            Self::handshake(self.transport.as_ref()).map_err(|e| Self::fault_of(&e, call))?;
        if fresh.len != self.info.len || fresh.dim != self.info.dim {
            return Err(FaultError {
                call,
                kind: FaultKind::Malformed,
            });
        }
        // Racing searches may each handshake once; all converge here.
        self.validated_reconnects.store(seen, Ordering::Relaxed);
        Ok(())
    }

    /// The transport's frame/byte/failure counters.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Search calls attempted so far (successful or not).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn fault_of(error: &TransportError, call: u64) -> FaultError {
        let kind = match error {
            TransportError::Io(_) => FaultKind::Dead,
            TransportError::Timeout(_) => FaultKind::Transient,
            TransportError::Wire(_) => FaultKind::Malformed,
        };
        FaultError { call, kind }
    }
}

impl FallibleIndex for RemoteIndex {
    fn len(&self) -> usize {
        self.info.len as usize
    }

    fn dim(&self) -> usize {
        self.info.dim as usize
    }

    fn try_search(&self, request: &SearchRequest) -> Result<SearchResponse, FaultError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if request.filter.is_some() {
            // Closures have no wire form; the codec would reject the
            // frame anyway, so fail before paying a round trip.
            return Err(FaultError {
                call,
                kind: FaultKind::Malformed,
            });
        }
        self.revalidate_after_reconnect(call)?;
        let result = self
            .transport
            .exchange_traced(request.trace.as_ref(), &Message::Search(request.clone()));
        match result {
            Ok(Message::SearchOk(response)) => Ok(response),
            Ok(Message::Error(fault)) => Err(WireFault::to_fault(&fault, call)),
            Ok(_) => Err(FaultError {
                call,
                kind: FaultKind::Malformed,
            }),
            Err(e) => Err(Self::fault_of(&e, call)),
        }
    }

    fn memory_bytes(&self) -> usize {
        // The node's resident bytes: what the fleet actually spends on
        // this shard, which is what capacity accounting wants. The
        // client's own footprint is negligible.
        self.info.memory_bytes as usize
    }
}

impl AnnIndex for RemoteIndex {
    fn len(&self) -> usize {
        self.info.len as usize
    }

    fn dim(&self) -> usize {
        self.info.dim as usize
    }

    /// # Panics
    /// Panics if the node is unreachable or answers garbage — this
    /// surface has no error channel. Nest remote replicas in a
    /// [`crate::ReplicaGroup`] (which calls [`FallibleIndex::try_search`])
    /// to survive node loss instead.
    fn search(&self, request: &SearchRequest) -> SearchResponse {
        FallibleIndex::try_search(self, request)
            .unwrap_or_else(|e| panic!("remote node failed with no replica to fail over to: {e}"))
    }

    fn memory_bytes(&self) -> usize {
        self.info.memory_bytes as usize
    }
}
