//! The observability scrape plane: a minimal HTTP responder next to the
//! wire-protocol servers.
//!
//! [`ScrapeServer`] binds its own TCP listener and answers exactly three
//! GET paths:
//!
//! * `/metrics` — the global [`MetricsRegistry`] rendered as OpenMetrics
//!   text exposition (counters, gauges, log₂ histograms as cumulative
//!   `le` buckets);
//! * `/healthz` — `200 ok` while every SLO objective's burn rate is
//!   within budget, `503 degraded` once a guard latches a breach;
//! * `/varz` — the hosting node's full [`NodeHandler::stats`] snapshot as
//!   JSON (identity, transport counters, cumulative query profile,
//!   retained spans).
//!
//! The responder is hand-rolled over `std::net` in the same
//! readiness-loop style as [`super::EventServer`]: one thread, a
//! non-blocking listener, and short read timeouts on accepted
//! connections, so shutdown never needs a wake-up dial and a stalled
//! scraper cannot wedge the server. Anything that is not a well-formed
//! `GET` of a known path gets a plain `404`/`405` and the connection is
//! closed — this is a scrape endpoint, not a web framework.

use super::node::NodeHandler;
use super::TransportError;
use metrics::{MetricsRegistry, SloGuard};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Idle sleep between poll passes (the shutdown-latency bound).
const IDLE_POLL: Duration = Duration::from_micros(200);

/// A scraper gets this long to deliver its request head before the
/// connection is dropped.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Request heads larger than this are rejected (no legitimate scrape
/// gets close).
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// The HTTP scrape endpoint of one serving process.
pub struct ScrapeServer {
    addr: String,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// What the responder consults per request.
struct ScrapeState {
    handler: Arc<NodeHandler>,
    guard: Option<Arc<SloGuard>>,
}

impl ScrapeServer {
    /// Binds `addr` (a `host:port`; port 0 resolves at bind time) and
    /// starts answering scrapes about `handler`. When `guard` is given,
    /// `/healthz` reports its latched SLO verdict; without one the
    /// endpoint always answers `200 ok`.
    pub fn bind(
        addr: &str,
        handler: Arc<NodeHandler>,
        guard: Option<Arc<SloGuard>>,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| TransportError::Io(format!("bind metrics {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| TransportError::Io(format!("local_addr metrics {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TransportError::Io(format!("set_nonblocking metrics {addr}: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = ScrapeState { handler, guard };
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("scrape-http".into())
                .spawn(move || scrape_loop(listener, &state, &shutdown))
                .expect("failed to spawn scrape thread")
        };
        Ok(Self {
            addr: local.to_string(),
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (port 0 resolved) — what scrapers dial.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the responder and joins its thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The accept loop: non-blocking accepts, one request served per
/// connection, then close (scrapes are rare; keeping it sequential keeps
/// it simple and bounded).
fn scrape_loop(listener: TcpListener, state: &ScrapeState, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Served synchronously under a short timeout: a stalled
                // scraper costs at most READ_TIMEOUT, never a thread.
                let _ = serve_one(stream, state);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(IDLE_POLL),
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

/// Reads one request head and writes one response.
fn serve_one(mut stream: TcpStream, state: &ScrapeState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the blank line ending the request head; the bodyless
    // GETs a scraper sends never have more.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_HEAD {
            return respond(&mut stream, 400, "text/plain", "request head too large\n");
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Ok(()), // timeout or reset: drop silently
        }
    }
    let request_line = match head.split(|&b| b == b'\r').next() {
        Some(line) => String::from_utf8_lossy(line).into_owned(),
        None => return respond(&mut stream, 400, "text/plain", "empty request\n"),
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "text/plain", "malformed request line\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is served\n");
    }
    match path {
        "/metrics" => {
            let body = MetricsRegistry::global().render_openmetrics();
            respond(
                &mut stream,
                200,
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let healthy = state.guard.as_ref().is_none_or(|g| g.healthy());
            if healthy {
                respond(&mut stream, 200, "text/plain", "ok\n")
            } else {
                respond(&mut stream, 503, "text/plain", "degraded\n")
            }
        }
        "/varz" => {
            let mut body = state.handler.stats().to_json().to_pretty_string();
            body.push('\n');
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "unknown path\n"),
    }
}

/// Writes one `HTTP/1.0`-style response and closes.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{FlatIndex, SearchRequest};
    use vecstore::VectorSet;

    fn tiny_handler() -> Arc<NodeHandler> {
        let mut base = VectorSet::new(2);
        for i in 0..8 {
            base.push(&[i as f32, 0.0]);
        }
        Arc::new(NodeHandler::new(Arc::new(FlatIndex::new(base))))
    }

    /// One blocking HTTP GET against the responder.
    fn http_get(addr: &str, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw).into_owned();
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_healthz_and_varz() {
        let handler = tiny_handler();
        // Put a profile on the ledger so /varz has something to show.
        let response = handler.handle(super::super::wire::Message::Search(SearchRequest::new(
            vec![2.0, 0.0],
            3,
        )));
        assert!(matches!(response, super::super::wire::Message::SearchOk(_)));
        let server = ScrapeServer::bind("127.0.0.1:0", Arc::clone(&handler), None).unwrap();

        let (status, body) = http_get(server.addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(body.ends_with("# EOF\n"), "OpenMetrics terminator");

        let (status, body) = http_get(server.addr(), "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = http_get(server.addr(), "/varz");
        assert_eq!(status, 200);
        let varz = metrics::Json::parse(&body).expect("varz is JSON");
        assert!(
            varz.get("profile")
                .and_then(|p| p.get("dist_exact"))
                .and_then(metrics::Json::as_u64)
                .is_some_and(|n| n > 0),
            "cumulative profile visible in /varz"
        );

        let (status, _) = http_get(server.addr(), "/nope");
        assert_eq!(status, 404);
    }

    #[test]
    fn healthz_degrades_when_the_guard_breaches() {
        use metrics::{BurnConfig, Objective, SloGuard};
        use std::sync::atomic::AtomicU64;

        let handler = tiny_handler();
        let good = Arc::new(AtomicU64::new(0));
        let bad = Arc::new(AtomicU64::new(0));
        let sampler = {
            let (good, bad) = (Arc::clone(&good), Arc::clone(&bad));
            Box::new(move || (good.load(Ordering::Relaxed), bad.load(Ordering::Relaxed)))
                as metrics::slo::Sampler
        };
        // Coarse ticks so the scrape lands inside the latched tick: the
        // windows only drain after >50ms with no bad observations.
        let guard = Arc::new(SloGuard::new(
            BurnConfig {
                fast_window: 2,
                slow_window: 4,
                fast_burn: 1.0,
                slow_burn: 1.0,
            },
            Duration::from_millis(25),
            vec![(Objective::new("error_fraction", 0.1), sampler)],
        ));
        let server = ScrapeServer::bind(
            "127.0.0.1:0",
            Arc::clone(&handler),
            Some(Arc::clone(&guard)),
        )
        .unwrap();
        assert_eq!(http_get(server.addr(), "/healthz").0, 200);
        // Burn the whole budget: every request bad across several ticks.
        for _ in 0..4 {
            bad.fetch_add(50, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(30));
            let _ = guard.healthy();
        }
        assert_eq!(
            http_get(server.addr(), "/healthz").0,
            503,
            "a latched breach must flip /healthz to degraded"
        );
        let _ = good; // kept alive: the sampler reads it
    }
}
