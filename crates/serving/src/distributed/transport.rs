//! Transports: how one [`Message`] exchange reaches a node.
//!
//! [`Transport`] is deliberately tiny — one blocking request/response
//! exchange — because that is all the serving stack needs: retries,
//! mark-down, and probing already live in [`crate::ReplicaGroup`], and a
//! transport failure is just another [`crate::FaultError`] to route
//! around. Two implementations work with no network at all:
//!
//! * [`LoopbackTransport`] — the node lives in this process. Every call
//!   still encodes and decodes both frames, so tests exercise the full
//!   codec deterministically, and the handler's index can carry a
//!   [`crate::FaultPlan`];
//! * [`SocketTransport`] — the node is another process behind a
//!   [`super::NodeAddr`] (Unix or TCP socket). One persistent connection,
//!   re-dialed after any failure; optional per-call deadline.

use super::node::NodeHandler;
use super::wire::{read_message, write_message, Message};
use super::{NodeAddr, TransportError};
use metrics::{SpanKind, TraceContext, TransportCounters, TransportStats};
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One blocking request/response exchange with a node.
pub trait Transport: Send + Sync {
    /// Sends `message` in a frame carrying `trace`'s id (untraced when
    /// `None`) and returns the node's answer, recording one
    /// `wire_exchange` span with the exact frame byte counts into the
    /// trace. An `Err` means the exchange itself failed
    /// (connect/read/write/decode); a node that *answered* with an error
    /// decodes to [`Message::Error`], which is an `Ok` here.
    fn exchange_traced(
        &self,
        trace: Option<&TraceContext>,
        message: &Message,
    ) -> Result<Message, TransportError>;

    /// [`Self::exchange_traced`] with no trace attached.
    fn exchange(&self, message: &Message) -> Result<Message, TransportError> {
        self.exchange_traced(None, message)
    }

    /// Snapshot of this endpoint's frame/byte/failure counters.
    fn stats(&self) -> TransportStats;
}

/// An in-process node behind the full codec: requests and responses are
/// encoded and re-decoded on every call, so the loopback proves exactly
/// what a socket would carry — deterministically, with no I/O.
pub struct LoopbackTransport {
    handler: NodeHandler,
    counters: TransportCounters,
}

impl LoopbackTransport {
    /// A loopback to `handler` (wrap the handler's index in a
    /// [`crate::FaultyIndex`] via [`NodeHandler::with_faults`] to script
    /// node failures).
    pub fn new(handler: NodeHandler) -> Self {
        Self {
            handler,
            counters: TransportCounters::new(),
        }
    }

    /// The served node handler.
    pub fn handler(&self) -> &NodeHandler {
        &self.handler
    }
}

impl Transport for LoopbackTransport {
    fn exchange_traced(
        &self,
        trace: Option<&TraceContext>,
        message: &Message,
    ) -> Result<Message, TransportError> {
        let started = Instant::now();
        let trace_id = trace.map_or(0, TraceContext::trace_id);
        // Outbound trip through the codec.
        let request_bytes = message.encode_traced(trace_id)?;
        self.counters.record_sent(request_bytes.len() as u64);
        let (request, node_trace, _) = Message::decode_traced(&request_bytes)?;
        // The node side counts and serves the frame exactly as a socket
        // server would, so loopback stats scrapes are faithful.
        self.handler
            .counters()
            .record_received(request_bytes.len() as u64);
        let reply = self.handler.handle(request);
        let reply_bytes = reply.encode_traced(node_trace)?;
        self.handler
            .counters()
            .record_sent(reply_bytes.len() as u64);
        if node_trace != 0 {
            self.handler.ring().record(
                node_trace,
                None,
                SpanKind::WireExchange {
                    bytes_out: reply_bytes.len() as u64,
                    bytes_in: request_bytes.len() as u64,
                },
                0,
            );
        }
        let (reply, _, _) = Message::decode_traced(&reply_bytes)?;
        self.counters.record_received(reply_bytes.len() as u64);
        if let Some(ctx) = trace {
            ctx.record_timed(
                SpanKind::WireExchange {
                    bytes_out: request_bytes.len() as u64,
                    bytes_in: reply_bytes.len() as u64,
                },
                started.elapsed().as_nanos() as u64,
            );
        }
        Ok(reply)
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

/// Either socket family under one `Read`/`Write` surface.
pub(crate) enum WireStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl WireStream {
    /// Dials `addr`.
    pub(crate) fn connect(addr: &NodeAddr) -> Result<Self, TransportError> {
        match addr {
            NodeAddr::Tcp(a) => TcpStream::connect(a.as_str())
                .map(|s| {
                    // Framed RPC: Nagle + delayed ACK would hold small
                    // request frames for up to 40ms.
                    s.set_nodelay(true).ok();
                    WireStream::Tcp(s)
                })
                .map_err(|e| TransportError::from_io(&format!("connect {addr}"), &e)),
            #[cfg(unix)]
            NodeAddr::Unix(path) => UnixStream::connect(path)
                .map(WireStream::Unix)
                .map_err(|e| TransportError::from_io(&format!("connect {addr}"), &e)),
        }
    }

    /// Applies one deadline to both directions (`None` blocks forever).
    pub(crate) fn set_deadline(&self, timeout: Option<Duration>) -> Result<(), TransportError> {
        let apply = |r: std::io::Result<()>, w: std::io::Result<()>| {
            r.and(w)
                .map_err(|e| TransportError::from_io("set deadline", &e))
        };
        match self {
            WireStream::Tcp(s) => apply(s.set_read_timeout(timeout), s.set_write_timeout(timeout)),
            #[cfg(unix)]
            WireStream::Unix(s) => apply(s.set_read_timeout(timeout), s.set_write_timeout(timeout)),
        }
    }

    /// Switches the stream between blocking and readiness-loop mode (the
    /// event-driven front-end polls with `WouldBlock`).
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            WireStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// A second handle to the same connection (for out-of-band shutdown).
    pub(crate) fn try_clone(&self) -> std::io::Result<Self> {
        match self {
            WireStream::Tcp(s) => s.try_clone().map(WireStream::Tcp),
            #[cfg(unix)]
            WireStream::Unix(s) => s.try_clone().map(WireStream::Unix),
        }
    }

    /// Severs both directions; blocked reads on any clone return.
    pub(crate) fn shutdown(&self) {
        let _ = match self {
            WireStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            WireStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            WireStream::Unix(s) => s.flush(),
        }
    }
}

/// A node in another process, one persistent connection per transport.
///
/// Calls are serialized on the connection (the protocol is strict
/// request/response); after any failure the connection is dropped and the
/// next call re-dials, so a restarted node is picked back up by the very
/// probe that the replica health model sends. A dead node keeps failing
/// fast with connect errors — exactly the signal mark-down needs.
pub struct SocketTransport {
    addr: NodeAddr,
    timeout: Option<Duration>,
    conn: Mutex<Option<WireStream>>,
    counters: Arc<TransportCounters>,
    ever_connected: std::sync::atomic::AtomicBool,
}

impl SocketTransport {
    /// A transport to `addr`; the first exchange dials. No deadline by
    /// default — see [`Self::with_timeout`].
    pub fn new(addr: NodeAddr) -> Self {
        Self {
            addr,
            timeout: None,
            conn: Mutex::new(None),
            counters: Arc::new(TransportCounters::new()),
            ever_connected: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Dials eagerly so a wrong address fails at construction, not on the
    /// first query.
    pub fn connect(addr: NodeAddr) -> Result<Self, TransportError> {
        let transport = Self::new(addr);
        let stream = transport.dial()?;
        *transport.conn.lock().unwrap() = Some(stream);
        Ok(transport)
    }

    /// Applies one deadline to every read and write of every call,
    /// including on an already-established connection. If the live
    /// connection refuses the deadline, it is dropped so the next call
    /// re-dials with the deadline applied — a connection that can block
    /// forever must not survive a caller asking for a timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        let conn = self.conn.get_mut().unwrap();
        if let Some(stream) = conn.as_ref() {
            if stream.set_deadline(self.timeout).is_err() {
                *conn = None;
            }
        }
        self
    }

    /// The node's address.
    pub fn addr(&self) -> &NodeAddr {
        &self.addr
    }

    fn dial(&self) -> Result<WireStream, TransportError> {
        let stream = WireStream::connect(&self.addr)?;
        stream.set_deadline(self.timeout)?;
        if self
            .ever_connected
            .swap(true, std::sync::atomic::Ordering::Relaxed)
        {
            self.counters.record_reconnect();
        }
        Ok(stream)
    }
}

impl Transport for SocketTransport {
    fn exchange_traced(
        &self,
        trace: Option<&TraceContext>,
        message: &Message,
    ) -> Result<Message, TransportError> {
        let started = Instant::now();
        let trace_id = trace.map_or(0, TraceContext::trace_id);
        let mut conn = self.conn.lock().unwrap();
        if conn.is_none() {
            match self.dial() {
                Ok(stream) => *conn = Some(stream),
                Err(e) => {
                    self.counters.record_error();
                    if matches!(e, TransportError::Timeout(_)) {
                        self.counters.record_timeout();
                    }
                    return Err(e);
                }
            }
        }
        let stream = conn.as_mut().expect("dialed above");
        let result = write_message(stream, message, trace_id).and_then(|sent| {
            self.counters.record_sent(sent as u64);
            match read_message(stream)? {
                Some((reply, _, received)) => {
                    self.counters.record_received(received as u64);
                    if let Some(ctx) = trace {
                        ctx.record_timed(
                            SpanKind::WireExchange {
                                bytes_out: sent as u64,
                                bytes_in: received as u64,
                            },
                            started.elapsed().as_nanos() as u64,
                        );
                    }
                    Ok(reply)
                }
                None => Err(TransportError::Io(format!(
                    "{}: connection closed before the reply",
                    self.addr
                ))),
            }
        });
        if let Err(e) = &result {
            // Poisoned framing state: drop the connection, re-dial next call.
            *conn = None;
            self.counters.record_error();
            if matches!(e, TransportError::Timeout(_)) {
                self.counters.record_timeout();
            }
        }
        result
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}
