//! Cross-process distributed serving: a wire protocol, pluggable
//! transports, remote nodes, and a remote-index client.
//!
//! The in-process `ShardedIndex`/`ReplicaGroup` stack composes over
//! anything that implements [`engine::AnnIndex`] /
//! [`crate::FallibleIndex`] — this module makes *processes on other
//! machines* implement them:
//!
//! * [`wire`] — a versioned, checksummed, length-prefixed frame codec
//!   over the `engine::wire` payload encoding ([`Message`]): search
//!   requests/responses, node info, and structured error frames, all
//!   explicit little-endian;
//! * [`Transport`] — one blocking `exchange(request) -> response` trait
//!   with two offline-capable implementations: [`LoopbackTransport`]
//!   (in-memory, deterministic, fault-injectable via [`crate::fault`] —
//!   every call still round-trips the codec both ways) and
//!   [`SocketTransport`] (`UnixStream` or `TcpStream`, persistent
//!   connection with reconnect-on-failure and optional deadlines);
//! * [`NodeServer`] — hosts any [`engine::AnnIndex`] behind a listener:
//!   an accept loop feeding a fixed worker-thread pool, one connection
//!   per coordinator client, clean shutdown (used to kill nodes mid-run
//!   in tests and demos);
//! * [`EventServer`] — the event-driven alternative to [`NodeServer`]:
//!   a hand-rolled readiness loop over non-blocking sockets multiplexes
//!   many connections per thread, pipelines frames per connection, and
//!   layers admission control on top ([`EventConfig`]: adaptive
//!   batching, per-client quotas with backpressure, and deadline-aware
//!   load shedding answered as [`ErrorCode::Overloaded`]);
//! * [`RemoteIndex`] — the coordinator-side client. It implements
//!   **both** [`engine::AnnIndex`] and [`crate::FallibleIndex`], so a
//!   remote node slots into the existing serving stack unchanged: put
//!   one `RemoteIndex` per shard under a `ShardedIndex`, or several
//!   (one per replica node) under a `ReplicaGroup` — and mark-down,
//!   probed recovery, and generation-based cache invalidation all apply
//!   to remote replicas for free.
//!
//! What deliberately does *not* cross the wire: predicate filters
//! (closures have no byte representation — requests carrying one are
//! rejected at encode time; label filters serialize fine) and index
//! construction (nodes build or load their shard locally; the
//! coordinator only searches).
//!
//! ```
//! use engine::{AnnIndex, FlatIndex, SearchRequest};
//! use serving::distributed::{LoopbackTransport, NodeHandler, RemoteIndex};
//! use std::sync::Arc;
//! use vecstore::VectorSet;
//!
//! let mut base = VectorSet::new(2);
//! for i in 0..16 {
//!     base.push(&[i as f32, 0.0]);
//! }
//! let node: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(base));
//!
//! // "Remote" node over the in-memory loopback transport: every call
//! // still encodes and decodes both frames.
//! let transport = Arc::new(LoopbackTransport::new(NodeHandler::new(node.clone())));
//! let remote = RemoteIndex::connect(transport).unwrap();
//! assert_eq!(remote.len(), 16);
//!
//! let req = SearchRequest::new(vec![3.0, 0.0], 2);
//! assert_eq!(remote.search(&req).hits, node.search(&req).hits);
//! ```

mod event;
mod node;
mod remote;
mod scrape;
mod transport;
pub mod wire;

pub use event::{AdmissionStats, EventConfig, EventServer};
pub use node::{NodeHandler, NodeServer};
pub use remote::RemoteIndex;
pub use scrape::ScrapeServer;
pub use transport::{LoopbackTransport, SocketTransport, Transport};
pub use wire::{ErrorCode, Message, NodeInfo, NodeStats, WireFault};

use engine::WireError;
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// Where a node listens: a TCP host:port, or (on Unix) a filesystem
/// socket path.
///
/// Parses from the `flash_cli` address syntax: `tcp:HOST:PORT` (a bare
/// `HOST:PORT` also counts) or `unix:/path/to.sock`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeAddr {
    /// A TCP endpoint (`"127.0.0.1:4810"`).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            NodeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl FromStr for NodeAddr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                if path.is_empty() {
                    return Err("unix: address needs a socket path".into());
                }
                return Ok(NodeAddr::Unix(PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("unix: addresses are not supported on this platform".into());
            }
        }
        let addr = s.strip_prefix("tcp:").unwrap_or(s);
        if addr.rsplit_once(':').is_none_or(|(host, port)| {
            host.is_empty() || port.is_empty() || port.parse::<u16>().is_err()
        }) {
            return Err(format!(
                "`{s}` is not a node address (expected tcp:HOST:PORT or unix:/path.sock)"
            ));
        }
        Ok(NodeAddr::Tcp(addr.to_string()))
    }
}

/// Why a transport call failed (distinct from an *answered* error frame,
/// which decodes to [`Message::Error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Connect, read, or write failed (includes the peer closing the
    /// connection mid-call).
    Io(String),
    /// The call exceeded its deadline.
    Timeout(String),
    /// Bytes arrived, but they don't decode to a protocol frame.
    Wire(WireError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(what) => write!(f, "transport I/O error: {what}"),
            TransportError::Timeout(what) => write!(f, "transport timeout: {what}"),
            TransportError::Wire(e) => write!(f, "transport wire error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

impl TransportError {
    /// Classifies an I/O failure, filing deadline overruns under
    /// [`TransportError::Timeout`].
    pub(crate) fn from_io(context: &str, e: &std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::Timeout(format!("{context}: {e}"))
            }
            _ => TransportError::Io(format!("{context}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_addr_parses_and_displays() {
        let tcp: NodeAddr = "tcp:127.0.0.1:4810".parse().unwrap();
        assert_eq!(tcp, NodeAddr::Tcp("127.0.0.1:4810".into()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:4810");
        let bare: NodeAddr = "localhost:9000".parse().unwrap();
        assert_eq!(bare, NodeAddr::Tcp("localhost:9000".into()));
        #[cfg(unix)]
        {
            let unix: NodeAddr = "unix:/tmp/node.sock".parse().unwrap();
            assert_eq!(unix, NodeAddr::Unix(PathBuf::from("/tmp/node.sock")));
            assert_eq!(unix.to_string(), "unix:/tmp/node.sock");
        }
    }

    #[test]
    fn bad_node_addrs_are_rejected() {
        for bad in [
            "",
            "unix:",
            "tcp:",
            "justahost",
            "host:",
            ":123",
            "host:notaport",
        ] {
            assert!(bad.parse::<NodeAddr>().is_err(), "`{bad}` must be rejected");
        }
    }
}
