//! The node side: request handling and the socket server.
//!
//! A node is deliberately dumb — it owns one index and answers one
//! request at a time per connection. Placement, retries, health, and
//! caching are coordinator concerns; keeping the node stateless is what
//! lets the coordinator treat remote and in-process shards identically.

use super::transport::WireStream;
use super::wire::{
    read_message, write_message, ErrorCode, Message, NodeInfo, NodeStats, WireFault,
};
use super::{NodeAddr, TransportError};
use crate::fault::{FallibleIndex, FaultPlan, FaultyIndex};
use crate::pool::WorkerPool;
use engine::AnnIndex;
use metrics::{SpanRing, TransportCounters, TransportStats};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Spans a node retains for [`Message::StatsRequest`] scrapes before the
/// oldest are overwritten.
const NODE_SPAN_RING_CAPACITY: usize = 4096;

/// Answers protocol messages over one hosted index.
///
/// The handler serves [`FallibleIndex`] so scripted faults
/// ([`Self::with_faults`]) and real transport-reachable indexes flow
/// through one path: a fault becomes a structured error frame, which the
/// client maps back into the [`crate::FaultError`] that drives mark-down
/// and retry on the coordinator.
///
/// The handler also owns the node's observability state — the transport
/// counters every serving surface ([`NodeServer`],
/// [`super::LoopbackTransport`]) records into, the request counter, the
/// data generation, and the span ring — so a [`Message::StatsRequest`]
/// snapshot is answered from one coherent place and matches what the
/// coordinator's own transport counted.
pub struct NodeHandler {
    index: Box<dyn FallibleIndex>,
    counters: Arc<TransportCounters>,
    requests: AtomicU64,
    generation: AtomicU64,
    ring: Arc<SpanRing>,
    /// Sum of every served search's cost profile (the node-side ledger a
    /// coordinator reconciles against; a Mutex, not atomics, so one
    /// snapshot is never torn across fields).
    profile: Mutex<metrics::QueryProfile>,
}

impl NodeHandler {
    /// Hosts `index` (production path — searches never fail node-side).
    pub fn new(index: Arc<dyn AnnIndex>) -> Self {
        Self::fallible(Box::new(index))
    }

    /// Hosts a pre-wrapped fallible index.
    pub fn fallible(index: Box<dyn FallibleIndex>) -> Self {
        Self {
            index,
            counters: Arc::new(TransportCounters::new()),
            requests: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            ring: Arc::new(SpanRing::new(NODE_SPAN_RING_CAPACITY)),
            profile: Mutex::new(metrics::QueryProfile::new()),
        }
    }

    /// Hosts `index` with `plan`'s scripted faults replayed over its
    /// calls — how tests and demos make a *node* misbehave
    /// deterministically.
    pub fn with_faults(index: Arc<dyn AnnIndex>, plan: FaultPlan) -> Self {
        Self::fallible(Box::new(FaultyIndex::new(index, plan)))
    }

    /// Stamps the node's data generation (reported in [`NodeInfo`]).
    pub fn with_generation(self, generation: u64) -> Self {
        self.generation.store(generation, Ordering::Relaxed);
        self
    }

    /// The node-side transport counters (shared with whichever serving
    /// surface carries this handler's frames).
    pub fn counters(&self) -> &Arc<TransportCounters> {
        &self.counters
    }

    /// The node-side span ring (scraped by [`Message::StatsRequest`]).
    pub fn ring(&self) -> &Arc<SpanRing> {
        &self.ring
    }

    /// The node's identity card.
    pub fn info(&self) -> NodeInfo {
        NodeInfo {
            len: self.index.len() as u64,
            dim: self.index.dim() as u32,
            memory_bytes: self.index.memory_bytes() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
        }
    }

    /// The node's live observability snapshot.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            info: self.info(),
            transport: self.counters.snapshot(),
            profile: *self.profile.lock().unwrap(),
            spans: self.ring.snapshot(),
        }
    }

    /// Answers one message. Never panics outward: an index panic becomes
    /// an `Internal` error frame, so one byzantine request cannot take a
    /// server worker down.
    pub fn handle(&self, message: Message) -> Message {
        match message {
            Message::Search(request) => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.index.try_search(&request)
                }));
                match result {
                    Ok(Ok(response)) => {
                        self.profile.lock().unwrap().add(&response.profile);
                        Message::SearchOk(response)
                    }
                    Ok(Err(fault)) => Message::Error(WireFault::from_fault(fault)),
                    Err(_) => Message::Error(WireFault {
                        code: ErrorCode::Internal,
                        message: "index panicked while serving the request".into(),
                    }),
                }
            }
            Message::InfoRequest => Message::InfoResponse(self.info()),
            Message::StatsRequest => Message::StatsResponse(self.stats()),
            // A well-formed frame of a kind this node does not handle
            // (BadRequest is reserved for frames that don't decode).
            other => Message::Error(WireFault {
                code: ErrorCode::Unsupported,
                message: format!("node cannot serve a {} frame", other.kind_name()),
            }),
        }
    }
}

/// Either listener family.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<WireStream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Framed RPC: Nagle + delayed ACK would hold small reply
                // frames for up to 40ms.
                s.set_nodelay(true).ok();
                WireStream::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| WireStream::Unix(s)),
        }
    }
}

/// Hosts any [`AnnIndex`] behind a socket listener: an accept loop hands
/// each client connection to a fixed pool of worker threads, each worker
/// serving its connection's frames until the client hangs up.
///
/// `threads` bounds the **concurrent client connections** (a
/// coordinator's [`super::SocketTransport`] holds one persistent
/// connection each); extra connections queue until a worker frees up.
///
/// [`Self::shutdown`] (also run on drop) severs live connections and
/// stops the accept loop — tests and demos use it to kill a node mid-run
/// and watch the replica layer route around the corpse.
pub struct NodeServer {
    addr: NodeAddr,
    handler: Arc<NodeHandler>,
    shutdown: Arc<AtomicBool>,
    /// Live connections by id; entries are pruned when their serve loop
    /// exits, and drained (severed) by [`Self::shutdown`]. The lock also
    /// orders accept-side registration against shutdown: the flag flips
    /// under it, so a connection is either registered (and gets severed)
    /// or observes the flag and is discarded — never silently kept.
    conns: Arc<Mutex<Vec<(u64, WireStream)>>>,
    accept: Option<JoinHandle<()>>,
    counters: Arc<TransportCounters>,
    unix_path: Option<PathBuf>,
}

impl NodeServer {
    /// Binds `addr` and starts serving `handler` on `threads` connection
    /// workers.
    ///
    /// Fails (with the address in the message) if the socket cannot be
    /// bound — a TCP port in use, or a Unix socket path that already
    /// exists from a previous run.
    pub fn bind(
        addr: &NodeAddr,
        handler: NodeHandler,
        threads: usize,
    ) -> Result<Self, TransportError> {
        let (listener, bound_addr, unix_path) = match addr {
            NodeAddr::Tcp(a) => {
                let listener = TcpListener::bind(a.as_str())
                    .map_err(|e| TransportError::Io(format!("bind {addr}: {e}")))?;
                // Port 0 resolves to a real port at bind time; report it.
                let local = listener
                    .local_addr()
                    .map_err(|e| TransportError::Io(format!("local_addr {addr}: {e}")))?;
                (
                    Listener::Tcp(listener),
                    NodeAddr::Tcp(local.to_string()),
                    None,
                )
            }
            #[cfg(unix)]
            NodeAddr::Unix(path) => {
                let listener = UnixListener::bind(path)
                    .map_err(|e| TransportError::Io(format!("bind {addr}: {e}")))?;
                (Listener::Unix(listener), addr.clone(), Some(path.clone()))
            }
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<(u64, WireStream)>>> = Arc::new(Mutex::new(Vec::new()));
        // The server counts frames into the handler's own counters, so a
        // StatsRequest scrape and Self::stats() answer from one ledger.
        let counters = Arc::clone(handler.counters());
        let handler = Arc::new(handler);
        let handler_handle = Arc::clone(&handler);
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("node-accept".into())
                .spawn(move || {
                    // The pool lives (and joins) inside the accept thread:
                    // when the loop exits, dropping it waits for every
                    // connection worker, whose streams shutdown() severed.
                    let pool = WorkerPool::new(threads);
                    let mut next_id: u64 = 0;
                    loop {
                        let stream = match listener.accept() {
                            Ok(stream) => stream,
                            Err(_) => {
                                if shutdown.load(Ordering::Acquire) {
                                    break;
                                }
                                // A persistent accept error (fd
                                // exhaustion) must not busy-spin a core.
                                std::thread::sleep(std::time::Duration::from_millis(10));
                                continue;
                            }
                        };
                        // Register under the lock, re-checking the flag
                        // there: shutdown() flips it under the same lock,
                        // so this connection is either in the registry
                        // (and will be severed) or discarded here.
                        {
                            let mut registry = conns.lock().unwrap();
                            if shutdown.load(Ordering::Acquire) {
                                stream.shutdown();
                                break; // the wake-up dial, or a late client
                            }
                            match stream.try_clone() {
                                Ok(clone) => registry.push((next_id, clone)),
                                Err(_) => {
                                    // An unregistered connection could
                                    // never be severed by shutdown();
                                    // refuse it rather than serve it.
                                    stream.shutdown();
                                    continue;
                                }
                            }
                        }
                        let id = next_id;
                        next_id += 1;
                        let handler = Arc::clone(&handler);
                        let counters = Arc::clone(&counters);
                        let conns = Arc::clone(&conns);
                        pool.execute(move || {
                            serve_connection(stream, &handler, &counters);
                            // Prune the registry entry so long-lived nodes
                            // don't leak one fd per past connection.
                            conns.lock().unwrap().retain(|(i, _)| *i != id);
                        });
                    }
                })
                .expect("failed to spawn node accept thread")
        };
        Ok(Self {
            addr: bound_addr,
            handler: handler_handle,
            shutdown,
            conns,
            accept: Some(accept),
            counters,
            unix_path,
        })
    }

    /// The hosted handler (what a [`super::ScrapeServer`] answers `/varz`
    /// from).
    pub fn handler(&self) -> &Arc<NodeHandler> {
        &self.handler
    }

    /// The bound address (with TCP port 0 resolved to the real port) —
    /// what clients dial.
    pub fn addr(&self) -> &NodeAddr {
        &self.addr
    }

    /// Server-side frame/byte counters.
    pub fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    /// Stops the node: no new connections are accepted, live connections
    /// are severed mid-stream (clients see an I/O error, exactly like a
    /// crashed process), and every server thread is joined. Idempotent.
    pub fn shutdown(&mut self) {
        {
            // Flip the flag and sever under the registry lock, so a
            // connection the accept thread is registering concurrently is
            // either drained here or discarded there (see `conns`).
            let mut registry = self.conns.lock().unwrap();
            if self.shutdown.swap(true, Ordering::AcqRel) {
                return;
            }
            for (_, conn) in registry.drain(..) {
                conn.shutdown();
            }
        }
        // Unblock the accept loop with one throwaway connection.
        let wake = match &self.addr {
            NodeAddr::Tcp(a) => {
                // An any-interface bind is not dialable as written.
                let dialable = a.replace("0.0.0.0", "127.0.0.1").replace("[::]", "[::1]");
                NodeAddr::Tcp(dialable)
            }
            #[cfg(unix)]
            NodeAddr::Unix(path) => NodeAddr::Unix(path.clone()),
        };
        let woke = WireStream::connect(&wake).is_ok();
        if let Some(accept) = self.accept.take() {
            if woke {
                let _ = accept.join();
            }
            // If the wake-up dial failed (a non-dialable bind interface,
            // or the listener fd already torn down), the accept thread is
            // parked in accept() with no frame ever reaching it — joining
            // would hang forever. The flag is set and every registered
            // connection is severed, so the thread exits on its next
            // accept return; detaching it is safe and shutdown stays
            // bounded.
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection's serve loop: frames in, frames out, until the client
/// hangs up or the stream errors (shutdown severs it).
fn serve_connection(mut stream: WireStream, handler: &NodeHandler, counters: &TransportCounters) {
    loop {
        let (message, trace_id, received) = match read_message(&mut stream) {
            Ok(Some((message, trace_id, received))) => {
                counters.record_received(received as u64);
                (message, trace_id, received)
            }
            Ok(None) => break, // client hung up cleanly
            Err(e) => {
                // An undecodable frame gets one best-effort error answer;
                // framing state is unrecoverable either way, so hang up.
                if let TransportError::Wire(wire) = e {
                    counters.record_error();
                    let reply = Message::Error(WireFault {
                        code: ErrorCode::BadRequest,
                        message: wire.to_string(),
                    });
                    // An undecodable frame has no recoverable trace id;
                    // answer untraced. The reply that lands is a frame on
                    // the wire like any other: count it, or the node's
                    // ledger stops reconciling with the coordinator's.
                    if let Ok(sent) = write_message(&mut stream, &reply, 0) {
                        counters.record_sent(sent as u64);
                    }
                } else {
                    counters.record_error();
                }
                break;
            }
        };
        let reply = handler.handle(message);
        // The reply echoes the request's trace id, stitching this
        // exchange to the coordinator's trace.
        match write_message(&mut stream, &reply, trace_id) {
            Ok(sent) => {
                counters.record_sent(sent as u64);
                if trace_id != 0 {
                    handler.ring().record(
                        trace_id,
                        None,
                        metrics::SpanKind::WireExchange {
                            bytes_out: sent as u64,
                            bytes_in: received as u64,
                        },
                        0,
                    );
                }
            }
            Err(_) => {
                counters.record_error();
                break;
            }
        }
    }
    stream.shutdown();
}
