//! Sharded scatter-gather serving over any [`AnnIndex`].
//!
//! A [`ShardedIndex`] partitions a dataset across N independent shards at
//! build time, searches the shards concurrently on a [`WorkerPool`], and
//! merges the per-shard hits into one globally-ordered `(dist, id)` top-k,
//! remapping shard-local ids back to global dataset ids. It implements
//! [`AnnIndex`] itself, so shards compose with every `GraphKind × Coding`
//! combination and can be nested under `serving`'s result cache or batch
//! executor like any other index.

use crate::fault::{FaultError, FaultKind};
use crate::pool::WorkerPool;
use engine::{AnnIndex, Hit, IndexBuilder, SearchRequest, SearchResponse, SearchStats};
use metrics::SpanKind;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::VectorSet;

/// How vectors are assigned to shards at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Vector `i` goes to shard `i % shards` — perfectly balanced, and the
    /// default for bulk loads.
    RoundRobin,
    /// Vector `i` goes to shard `splitmix64(i) % shards` — the stable
    /// placement to use when ids must keep their shard across reloads of
    /// differently-ordered subsets.
    Hash,
}

impl ShardPolicy {
    /// The shard index `id` maps to under this policy.
    pub fn shard_of(&self, id: u64, shards: usize) -> usize {
        debug_assert!(shards > 0);
        match self {
            ShardPolicy::RoundRobin => (id % shards as u64) as usize,
            ShardPolicy::Hash => (splitmix64(id) % shards as u64) as usize,
        }
    }
}

/// SplitMix64 finalizer — a deterministic, well-mixed id hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard: the index plus its local→global id map.
struct Shard {
    index: Arc<dyn AnnIndex>,
    /// `global_ids[local]` is the dataset id of the shard's vector `local`.
    global_ids: Arc<Vec<u64>>,
}

/// A dataset partitioned across independent [`AnnIndex`] shards, searched
/// with scatter-gather on a worker pool.
///
/// Per-shard results keep their native sort (ascending `(dist, id)` on
/// local ids); the gather step remaps to global ids, merges, re-sorts by
/// global `(dist, id)`, and truncates to `k` — so a sharded exact index is
/// bit-identical to its unsharded equivalent, ties included.
pub struct ShardedIndex {
    shards: Vec<Shard>,
    pool: Arc<WorkerPool>,
    policy: ShardPolicy,
    dim: usize,
}

impl ShardedIndex {
    /// Partitions `base` into `shards` shards under `policy`, returning the
    /// per-shard vector sets and their local→global id maps. Empty
    /// partitions (possible when `shards > n`) are dropped.
    pub fn partition(
        base: &VectorSet,
        shards: usize,
        policy: ShardPolicy,
    ) -> Vec<(VectorSet, Vec<u64>)> {
        let shards = shards.max(1);
        let mut parts: Vec<(VectorSet, Vec<u64>)> = (0..shards)
            .map(|_| (VectorSet::new(base.dim()), Vec::new()))
            .collect();
        for (i, v) in base.iter().enumerate() {
            let s = policy.shard_of(i as u64, shards);
            parts[s].0.push(v);
            parts[s].1.push(i as u64);
        }
        parts.retain(|(set, _)| !set.is_empty());
        parts
    }

    /// Builds every shard through `build_shard` (in parallel on `pool`) and
    /// assembles the sharded index. This is the generic entry point; use
    /// [`Self::build`] for the common `IndexBuilder` case.
    ///
    /// # Panics
    /// Panics if `base` is empty.
    pub fn build_with(
        base: VectorSet,
        shards: usize,
        policy: ShardPolicy,
        pool: Arc<WorkerPool>,
        build_shard: impl Fn(VectorSet) -> Box<dyn AnnIndex> + Send + Sync + 'static,
    ) -> Self {
        assert!(!base.is_empty(), "cannot shard an empty dataset");
        let dim = base.dim();
        let parts = Self::partition(&base, shards, policy);
        drop(base);
        let build_shard = Arc::new(build_shard);
        let jobs: Vec<_> = parts
            .into_iter()
            .map(|(set, global_ids)| {
                let build_shard = Arc::clone(&build_shard);
                move || Shard {
                    index: Arc::from(build_shard(set)),
                    global_ids: Arc::new(global_ids),
                }
            })
            .collect();
        let shards = pool.run(jobs);
        Self {
            shards,
            pool,
            policy,
            dim,
        }
    }

    /// Builds every shard with `builder` (the same `GraphKind × Coding`
    /// configuration on each shard's slice of the data), constructing
    /// shards concurrently on a fresh pool of `threads` workers that the
    /// index then serves from.
    ///
    /// The coding codec is trained **once on the full dataset** and shared
    /// by every shard ([`IndexBuilder::train_codec`]); each shard only
    /// encodes its slice. Besides saving `shards - 1` training passes,
    /// this keeps every shard's distance grid identical — per-shard value
    /// ranges cannot skew the quantizers — so results are stable across
    /// shard counts.
    pub fn build(
        base: VectorSet,
        builder: &IndexBuilder,
        shards: usize,
        policy: ShardPolicy,
        threads: usize,
    ) -> Self {
        let codec = builder.train_codec(&base);
        let builder = builder.clone();
        Self::build_with(
            base,
            shards,
            policy,
            Arc::new(WorkerPool::new(threads)),
            move |set| builder.build_with_codec(set, &codec),
        )
    }

    /// Assembles a sharded index from pre-built shards and their
    /// local→global id maps (used by tests and by callers that shard
    /// heterogeneously).
    ///
    /// Each shard must report **dense positional ids** `0..len` — true for
    /// every graph-backed index and for [`engine::FlatIndex`], but *not*
    /// for composite indexes with external id spaces (e.g.
    /// `maintenance::LsmVectorIndex` after a delete): a hit id outside the
    /// id map panics at gather time rather than silently remapping.
    ///
    /// # Panics
    /// Panics if no shards are given, a shard's id map disagrees with its
    /// length, or shards disagree on dimensionality.
    pub fn from_parts(
        shards: Vec<(Box<dyn AnnIndex>, Vec<u64>)>,
        policy: ShardPolicy,
        pool: Arc<WorkerPool>,
    ) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let dim = shards[0].0.dim();
        let shards: Vec<Shard> = shards
            .into_iter()
            .map(|(index, global_ids)| {
                assert_eq!(
                    index.len(),
                    global_ids.len(),
                    "shard length and id map disagree"
                );
                assert_eq!(index.dim(), dim, "shards disagree on dimensionality");
                Shard {
                    index: Arc::from(index),
                    global_ids: Arc::new(global_ids),
                }
            })
            .collect();
        Self {
            shards,
            pool,
            policy,
            dim,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads serving this index.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The placement policy the index was built with.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The per-shard request: identical options, with a global-id predicate
    /// filter rewritten to shard-local ids and the trace context re-tagged
    /// to the shard's lane (so fan-out spans stay ordered per strand).
    fn shard_request(&self, s: usize, req: &SearchRequest) -> SearchRequest {
        let mut shard_req = req.clone();
        shard_req.trace = req.trace.as_ref().map(|t| t.with_lane(s as u32));
        if let Some(filter) = &req.filter {
            let filter = Arc::clone(filter);
            let map = Arc::clone(&self.shards[s].global_ids);
            // An id outside the dense local space has no global identity;
            // exclude it (the gather step reports the contract violation).
            shard_req.filter = Some(Arc::new(move |local: u64| {
                map.get(local as usize)
                    .is_some_and(|&global| filter(global))
            }));
        }
        shard_req
    }

    /// Gather half of scatter-gather: remap local→global ids, merge every
    /// shard's hits, impose the global `(dist, id)` order, truncate to `k`,
    /// and sum the work counters.
    ///
    /// A hit outside a shard's dense local id space is a contract
    /// violation (a buggy sub-index, or — in the distributed setting — a
    /// misbehaving remote node); it is reported as a [`GatherError`], not
    /// a panic, so callers with a fallback (replica groups, the fallible
    /// [`Self::try_search`]) can route around the bad shard.
    fn gather(
        &self,
        per_shard: Vec<SearchResponse>,
        k: usize,
    ) -> Result<SearchResponse, GatherError> {
        let mut hits: Vec<Hit> = Vec::with_capacity(per_shard.iter().map(|r| r.hits.len()).sum());
        let mut stats = SearchStats::default();
        let mut profile = metrics::QueryProfile::new();
        for (s, (shard, response)) in self.shards.iter().zip(per_shard).enumerate() {
            stats.evaluated += response.stats.evaluated;
            stats.abandoned += response.stats.abandoned;
            profile.add(&response.profile);
            for h in response.hits {
                let Some(&global) = shard.global_ids.get(h.id as usize) else {
                    return Err(GatherError {
                        shard: s,
                        local_id: h.id,
                        len: shard.global_ids.len(),
                    });
                };
                hits.push(Hit {
                    id: global,
                    dist: h.dist,
                });
            }
        }
        hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        hits.truncate(k);
        Ok(SearchResponse {
            hits,
            stats,
            profile,
        })
    }

    /// Scatter-gather that reports a shard's contract violation (hits
    /// outside the dense local id space) as a [`FaultError`] instead of
    /// panicking — the coordinator-side surface for deployments whose
    /// shards may misbehave (remote nodes). Transport-level failures of a
    /// remote shard are routed *below* this layer by nesting the remotes
    /// in a [`crate::ReplicaGroup`] per shard.
    pub fn try_search(&self, req: &SearchRequest) -> Result<SearchResponse, FaultError> {
        let per_shard = self.scatter(req);
        let t0 = Instant::now();
        let merged = self.gather(per_shard, req.k).map_err(GatherError::fault)?;
        self.record_gather(req, &merged, t0.elapsed());
        Ok(merged)
    }

    /// Scatter half of scatter-gather: run the request on every shard
    /// concurrently.
    fn scatter(&self, req: &SearchRequest) -> Vec<SearchResponse> {
        if let Some(ctx) = &req.trace {
            ctx.record(SpanKind::ShardFanout {
                shards: self.shards.len() as u64,
            });
        }
        let jobs: Vec<_> = (0..self.shards.len())
            .map(|s| {
                let index = Arc::clone(&self.shards[s].index);
                let shard_req = self.shard_request(s, req);
                move || index.search(&shard_req)
            })
            .collect();
        self.pool.run(jobs)
    }

    /// Records the coordinator-lane `gather` span for one merged result.
    fn record_gather(&self, req: &SearchRequest, merged: &SearchResponse, took: Duration) {
        if let Some(ctx) = &req.trace {
            ctx.record_timed(
                SpanKind::Gather {
                    merged: merged.hits.len() as u64,
                },
                took.as_nanos() as u64,
            );
        }
    }
}

/// A shard's hit fell outside its dense local id space at gather time.
#[derive(Debug, Clone, Copy)]
struct GatherError {
    shard: usize,
    local_id: u64,
    len: usize,
}

impl GatherError {
    /// The per-shard [`FaultError`] this violation surfaces as.
    fn fault(self) -> FaultError {
        FaultError {
            call: self.local_id,
            kind: FaultKind::Malformed,
        }
    }

    /// Panic with the contract-violation context (the infallible
    /// [`AnnIndex`] surface has no error channel).
    fn abort(self) -> ! {
        panic!(
            "shard {} returned local id {} outside its dense id space 0..{}; \
             ShardedIndex shards must serve positional ids (see from_parts)",
            self.shard, self.local_id, self.len
        )
    }
}

impl AnnIndex for ShardedIndex {
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    /// Scatter the request to every shard on the pool, then gather.
    ///
    /// # Panics
    /// Panics if a shard returns a hit outside its dense local id space
    /// (use [`ShardedIndex::try_search`] to get the violation as a
    /// [`FaultError`] instead).
    fn search(&self, req: &SearchRequest) -> SearchResponse {
        let per_shard = self.scatter(req);
        let t0 = Instant::now();
        let merged = self.gather(per_shard, req.k).unwrap_or_else(|e| e.abort());
        self.record_gather(req, &merged, t0.elapsed());
        merged
    }

    /// Batch execution scatters the full `(request × shard)` grid at once —
    /// one flat job list keeps every worker busy across request boundaries
    /// (no per-request barrier) while the gather stays per-request.
    fn search_batch(&self, requests: &[SearchRequest]) -> Vec<SearchResponse> {
        let n_shards = self.shards.len();
        let jobs: Vec<_> = requests
            .iter()
            .flat_map(|req| {
                if let Some(ctx) = &req.trace {
                    ctx.record(SpanKind::ShardFanout {
                        shards: n_shards as u64,
                    });
                }
                (0..n_shards).map(move |s| {
                    let index = Arc::clone(&self.shards[s].index);
                    let shard_req = self.shard_request(s, req);
                    move || index.search(&shard_req)
                })
            })
            .collect();
        let mut flat = self.pool.run(jobs).into_iter();
        requests
            .iter()
            .map(|req| {
                let per_shard: Vec<SearchResponse> = (&mut flat).take(n_shards).collect();
                let t0 = Instant::now();
                let merged = self.gather(per_shard, req.k).unwrap_or_else(|e| e.abort());
                self.record_gather(req, &merged, t0.elapsed());
                merged
            })
            .collect()
    }

    /// The timed batch keeps the flat `(request × shard)` grid; each
    /// query's latency is its own critical path — the slowest of its
    /// per-shard searches (they run concurrently) plus its gather — not a
    /// share of the batch wall-clock.
    fn search_batch_timed(&self, requests: &[SearchRequest]) -> Vec<(SearchResponse, Duration)> {
        let n_shards = self.shards.len();
        let jobs: Vec<_> = requests
            .iter()
            .flat_map(|req| {
                if let Some(ctx) = &req.trace {
                    ctx.record(SpanKind::ShardFanout {
                        shards: n_shards as u64,
                    });
                }
                (0..n_shards).map(move |s| {
                    let index = Arc::clone(&self.shards[s].index);
                    let shard_req = self.shard_request(s, req);
                    move || {
                        let t0 = Instant::now();
                        let response = index.search(&shard_req);
                        (response, t0.elapsed())
                    }
                })
            })
            .collect();
        let mut flat = self.pool.run(jobs).into_iter();
        requests
            .iter()
            .map(|req| {
                let mut critical_path = Duration::ZERO;
                let per_shard: Vec<SearchResponse> = (&mut flat)
                    .take(n_shards)
                    .map(|(response, took)| {
                        critical_path = critical_path.max(took);
                        response
                    })
                    .collect();
                let t_gather = Instant::now();
                let merged = self.gather(per_shard, req.k).unwrap_or_else(|e| e.abort());
                self.record_gather(req, &merged, t_gather.elapsed());
                (merged, critical_path + t_gather.elapsed())
            })
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.index.memory_bytes() + s.global_ids.len() * std::mem::size_of::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::FlatIndex;

    fn corpus(n: usize, dim: usize) -> VectorSet {
        let mut set = VectorSet::new(dim);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|d| ((i * 31 + d * 7) % 97) as f32).collect();
            set.push(&v);
        }
        set
    }

    fn flat_sharded(base: &VectorSet, shards: usize, policy: ShardPolicy) -> ShardedIndex {
        let parts = ShardedIndex::partition(base, shards, policy)
            .into_iter()
            .map(|(set, ids)| (Box::new(FlatIndex::new(set)) as Box<dyn AnnIndex>, ids))
            .collect();
        ShardedIndex::from_parts(parts, policy, Arc::new(WorkerPool::new(4)))
    }

    #[test]
    fn partition_round_robin_is_balanced_and_complete() {
        let base = corpus(103, 4);
        let parts = ShardedIndex::partition(&base, 4, ShardPolicy::RoundRobin);
        assert_eq!(parts.len(), 4);
        let mut seen: Vec<u64> = parts.iter().flat_map(|(_, ids)| ids.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..103).collect::<Vec<u64>>());
        for (set, ids) in &parts {
            assert_eq!(set.len(), ids.len());
            assert!(set.len() >= 103 / 4);
        }
    }

    #[test]
    fn partition_hash_is_complete_and_stable() {
        let base = corpus(64, 4);
        let a = ShardedIndex::partition(&base, 3, ShardPolicy::Hash);
        let b = ShardedIndex::partition(&base, 3, ShardPolicy::Hash);
        let flat = |parts: &[(VectorSet, Vec<u64>)]| {
            parts.iter().map(|(_, ids)| ids.clone()).collect::<Vec<_>>()
        };
        assert_eq!(flat(&a), flat(&b), "hash placement must be deterministic");
        let mut seen: Vec<u64> = a.iter().flat_map(|(_, ids)| ids.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn more_shards_than_vectors_drops_empty_partitions() {
        let base = corpus(3, 4);
        let sharded = flat_sharded(&base, 8, ShardPolicy::RoundRobin);
        assert_eq!(sharded.len(), 3);
        assert!(sharded.shard_count() <= 3);
        let got = sharded.search(&SearchRequest::new(base.get(0).to_vec(), 3));
        assert_eq!(got.hits.len(), 3);
    }

    #[test]
    fn sharded_flat_matches_global_flat() {
        let base = corpus(150, 8);
        let global = FlatIndex::new(base.clone());
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::Hash] {
            let sharded = flat_sharded(&base, 5, policy);
            for qi in [0usize, 17, 149] {
                let req = SearchRequest::new(base.get(qi).to_vec(), 10);
                let (a, b) = (global.search(&req), sharded.search(&req));
                assert_eq!(a.hits, b.hits, "policy {policy:?} query {qi}");
            }
        }
    }

    #[test]
    fn global_filter_applies_to_global_ids() {
        let base = corpus(60, 4);
        let global = FlatIndex::new(base.clone());
        let sharded = flat_sharded(&base, 4, ShardPolicy::RoundRobin);
        let req = SearchRequest::new(base.get(5).to_vec(), 8).filter(|id| id % 3 == 0);
        let (a, b) = (global.search(&req), sharded.search(&req));
        assert_eq!(a.hits, b.hits);
        assert!(b.hits.iter().all(|h| h.id % 3 == 0));
    }

    /// A broken sub-index whose hits sit outside the dense local space —
    /// the shape of a misbehaving remote node's response.
    struct EvilIndex {
        inner: FlatIndex,
        offset: u64,
    }

    impl AnnIndex for EvilIndex {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn search(&self, req: &SearchRequest) -> SearchResponse {
            let mut response = self.inner.search(req);
            for h in &mut response.hits {
                h.id += self.offset;
            }
            response
        }
        fn memory_bytes(&self) -> usize {
            self.inner.memory_bytes()
        }
    }

    #[test]
    fn out_of_range_local_id_surfaces_as_fault_not_panic() {
        let base = corpus(40, 4);
        let parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> =
            ShardedIndex::partition(&base, 2, ShardPolicy::RoundRobin)
                .into_iter()
                .enumerate()
                .map(|(s, (set, ids))| {
                    let index: Box<dyn AnnIndex> = if s == 0 {
                        Box::new(EvilIndex {
                            inner: FlatIndex::new(set),
                            offset: 1_000,
                        })
                    } else {
                        Box::new(FlatIndex::new(set))
                    };
                    (index, ids)
                })
                .collect();
        let sharded =
            ShardedIndex::from_parts(parts, ShardPolicy::RoundRobin, Arc::new(WorkerPool::new(2)));
        let req = SearchRequest::new(base.get(0).to_vec(), 5);
        let err = sharded.try_search(&req).unwrap_err();
        assert_eq!(err.kind, FaultKind::Malformed);
        // The infallible surface still aborts (there is nothing to serve).
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sharded.search(&req)));
        assert!(caught.is_err());
    }

    #[test]
    fn try_search_matches_search_on_healthy_shards() {
        let base = corpus(60, 4);
        let sharded = flat_sharded(&base, 3, ShardPolicy::RoundRobin);
        let req = SearchRequest::new(base.get(9).to_vec(), 7);
        assert_eq!(
            sharded.try_search(&req).unwrap().hits,
            sharded.search(&req).hits
        );
    }

    #[test]
    fn search_batch_matches_sequential_search() {
        let base = corpus(90, 6);
        let sharded = flat_sharded(&base, 3, ShardPolicy::RoundRobin);
        let requests: Vec<SearchRequest> = (0..20)
            .map(|qi| SearchRequest::new(base.get(qi * 4).to_vec(), 5))
            .collect();
        let batched = sharded.search_batch(&requests);
        for (req, got) in requests.iter().zip(&batched) {
            assert_eq!(got.hits, sharded.search(req).hits);
        }
    }
}
