//! The sharded, multi-threaded query runtime of the `hnsw-flash`
//! workspace.
//!
//! `engine::AnnIndex` made every graph × coding combination serve through
//! one trait; this crate turns any such index into a concurrent service:
//!
//! * [`ShardedIndex`] — partition a dataset across N shards
//!   ([`ShardPolicy::RoundRobin`] or [`ShardPolicy::Hash`]), search the
//!   shards concurrently on a hand-rolled [`WorkerPool`]
//!   (`std::thread` + channels; the workspace's `rayon` stand-in is
//!   sequential), and scatter-gather merge per-shard hits into one
//!   globally-ordered `(dist, id)` top-k with local→global id remapping.
//!   `ShardedIndex` implements `AnnIndex` itself, so it nests under the
//!   other two layers;
//! * [`BatchExecutor`] / [`AdaptiveBatcher`] — queue requests, coalesce
//!   them into batches (fixed-size, or closed on size-**or**-deadline for
//!   online traffic), and report per-query latency percentiles plus
//!   aggregate QPS via `metrics`;
//! * [`QueryCache`] / [`CachedIndex`] — an LRU (the generic
//!   `cachesim::Lru`) over canonical request hashes, with lazy
//!   generation-based invalidation driven by mutating indexes
//!   (`maintenance::LsmVectorIndex::generation`) and by failover
//!   transitions ([`ReplicaGroup::generation`]);
//! * [`ReplicaGroup`] / [`Router`] / [`ReplicatedIndex`] — R replicas per
//!   shard behind failover routing ([`RoutingPolicy::Primary`] /
//!   [`RoutingPolicy::RoundRobin`] / [`RoutingPolicy::LoadAware`]), with
//!   per-replica health tracking (mark-down on consecutive errors, probed
//!   recovery) — any single replica loss per shard is retried on a
//!   sibling with bit-identical results;
//! * [`fault`] — deterministic fault injection ([`FaultPlan`] /
//!   [`FaultyIndex`]): error-on-Nth-call, latency spikes, permanent
//!   death, scripted recovery — how the tests and demos drive every
//!   failover path;
//! * [`distributed`] — shards and replicas in **other processes**: a
//!   versioned length-prefixed wire protocol, an in-memory loopback and a
//!   Unix/TCP socket [`distributed::Transport`], a [`NodeServer`] hosting
//!   any `AnnIndex` behind a listener thread pool (or an [`EventServer`]
//!   multiplexing many pipelined connections per thread with admission
//!   control), and a [`RemoteIndex`] client implementing both `AnnIndex`
//!   *and* [`FallibleIndex`] — so remote nodes compose under the
//!   sharded/replicated/cached stack unchanged, mark-down and probed
//!   recovery included.
//!
//! ```
//! use engine::{AnnIndex, Coding, GraphKind, IndexBuilder, SearchRequest};
//! use serving::{BatchExecutor, CachedIndex, ShardPolicy, ShardedIndex};
//! use std::sync::Arc;
//! use vecstore::{generate, DatasetProfile};
//!
//! let (base, queries) = generate(&DatasetProfile::SsnppLike.spec(), 600, 8, 7);
//! let builder = IndexBuilder::new(GraphKind::Hnsw, Coding::Flash).c(48).r(8).seed(1);
//!
//! // 4 shards searched by 4 worker threads, behind a 256-entry cache.
//! let sharded = ShardedIndex::build(base, &builder, 4, ShardPolicy::RoundRobin, 4);
//! let index = Arc::new(CachedIndex::new(Arc::new(sharded), 256));
//!
//! let mut executor = BatchExecutor::new(index.clone()).batch_size(4);
//! executor.submit_all((0..queries.len()).map(|qi| {
//!     SearchRequest::new(queries.get(qi), 5).ef(64).rerank(8)
//! }));
//! let report = executor.run();
//! assert_eq!(report.responses.len(), queries.len());
//! assert!(report.qps.qps() > 0.0);
//! ```

mod batch;
mod cache;
pub mod distributed;
pub mod fault;
mod pool;
mod replica;
mod shard;

pub use batch::{
    AdaptiveBatcher, BatchExecutor, BatchReport, DEFAULT_BATCH_DEADLINE, DEFAULT_BATCH_SIZE,
};
pub use cache::{CachedIndex, QueryCache, QueryCacheStats};
pub use distributed::{
    AdmissionStats, EventConfig, EventServer, LoopbackTransport, NodeAddr, NodeHandler, NodeInfo,
    NodeServer, NodeStats, RemoteIndex, SocketTransport, Transport, TransportError,
};
pub use fault::{FallibleIndex, FaultAction, FaultError, FaultKind, FaultPlan, FaultyIndex};
pub use pool::WorkerPool;
pub use replica::{
    HealthConfig, ReplicaGroup, ReplicatedIndex, RouteCandidate, Router, RoutingPolicy,
};
pub use shard::{ShardPolicy, ShardedIndex};
