//! End-to-end scenario harness tests: determinism of the non-timing
//! report fields, fault-storm recall parity, churn accounting, and the
//! remote topology against live in-process nodes.

use metrics::{strip_timings, BenchReport, Json, MetricsRegistry};
use scenario::{by_name, ScenarioRunner, TopologySpec};
use serving::distributed::{NodeAddr, NodeHandler, NodeServer};
use serving::{ShardPolicy, ShardedIndex};
use std::sync::Arc;

fn parsed(report: &BenchReport) -> Json {
    let text = report.to_pretty_string();
    let json = Json::parse(&text).expect("report must round-trip through the parser");
    BenchReport::validate(&json).expect("report must satisfy the BENCH schema");
    json
}

#[test]
fn every_scenario_emits_schema_valid_deterministic_reports() {
    for scenario in scenario::all(true) {
        let a = scenario.runner(7).run().expect("run a");
        let b = scenario.runner(7).run().expect("run b");
        assert!(
            a.queries > 0,
            "{}: workload produced no queries",
            scenario.name
        );
        assert!(
            a.recall_samples > 0,
            "{}: oracle sampled no queries",
            scenario.name
        );
        assert_eq!(
            strip_timings(&parsed(&a)),
            strip_timings(&parsed(&b)),
            "{}: same seed + topology must reproduce every non-timing field",
            scenario.name
        );
        // A different seed must actually change the stream.
        let c = scenario.runner(8).run().expect("run c");
        assert_ne!(
            strip_timings(&parsed(&a)),
            strip_timings(&parsed(&c)),
            "{}: different seeds should not collide",
            scenario.name
        );
    }
}

/// The trace-plane acceptance gate: identical seed + topology must
/// reproduce the span trees byte-for-byte once the timing fields
/// (`elapsed_ns`) are stripped — across a cached flat topology and a
/// replicated fault-storm topology.
#[test]
fn trace_structure_is_deterministic_modulo_timing() {
    for name in ["steady_zipf", "fault_storm"] {
        let scenario = by_name(name, true).unwrap();
        let (report_a, traces_a) = scenario.runner(7).run_traced().expect("run a");
        let (_, traces_b) = scenario.runner(7).run_traced().expect("run b");
        assert_eq!(
            traces_a.len() as u64,
            report_a.queries,
            "{name}: one trace per query"
        );
        let structural = |traces: &[Json]| -> Vec<String> {
            traces
                .iter()
                .map(|t| strip_timings(t).to_compact_string())
                .collect()
        };
        assert_eq!(
            structural(&traces_a),
            structural(&traces_b),
            "{name}: same seed + topology must give byte-identical trace structure"
        );
        let total_spans: usize = structural(&traces_a)
            .iter()
            .map(|t| t.matches("\"kind\":").count())
            .sum();
        assert!(
            total_spans >= traces_a.len(),
            "{name}: every query must record at least one span"
        );
        let summary = report_a.trace.expect("runner always folds a trace summary");
        assert_eq!(
            summary.dropped, 0,
            "{name}: the ring must be sized so no span is dropped"
        );
        assert_eq!(summary.traces, report_a.queries);
    }
}

/// Running a scenario publishes the stack's live stats objects into the
/// process-wide registry under stable `layer.component.metric` names,
/// and the registry snapshot stays parseable JSON.
#[test]
fn run_publishes_live_sources_into_the_global_registry() {
    let scenario = by_name("fault_storm", true).unwrap();
    scenario.runner(5).run_traced().expect("storm run");
    let registry = MetricsRegistry::global();
    let names = registry.names();
    for required in ["scenario.trace.ring", "serving.replica.failover"] {
        assert!(
            names.iter().any(|n| n == required),
            "registry must expose {required}, have {names:?}"
        );
    }
    let text = registry.snapshot().to_pretty_string();
    Json::parse(&text).expect("registry snapshot must parse as JSON");
    // The sources read the live stack, not a stale copy.
    assert!(text.contains("markdowns"), "failover source must evaluate");
    assert!(text.contains("dropped"), "trace-ring source must evaluate");
}

#[test]
fn fault_storm_recall_matches_the_healthy_run() {
    let scenario = by_name("fault_storm", true).unwrap();
    let stormy = scenario.runner(11).run().expect("stormy run");

    let mut healthy_spec = scenario.spec.clone();
    healthy_spec.seed = 11;
    healthy_spec.fault_storm = None;
    let healthy = ScenarioRunner::new(
        "fault_storm_healthy",
        healthy_spec,
        scenario.default_topology.clone(),
    )
    .run()
    .expect("healthy run");

    // Replicas are bit-identical builds, so failover onto the surviving
    // replica returns the same hits: recall must match exactly.
    assert_eq!(stormy.queries, healthy.queries);
    assert_eq!(stormy.recall_samples, healthy.recall_samples);
    assert_eq!(
        stormy.recall_at_k, healthy.recall_at_k,
        "failover must not cost recall while one replica per shard survives"
    );

    let storm_stats = stormy
        .failover
        .expect("replicated topology reports failover");
    let healthy_stats = healthy.failover.expect("healthy run still replicated");
    assert!(storm_stats.retries > 0, "storm must force retries");
    assert!(storm_stats.markdowns > 0, "victims must be marked down");
    assert!(storm_stats.probes > 0, "down replicas must be probed");
    assert!(storm_stats.recoveries > 0, "revived victims must recover");
    assert_eq!(healthy_stats.errors, 0, "healthy run must see no errors");
    assert_eq!(healthy_stats.markdowns, 0);
}

#[test]
fn churn_lsm_accounts_for_every_mutation() {
    let scenario = by_name("churn_lsm", true).unwrap();
    let spec = &scenario.spec;
    let report = scenario.runner(3).run().expect("churn run");

    let bursts = (spec.ticks - 1) / spec.mutate_every;
    assert_eq!(
        report.mutations.inserts,
        (bursts * spec.insert_burst) as u64,
        "every scheduled insert must land"
    );
    assert!(
        report.mutations.deletes > 0,
        "some delete attempts must land"
    );
    assert!(
        report.mutations.deletes <= (bursts * spec.delete_burst) as u64,
        "deletes are attempts, not guarantees"
    );
    assert!(
        report.mutations.generation >= report.mutations.inserts + report.mutations.deletes,
        "generation must move at least once per mutation"
    );

    let cache = report.cache.expect("churn scenario runs with a cache");
    assert_eq!(
        cache.hits + cache.misses + cache.uncacheable,
        report.queries,
        "cache counters must account for every query"
    );
    assert!(
        cache.uncacheable > 0,
        "predicate-filtered queries are uncacheable"
    );
    assert!(
        report.recall_at_k > 0.8,
        "overlay merge must preserve recall, got {}",
        report.recall_at_k
    );

    // Tenants partition the query stream exactly.
    let per_tenant: u64 = report.tenants.iter().map(|t| t.queries).sum();
    assert_eq!(per_tenant, report.queries);
    assert!(report.tenants.iter().all(|t| t.queries > 0));
}

/// The cost-profile acceptance gate: the `profile` section is a
/// deterministic function of `(seed, topology)` — byte-identical across
/// identically-seeded runs on both a cached-sharded topology and a
/// replicated fault-storm topology — and actually counts work.
#[test]
fn profile_sections_are_byte_identical_per_seed() {
    for name in ["steady_zipf", "fault_storm"] {
        let scenario = by_name(name, true).unwrap();
        let a = scenario.runner(7).run().expect("run a");
        let b = scenario.runner(7).run().expect("run b");
        let section = |report: &BenchReport| {
            parsed(report)
                .get("profile")
                .expect("schema requires the profile key")
                .to_compact_string()
        };
        assert_eq!(
            section(&a),
            section(&b),
            "{name}: same seed + topology must reproduce the profile bytes"
        );
        assert!(
            a.profile.dist_coded + a.profile.dist_exact > 0,
            "{name}: queries must evaluate distances"
        );
        assert!(
            a.profile.hops_base > 0 || a.profile.dist_exact > 0,
            "{name}: graph hops or flat scans must be counted"
        );
        let slo = a.slo.as_ref().expect("runner always evaluates SLOs");
        assert!(slo.ticks > 0, "{name}: SLO clock must advance");
        assert_eq!(
            parsed(&a).get("slo").unwrap().to_compact_string(),
            parsed(&b).get("slo").unwrap().to_compact_string(),
            "{name}: the slo section is structural"
        );
    }
}

/// Coordinator-side aggregated profiles must reconcile exactly with the
/// sum of the per-node ledgers scraped over the wire: every counter the
/// coordinator reports was counted once on exactly one node.
#[test]
fn coordinator_profile_reconciles_with_node_ledgers() {
    use serving::distributed::{Message, SocketTransport, Transport};

    let scenario = by_name("steady_zipf", true).unwrap();
    let mut spec = scenario.spec.clone();
    spec.seed = 23;

    let (base, _, _) = spec.materialize();
    let builder = spec.builder();
    let parts = ShardedIndex::partition(&base, 2, ShardPolicy::RoundRobin);
    let mut servers: Vec<NodeServer> = parts
        .into_iter()
        .map(|(set, _ids)| {
            let index: Arc<dyn engine::AnnIndex> = Arc::from(builder.build(set));
            NodeServer::bind(
                &"tcp:127.0.0.1:0".parse::<NodeAddr>().unwrap(),
                NodeHandler::new(index),
                2,
            )
            .expect("bind node")
        })
        .collect();
    let nodes: Vec<NodeAddr> = servers.iter().map(|s| s.addr().clone()).collect();

    let report = ScenarioRunner::new(
        "steady_zipf_reconcile",
        spec,
        TopologySpec::Remote {
            nodes: nodes.clone(),
            timeout_ms: 2_000,
        },
    )
    .run()
    .expect("remote run");

    let mut ledger_sum = metrics::QueryProfile::new();
    for addr in &nodes {
        let transport = SocketTransport::connect(addr.clone()).expect("dial node");
        match transport
            .exchange(&Message::StatsRequest)
            .expect("stats scrape")
        {
            Message::StatsResponse(stats) => ledger_sum.add(&stats.profile),
            other => panic!("unexpected {other:?} answering a stats scrape"),
        }
    }
    assert!(
        ledger_sum.dist_coded + ledger_sum.dist_exact > 0,
        "the nodes must have done the distance work"
    );
    assert_eq!(
        report.profile, ledger_sum,
        "the coordinator's aggregate must equal the sum of the node ledgers"
    );

    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn remote_topology_drives_in_process_nodes() {
    let scenario = by_name("steady_zipf", true).unwrap();
    let mut spec = scenario.spec.clone();
    spec.seed = 21;

    // Host the scenario's own generated base on two nodes, partitioned
    // exactly the way the runner maps ids (round-robin).
    let (base, _, _) = spec.materialize();
    let builder = spec.builder();
    let parts = ShardedIndex::partition(&base, 2, ShardPolicy::RoundRobin);
    let mut servers: Vec<NodeServer> = parts
        .into_iter()
        .map(|(set, _ids)| {
            let index: Arc<dyn engine::AnnIndex> = Arc::from(builder.build(set));
            NodeServer::bind(
                &"tcp:127.0.0.1:0".parse::<NodeAddr>().unwrap(),
                NodeHandler::new(index),
                2,
            )
            .expect("bind node")
        })
        .collect();
    let nodes: Vec<NodeAddr> = servers.iter().map(|s| s.addr().clone()).collect();

    let report = ScenarioRunner::new(
        "steady_zipf_remote",
        spec,
        TopologySpec::Remote {
            nodes,
            timeout_ms: 2_000,
        },
    )
    .run()
    .expect("remote run");

    assert!(report.queries > 0);
    assert!(
        report.recall_at_k > 0.5,
        "remote recall collapsed: {}",
        report.recall_at_k
    );
    assert_eq!(report.topology, "nodes:2");
    let transport = report.transport.expect("remote topology reports transport");
    assert!(transport.frames_sent > 0);
    assert!(transport.bytes_received > 0);
    assert_eq!(transport.timeouts, 0, "no timeouts expected on loopback");
    parsed(&report);

    for server in &mut servers {
        server.shutdown();
    }
}
