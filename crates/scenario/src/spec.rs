//! Workload specification → deterministic event stream.
//!
//! A [`WorkloadSpec`] is a pure description: every knob that shapes the
//! traffic lives here, and [`WorkloadSpec::events`] lowers it into a flat
//! event list using only the spec's seed — no wall clock, no OS entropy.
//! Two calls with the same spec produce byte-identical streams, which is
//! the property the whole harness's reproducibility rests on (in the
//! spirit of Flock's seeded Nexmark source: the generator owns all the
//! randomness, the runner owns none).

use engine::{Coding, GraphKind, IndexBuilder};
use rand::distributions::{Poisson, Zipf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serving::{FaultPlan, RoutingPolicy};
use vecstore::{generate, DatasetSpec, VectorSet};

/// Per-tick arrival schedule: how many queries land in each tick.
///
/// Each shape yields a mean arrival rate per tick; the actual count is a
/// Poisson draw around it, so even "steady" traffic has realistic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Constant mean rate.
    Steady {
        /// Mean queries per tick.
        rate: f64,
    },
    /// A raised-cosine day curve: rate swings between `trough` and `peak`
    /// over `period` ticks (the diurnal pattern serving fleets size for).
    Diurnal {
        /// Mean rate at the quietest tick.
        trough: f64,
        /// Mean rate at the busiest tick.
        peak: f64,
        /// Ticks per full day cycle.
        period: usize,
    },
    /// Baseline traffic with periodic spikes: every `every` ticks the rate
    /// jumps to `burst` for `width` ticks.
    Bursty {
        /// Mean rate outside bursts.
        base: f64,
        /// Mean rate inside a burst.
        burst: f64,
        /// Tick distance between burst starts.
        every: usize,
        /// Burst duration in ticks.
        width: usize,
    },
}

impl ArrivalShape {
    /// Mean arrival rate at `tick`.
    pub fn rate_at(&self, tick: usize) -> f64 {
        match *self {
            ArrivalShape::Steady { rate } => rate,
            ArrivalShape::Diurnal {
                trough,
                peak,
                period,
            } => {
                let period = period.max(1);
                let phase = (tick % period) as f64 / period as f64;
                let swing = (1.0 - (2.0 * std::f64::consts::PI * phase).cos()) / 2.0;
                trough + (peak - trough) * swing
            }
            ArrivalShape::Bursty {
                base,
                burst,
                every,
                width,
            } => {
                let every = every.max(1);
                if tick % every < width {
                    burst
                } else {
                    base
                }
            }
        }
    }

    /// Short label for report config echoing.
    pub fn label(&self) -> String {
        match *self {
            ArrivalShape::Steady { rate } => format!("steady:{rate}"),
            ArrivalShape::Diurnal {
                trough,
                peak,
                period,
            } => format!("diurnal:{trough}..{peak}/{period}"),
            ArrivalShape::Bursty {
                base,
                burst,
                every,
                width,
            } => format!("bursty:{base}+{burst}x{width}/{every}"),
        }
    }
}

/// A scripted fault storm lowered onto [`FaultPlan`]s at topology-build
/// time: replica 0 of every shard is left healthy (the survivor the
/// recall-parity guarantee rests on), every other replica takes a
/// transient error, dies, and — if `revive_after > 0` — comes back to be
/// probed and recovered.
///
/// All trigger points are **per-replica call counts**, not wall-clock
/// times, so the storm unfolds identically on every run of the same
/// workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStorm {
    /// Victim replicas fail transiently on this call (0-based).
    pub transient_at: u64,
    /// Victim replicas die on this call.
    pub die_at: u64,
    /// Calls after death at which a victim revives (`0` = stays dead).
    pub revive_after: u64,
    /// Extra per-victim offset (`stagger × (shard + replica)`) so the
    /// fleet degrades progressively instead of all at once.
    pub stagger: u64,
}

impl FaultStorm {
    /// The fault script for replica `replica` of shard `shard`; `None`
    /// for the designated survivor (replica 0).
    pub fn plan_for(&self, shard: usize, replica: usize) -> Option<FaultPlan> {
        if replica == 0 {
            return None;
        }
        let offset = self.stagger * (shard as u64 + replica as u64);
        let die = self.die_at + offset;
        let mut plan = FaultPlan::new()
            .fail_on(self.transient_at + offset)
            .die_at(die);
        if self.revive_after > 0 {
            plan = plan.revive_at(die + self.revive_after);
        }
        Some(plan)
    }
}

/// Virtual-time admission control for overload scenarios.
///
/// The live event-driven front-end sheds on wall-clock deadlines, which
/// no deterministic harness can replay bit-for-bit. The scenario runner
/// therefore applies the *same policy in virtual time*: ticks are the
/// clock, `capacity_per_tick` is the node's service rate, and the
/// admitted/shed/retried counters become pure functions of the spec —
/// `strip_timings`-stable across identically-seeded runs.
///
/// Per tick: arrivals join a FIFO queue (overflow past `max_queue` is
/// shed on arrival), `capacity_per_tick` requests are served from the
/// front, and anything still queued after `deadline_ticks` is shed.
/// A shed request with retries left re-arrives next tick (the client's
/// `Overloaded` → transient-fault retry); past `retry_limit` it is
/// answered `Overloaded` for good. Every request therefore ends
/// admitted or shed — none hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSpec {
    /// Requests served per tick (the virtual service rate).
    pub capacity_per_tick: usize,
    /// Queue length past which arrivals are shed immediately.
    pub max_queue: usize,
    /// Ticks a request may wait before being shed.
    pub deadline_ticks: usize,
    /// Times a shed request re-arrives before staying shed.
    pub retry_limit: u32,
}

impl AdmissionSpec {
    /// Report label for config echoing.
    pub fn label(&self) -> String {
        format!(
            "cap:{}/q:{}/dl:{}/retry:{}",
            self.capacity_per_tick, self.max_queue, self.deadline_ticks, self.retry_limit
        )
    }
}

/// One query arrival, fully resolved by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEvent {
    /// Tick the query arrived in.
    pub tick: usize,
    /// Issuing tenant (`0..tenants`).
    pub tenant: u32,
    /// Index into the query pool (Zipf-skewed: low = popular).
    pub pool_index: usize,
    /// Label partition hint, when the query is labeled.
    pub label: Option<u32>,
    /// Whether the query carries the even-id predicate filter.
    pub filtered: bool,
}

/// One element of the generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A query arrival.
    Query(QueryEvent),
    /// A mutation burst: apply `inserts` insertions and attempt `deletes`
    /// deletions (against ids the runner picks deterministically).
    Mutate {
        /// Vectors to insert from the spec's insert stream.
        inserts: usize,
        /// Deletion attempts.
        deletes: usize,
    },
}

/// Everything that defines a workload. See module docs; the key contract
/// is that [`Self::events`], [`Self::materialize`], and the runner's
/// derived randomness are all pure functions of this struct.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Master seed: drives dataset synthesis, the event stream, and the
    /// runner's delete-target picks (via fixed derived seeds).
    pub seed: u64,
    /// Synthetic embedding distribution for base/query/insert vectors.
    pub dataset: DatasetSpec,
    /// Base corpus size at t=0.
    pub base_n: usize,
    /// Distinct query vectors; Zipf popularity ranks over this pool.
    pub query_pool: usize,
    /// Number of ticks to simulate.
    pub ticks: usize,
    /// Arrival schedule.
    pub arrival: ArrivalShape,
    /// Zipf exponent of query popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Neighbors requested per query.
    pub k: usize,
    /// Beam width.
    pub ef: usize,
    /// Exact-rerank factor.
    pub rerank: usize,
    /// Executor batch size (1 serializes the stream — required for
    /// deterministic failover counters under a fault storm).
    pub batch: usize,
    /// Tenants round-tripped through per-tenant accounting.
    pub tenants: u32,
    /// Fraction of queries carrying a label hint.
    pub labeled_fraction: f64,
    /// Label alphabet size.
    pub labels: u32,
    /// Fraction of queries carrying the even-id predicate filter
    /// (uncacheable; demoted to plain on predicate-less topologies).
    pub filtered_fraction: f64,
    /// Ticks between mutation bursts (`0` = immutable corpus).
    pub mutate_every: usize,
    /// Insertions per burst.
    pub insert_burst: usize,
    /// Deletion attempts per burst.
    pub delete_burst: usize,
    /// Recall is measured on every `oracle_every`-th query (≥ 1).
    pub oracle_every: usize,
    /// Scripted fault storm (applies on replicated topologies).
    pub fault_storm: Option<FaultStorm>,
    /// Virtual-time admission control (`None` = everything admitted).
    pub admission: Option<AdmissionSpec>,
    /// Graph family of the index under test.
    pub graph: GraphKind,
    /// Coding scheme of the index under test.
    pub coding: Coding,
    /// Build-time candidate-list size.
    pub build_c: usize,
    /// Build-time degree bound.
    pub build_r: usize,
    /// Build seed (independent of the workload seed so the same corpus
    /// can be served by differently-seeded builds).
    pub build_seed: u64,
    /// Routing policy for replicated topologies. `LoadAware` routes on
    /// wall-clock load and would leak timing into the counters, so
    /// deterministic scenarios stick to `Primary`/`RoundRobin`.
    pub routing: RoutingPolicy,
}

impl WorkloadSpec {
    /// A small, fully-specified default: steady traffic, no mutations,
    /// no faults. Named scenarios start from this and override.
    pub fn base(seed: u64) -> Self {
        Self {
            seed,
            dataset: DatasetSpec::new(48, 32, 0.97, 0.45, 901),
            base_n: 2_000,
            query_pool: 256,
            ticks: 40,
            arrival: ArrivalShape::Steady { rate: 50.0 },
            zipf_exponent: 1.1,
            k: 10,
            ef: 96,
            rerank: 4,
            batch: 32,
            tenants: 4,
            labeled_fraction: 0.2,
            labels: 8,
            filtered_fraction: 0.1,
            mutate_every: 0,
            insert_burst: 0,
            delete_burst: 0,
            oracle_every: 16,
            fault_storm: None,
            admission: None,
            graph: GraphKind::Hnsw,
            coding: Coding::Flash,
            build_c: 48,
            build_r: 8,
            build_seed: 0x5EED,
            routing: RoutingPolicy::RoundRobin,
        }
    }

    /// Derived seed for a named sub-stream, so the event stream, the
    /// dataset, and the runner's delete picks never share generator state.
    fn sub_seed(&self, stream: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(stream)
    }

    /// Synthesizes `(base, query_pool, insert_stream)` for this spec.
    /// The insert stream holds every vector the mutation bursts can
    /// consume, drawn from the same distribution as the base corpus.
    pub fn materialize(&self) -> (VectorSet, VectorSet, VectorSet) {
        let (base, queries) = generate(
            &self.dataset,
            self.base_n,
            self.query_pool,
            self.sub_seed(1),
        );
        let total_inserts = self.total_inserts();
        let (inserts, _) = generate(&self.dataset, total_inserts.max(1), 0, self.sub_seed(2));
        (base, queries, inserts)
    }

    /// Upper bound of insertions the event stream can request.
    pub fn total_inserts(&self) -> usize {
        if self.mutate_every == 0 {
            return 0;
        }
        let bursts = (self.ticks.saturating_sub(1)) / self.mutate_every;
        bursts * self.insert_burst
    }

    /// The engine builder for the index under test.
    pub fn builder(&self) -> IndexBuilder {
        IndexBuilder::new(self.graph, self.coding)
            .c(self.build_c)
            .r(self.build_r)
            .seed(self.build_seed)
    }

    /// Lowers the spec into its deterministic event stream.
    pub fn events(&self) -> Vec<Event> {
        assert!(self.query_pool > 0, "query pool must be non-empty");
        let mut rng = SmallRng::seed_from_u64(self.sub_seed(3));
        let zipf = Zipf::new(self.query_pool, self.zipf_exponent);
        let mut events = Vec::new();
        for tick in 0..self.ticks {
            if self.mutate_every > 0 && tick > 0 && tick % self.mutate_every == 0 {
                events.push(Event::Mutate {
                    inserts: self.insert_burst,
                    deletes: self.delete_burst,
                });
            }
            let arrivals = Poisson::new(self.arrival.rate_at(tick)).sample(&mut rng);
            for _ in 0..arrivals {
                let pool_index = zipf.sample(&mut rng);
                let tenant = if self.tenants > 1 {
                    rng.gen_range(0..self.tenants)
                } else {
                    0
                };
                let label = rng
                    .gen_bool(self.labeled_fraction)
                    .then(|| rng.gen_range(0..self.labels.max(1)));
                let filtered = rng.gen_bool(self.filtered_fraction);
                events.push(Event::Query(QueryEvent {
                    tick,
                    tenant,
                    pool_index,
                    label,
                    filtered,
                }));
            }
        }
        events
    }

    /// Seed of the runner's delete-target stream (exposed so tests can
    /// replay it).
    pub fn delete_seed(&self) -> u64 {
        self.sub_seed(4)
    }

    /// Config pairs echoed into the report (non-timing knobs only).
    pub fn config_pairs(&self) -> Vec<(String, metrics::Json)> {
        use metrics::Json;
        vec![
            ("dim".into(), Json::uint(self.dataset.dim as u64)),
            ("base_n".into(), Json::uint(self.base_n as u64)),
            ("query_pool".into(), Json::uint(self.query_pool as u64)),
            ("ticks".into(), Json::uint(self.ticks as u64)),
            ("arrival".into(), Json::str(self.arrival.label())),
            ("zipf_exponent".into(), Json::num(self.zipf_exponent)),
            ("k".into(), Json::uint(self.k as u64)),
            ("ef".into(), Json::uint(self.ef as u64)),
            ("rerank".into(), Json::uint(self.rerank as u64)),
            ("batch".into(), Json::uint(self.batch as u64)),
            ("tenants".into(), Json::uint(u64::from(self.tenants))),
            ("labeled_fraction".into(), Json::num(self.labeled_fraction)),
            (
                "filtered_fraction".into(),
                Json::num(self.filtered_fraction),
            ),
            ("mutate_every".into(), Json::uint(self.mutate_every as u64)),
            ("insert_burst".into(), Json::uint(self.insert_burst as u64)),
            ("delete_burst".into(), Json::uint(self.delete_burst as u64)),
            ("oracle_every".into(), Json::uint(self.oracle_every as u64)),
            (
                "method".into(),
                Json::str(format!("{}:{}", self.graph.name(), self.coding.name())),
            ),
            (
                "fault_storm".into(),
                match &self.fault_storm {
                    Some(s) => Json::str(format!(
                        "transient@{}+die@{}+revive@{}x{}",
                        s.transient_at, s.die_at, s.revive_after, s.stagger
                    )),
                    None => Json::Null,
                },
            ),
            (
                "admission".into(),
                match &self.admission {
                    Some(a) => Json::str(a.label()),
                    None => Json::Null,
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_streams_are_deterministic_per_seed() {
        let spec = WorkloadSpec::base(9);
        assert_eq!(spec.events(), spec.events());
        let other = WorkloadSpec::base(10);
        assert_ne!(spec.events(), other.events());
    }

    #[test]
    fn mutation_bursts_land_on_schedule() {
        let mut spec = WorkloadSpec::base(5);
        spec.ticks = 10;
        spec.mutate_every = 3;
        spec.insert_burst = 7;
        spec.delete_burst = 2;
        let events = spec.events();
        let bursts = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Mutate {
                        inserts: 7,
                        deletes: 2
                    }
                )
            })
            .count();
        // Ticks 3, 6, 9 mutate.
        assert_eq!(bursts, 3);
        assert_eq!(spec.total_inserts(), 21);
    }

    #[test]
    fn zipf_head_dominates_query_pool() {
        let mut spec = WorkloadSpec::base(2);
        spec.ticks = 60;
        spec.zipf_exponent = 1.2;
        let mut counts = vec![0usize; spec.query_pool];
        for e in spec.events() {
            if let Event::Query(q) = e {
                counts[q.pool_index] += 1;
            }
        }
        let tail: usize = counts[spec.query_pool / 2..].iter().sum();
        assert!(counts[0] > counts[spec.query_pool / 4]);
        assert!(counts[0] * 2 > tail, "head rank must dwarf the deep tail");
    }

    #[test]
    fn arrival_shapes_swing_as_described() {
        let d = ArrivalShape::Diurnal {
            trough: 10.0,
            peak: 90.0,
            period: 20,
        };
        assert!((d.rate_at(0) - 10.0).abs() < 1e-9);
        assert!((d.rate_at(10) - 90.0).abs() < 1e-9);
        assert!((d.rate_at(20) - 10.0).abs() < 1e-9, "periodic");
        let b = ArrivalShape::Bursty {
            base: 5.0,
            burst: 50.0,
            every: 10,
            width: 2,
        };
        assert_eq!(b.rate_at(0), 50.0);
        assert_eq!(b.rate_at(1), 50.0);
        assert_eq!(b.rate_at(2), 5.0);
        assert_eq!(b.rate_at(10), 50.0);
    }

    #[test]
    fn fault_storm_spares_replica_zero() {
        let storm = FaultStorm {
            transient_at: 4,
            die_at: 10,
            revive_after: 8,
            stagger: 2,
        };
        assert!(storm.plan_for(0, 0).is_none());
        assert!(storm.plan_for(3, 0).is_none());
        let plan = storm.plan_for(1, 1).unwrap();
        assert!(!plan.is_healthy());
        // Permanent-death variant still plans for non-survivors.
        let forever = FaultStorm {
            revive_after: 0,
            ..storm
        };
        assert!(forever.plan_for(0, 2).is_some());
    }

    #[test]
    fn materialize_shapes_match_spec() {
        let mut spec = WorkloadSpec::base(3);
        spec.mutate_every = 5;
        spec.insert_burst = 4;
        let (base, pool, inserts) = spec.materialize();
        assert_eq!(base.len(), spec.base_n);
        assert_eq!(pool.len(), spec.query_pool);
        assert_eq!(inserts.len(), spec.total_inserts());
        assert_eq!(base.dim(), spec.dataset.dim);
        // Same spec ⇒ same bytes.
        let (base2, _, _) = spec.materialize();
        assert_eq!(base, base2);
    }
}
