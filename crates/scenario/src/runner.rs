//! Drives a workload's event stream against a serving topology.
//!
//! [`ScenarioRunner`] assembles the stack — topology core →
//! [`ScenarioCorpus`] overlay → optional `QueryCache` — then replays the
//! spec's events in order: query stretches run through [`BatchExecutor`]
//! (preserving the topology's concurrent fan-out), mutation bursts apply
//! between stretches and re-sync the cache generation, and a sampled
//! subset of queries is checked against a brute-force oracle over the
//! *live* vector set at that point in the stream.
//!
//! Everything the runner reports besides wall-clock timings — counts,
//! recall, cache/failover/transport counters — is a deterministic
//! function of `(spec, topology)`. Two deliberate choices keep it so:
//! fault-storm scenarios run with `batch = 1` (health transitions are
//! then totally ordered against query placement), and predicate-filtered
//! queries are demoted to plain on remote topologies (predicates cannot
//! cross the wire) — so determinism holds per topology, which is what the
//! trajectory comparison needs.

use crate::corpus::ScenarioCorpus;
use crate::spec::{AdmissionSpec, Event, QueryEvent, WorkloadSpec};
use engine::{AnnIndex, SearchRequest};
use metrics::{
    collect_traces, trace_id_for, transport_summary, AdmissionSummary, BenchReport, BurnConfig,
    CacheSummary, Json, MetricsRegistry, MutationSummary, Objective, QueryProfile, SloTracker,
    SpanKind, SpanRing, TenantSummary, TraceContext, TraceSummary,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serving::distributed::{NodeAddr, RemoteIndex, SocketTransport, Transport};
use serving::{
    BatchExecutor, BatchReport, CachedIndex, FallibleIndex, HealthConfig, ReplicatedIndex,
    ShardPolicy, ShardedIndex, WorkerPool,
};
use std::sync::Arc;

/// The serving topology a scenario runs against.
#[derive(Debug, Clone)]
pub enum TopologySpec {
    /// One in-process index.
    Flat,
    /// `shards` round-robin partitions on a worker pool.
    Sharded {
        /// Partition count.
        shards: usize,
    },
    /// `shards × replicas` with failover routing (the spec's policy); a
    /// fault storm in the spec lowers onto the replicas here.
    Replicated {
        /// Partition count.
        shards: usize,
        /// Replicas per partition.
        replicas: usize,
    },
    /// One remote node per shard (`serve-node` processes hosting the
    /// round-robin partitions of the scenario's generated base).
    Remote {
        /// Node addresses, one per shard in partition order.
        nodes: Vec<NodeAddr>,
        /// Per-request transport timeout.
        timeout_ms: u64,
    },
}

impl TopologySpec {
    /// Whether predicate filters can reach this topology (closures cannot
    /// cross the wire; label filters can).
    pub fn supports_predicates(&self) -> bool {
        !matches!(self, TopologySpec::Remote { .. })
    }

    /// Report label, with the cache layer appended when present.
    pub fn label(&self, spec: &WorkloadSpec, cache_capacity: usize) -> String {
        let base = match self {
            TopologySpec::Flat => "flat".to_string(),
            TopologySpec::Sharded { shards } => format!("sharded:{shards}"),
            TopologySpec::Replicated { shards, replicas } => {
                format!("replicated:{shards}x{replicas}:{}", spec.routing)
            }
            TopologySpec::Remote { nodes, .. } => format!("nodes:{}", nodes.len()),
        };
        if cache_capacity > 0 {
            format!("{base}+cache:{cache_capacity}")
        } else {
            base
        }
    }

    fn default_threads(&self) -> usize {
        match self {
            TopologySpec::Flat => 1,
            TopologySpec::Sharded { shards } => (*shards).max(1),
            TopologySpec::Replicated { shards, replicas } => (shards * replicas).clamp(1, 8),
            TopologySpec::Remote { nodes, .. } => nodes.len().max(1),
        }
    }
}

/// A named workload bound to a topology, ready to run.
pub struct ScenarioRunner {
    name: String,
    spec: WorkloadSpec,
    topology: TopologySpec,
    cache_capacity: usize,
    threads: usize,
}

/// Accumulated run state shared by the segment flushes.
struct RunState {
    all_latencies: Vec<f64>,
    tenant_indices: Vec<Vec<usize>>,
    wall_seconds: f64,
    recall_sum: f64,
    recall_samples: u64,
    /// Sum of every executed query's structural cost profile.
    profile: QueryProfile,
    /// Oracle outcomes as `(virtual tick, hits, misses)` — the
    /// `recall_deficit` SLO observations.
    recall_obs: Vec<(usize, u64, u64)>,
}

impl ScenarioRunner {
    /// A runner with no cache and automatic thread sizing.
    pub fn new(name: impl Into<String>, spec: WorkloadSpec, topology: TopologySpec) -> Self {
        Self {
            name: name.into(),
            spec,
            topology,
            cache_capacity: 0,
            threads: 0,
        }
    }

    /// Adds a `QueryCache` of `capacity` on top of the stack (0 = none).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Fixes the worker-pool size (0 = derive from the topology).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The workload spec (presets expose it for tweaking).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Replays the workload and reports. Errors only on topology assembly
    /// (e.g. an unreachable remote node).
    pub fn run(&self) -> Result<BenchReport, String> {
        self.run_traced().map(|(report, _)| report)
    }

    /// [`Self::run`], additionally returning one JSON trace per query
    /// event in issue order (the `--trace-out` line format): each entry is
    /// `{"trace_id": ..., "spans": [...]}` with the spans in canonical
    /// lane order. The trace *structure* — span kinds, lanes, payloads —
    /// is a deterministic function of `(spec, topology)`; only the
    /// `elapsed_ns` fields vary run to run.
    pub fn run_traced(&self) -> Result<(BenchReport, Vec<Json>), String> {
        let spec = &self.spec;
        let threads = if self.threads > 0 {
            self.threads
        } else {
            self.topology.default_threads()
        };
        let (base, pool, insert_stream) = spec.materialize();
        let builder = spec.builder();

        // Oracle mirror: the live vector of every global id (None =
        // deleted). Index i holds id i; inserts extend the tail.
        let mut mirror: Vec<Option<Vec<f32>>> = base.iter().map(|v| Some(v.to_vec())).collect();

        // --- assemble the stack ---------------------------------------
        let mut replicated: Option<Arc<ReplicatedIndex>> = None;
        let mut transports: Vec<Arc<SocketTransport>> = Vec::new();
        let core: Arc<dyn AnnIndex> = match &self.topology {
            TopologySpec::Flat => Arc::from(builder.build(base)),
            TopologySpec::Sharded { shards } => Arc::new(ShardedIndex::build(
                base,
                &builder,
                *shards,
                ShardPolicy::RoundRobin,
                threads,
            )),
            TopologySpec::Replicated { shards, replicas } => {
                let storm = spec.fault_storm;
                let r = Arc::new(ReplicatedIndex::build_with_faults(
                    base,
                    &builder,
                    *shards,
                    *replicas,
                    ShardPolicy::RoundRobin,
                    spec.routing,
                    HealthConfig::default(),
                    threads,
                    |shard, replica| storm.and_then(|s| s.plan_for(shard, replica)),
                ));
                replicated = Some(Arc::clone(&r));
                r
            }
            TopologySpec::Remote { nodes, timeout_ms } => {
                let n = base.len();
                let dim = base.dim();
                let id_maps =
                    (0..nodes.len()).map(|s| ((s as u64)..n as u64).step_by(nodes.len()).collect());
                let parts: Vec<(Box<dyn AnnIndex>, Vec<u64>)> = nodes
                    .iter()
                    .zip(id_maps)
                    .map(|(addr, ids): (_, Vec<u64>)| {
                        let transport = Arc::new(
                            SocketTransport::connect(addr.clone())
                                .map_err(|e| format!("{addr}: {e}"))?
                                .with_timeout(std::time::Duration::from_millis(
                                    (*timeout_ms).max(1),
                                )),
                        );
                        let remote =
                            RemoteIndex::connect(Arc::clone(&transport) as Arc<dyn Transport>)
                                .map_err(|e| format!("{addr}: {e}"))?;
                        if FallibleIndex::len(&remote) != ids.len()
                            || FallibleIndex::dim(&remote) != dim
                        {
                            return Err(format!(
                                "{addr} serves {}x{}, expected shard of {}x{dim} — the node \
                                 must serve this scenario's generated base",
                                FallibleIndex::len(&remote),
                                FallibleIndex::dim(&remote),
                                ids.len()
                            ));
                        }
                        transports.push(transport);
                        Ok((Box::new(remote) as Box<dyn AnnIndex>, ids))
                    })
                    .collect::<Result<_, String>>()?;
                Arc::new(ShardedIndex::from_parts(
                    parts,
                    ShardPolicy::RoundRobin,
                    Arc::new(WorkerPool::new(threads)),
                ))
            }
        };
        let corpus = Arc::new(ScenarioCorpus::new(core));
        let cached = (self.cache_capacity > 0).then(|| {
            Arc::new(CachedIndex::new(
                Arc::clone(&corpus) as Arc<dyn AnnIndex>,
                self.cache_capacity,
            ))
        });
        let serving: Arc<dyn AnnIndex> = match &cached {
            Some(c) => Arc::clone(c) as Arc<dyn AnnIndex>,
            None => Arc::clone(&corpus) as Arc<dyn AnnIndex>,
        };

        // --- replay the stream ----------------------------------------
        let events = spec.events();
        // Admission control replays in virtual time over the arrival
        // ticks, so each query's fate (and all the counters) is fixed
        // before a single search runs. The ticks double as the SLO
        // evaluation clock below.
        let query_ticks: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                Event::Query(q) => Some(q.tick),
                _ => None,
            })
            .collect();
        let admission = spec
            .admission
            .as_ref()
            .map(|policy| simulate_admission(policy, &query_ticks));
        // Size the span ring to the workload so no span is ever dropped:
        // capacity (deterministic from spec + topology) comfortably above
        // the worst-case span count per query for this topology (plus the
        // queue_wait span every admission-controlled query records).
        let query_events = events
            .iter()
            .filter(|e| matches!(e, Event::Query(_)))
            .count();
        let spans_per_query = usize::from(spec.admission.is_some())
            + match &self.topology {
                TopologySpec::Flat => 8,
                TopologySpec::Sharded { shards } => 8 + 4 * *shards,
                TopologySpec::Replicated { shards, replicas } => 8 + shards * (6 + 2 * replicas),
                TopologySpec::Remote { nodes, .. } => 8 + 8 * nodes.len(),
            };
        let ring = Arc::new(SpanRing::new(
            (query_events.max(1) * spans_per_query).clamp(1024, 1 << 21),
        ));
        let mut trace_ids: Vec<u64> = Vec::with_capacity(query_events);

        // --- live metrics plane -----------------------------------------
        // Publish the stack's live stats objects into the process-wide
        // registry so a concurrent scrape (`MetricsRegistry::global()
        // .snapshot()`) observes this run's counters under stable
        // `layer.component.metric` names. `register_source` replaces any
        // prior entry, so back-to-back runs simply re-point the names at
        // the fresh stack.
        let registry = MetricsRegistry::global();
        // The graph layer's process-wide scratch-pool counters
        // (`graphs.scratch.{created,checkouts}`) ride along with every run.
        graphs::register_scratch_metrics();
        if let Some(c) = &cached {
            let c = Arc::clone(c);
            registry.register_source("serving.cache.query_cache", move || {
                let s = c.cache().stats();
                Json::Obj(vec![
                    ("hits".into(), Json::uint(s.hits)),
                    ("misses".into(), Json::uint(s.misses)),
                    ("uncacheable".into(), Json::uint(s.uncacheable)),
                ])
            });
        }
        if let Some(r) = &replicated {
            let r = Arc::clone(r);
            registry.register_source("serving.replica.failover", move || {
                r.failover_stats().to_json()
            });
        }
        if !transports.is_empty() {
            let ts = transports.clone();
            registry.register_source("serving.transport.coordinator", move || {
                transport_summary(&ts.iter().map(|t| t.stats()).collect::<Vec<_>>()).to_json()
            });
        }
        {
            let ring = Arc::clone(&ring);
            registry.register_source("scenario.trace.ring", move || {
                Json::Obj(vec![
                    ("capacity".into(), Json::uint(ring.capacity() as u64)),
                    ("dropped".into(), Json::uint(ring.dropped())),
                ])
            });
        }
        {
            // Also published flat: `scenario_trace_dropped` is the one
            // number a scrape alert cares about (nonzero = lossy traces).
            let ring = Arc::clone(&ring);
            registry.register_source("scenario.trace.dropped", move || Json::uint(ring.dropped()));
        }
        if let Some((_, summary)) = &admission {
            let s = *summary;
            registry.register_source("serving.frontend.admission", move || s.to_json());
        }
        let push_predicates = self.topology.supports_predicates();
        let mut delete_rng = SmallRng::seed_from_u64(spec.delete_seed());
        let mut insert_cursor = 0usize;
        let mut inserts_applied = 0u64;
        let mut deletes_applied = 0u64;
        let mut query_counter = 0usize;
        // Pending segment: requests plus their event + sampled oracle ids.
        let mut pending: Vec<(SearchRequest, QueryEvent, Option<Vec<u64>>)> = Vec::new();
        let mut state = RunState {
            all_latencies: Vec::new(),
            tenant_indices: vec![Vec::new(); spec.tenants.max(1) as usize],
            wall_seconds: 0.0,
            recall_sum: 0.0,
            recall_samples: 0,
            profile: QueryProfile::new(),
            recall_obs: Vec::new(),
        };
        let fleet_generation = |replicated: &Option<Arc<ReplicatedIndex>>| {
            replicated.as_ref().map_or(0, |r| r.generation())
        };

        for event in events {
            match event {
                Event::Query(q) => {
                    let query = pool.get(q.pool_index).to_vec();
                    let mut req = SearchRequest::new(query.clone(), spec.k)
                        .ef(spec.ef)
                        .rerank(spec.rerank);
                    if let Some(label) = q.label {
                        req = req.label(label);
                    }
                    let filtered = q.filtered && push_predicates;
                    if filtered {
                        req = req.filter(|id| id % 2 == 0);
                    }
                    let trace_id = trace_id_for(spec.seed, query_counter as u64);
                    let ctx = TraceContext::new(Arc::clone(&ring), trace_id);
                    let outcome = admission.as_ref().map(|(o, _)| o[query_counter]);
                    if let Some(o) = outcome {
                        // Virtual queue time, one tick ≈ 1 ms (the span's
                        // duration is timing and stripped; its depth and
                        // presence are structural).
                        ctx.record_timed(
                            SpanKind::QueueWait { depth: o.depth },
                            o.wait_ticks * 1_000_000,
                        );
                    }
                    trace_ids.push(trace_id);
                    if outcome.is_some_and(|o| !o.admitted) {
                        // Answered `Overloaded` with retries exhausted —
                        // accounted, traced, never executed.
                        query_counter += 1;
                        continue;
                    }
                    req = req.trace(ctx);
                    let oracle = query_counter
                        .is_multiple_of(spec.oracle_every.max(1))
                        .then(|| oracle_top_k(&mirror, &query, spec.k, filtered));
                    query_counter += 1;
                    pending.push((req, q, oracle));
                }
                Event::Mutate { inserts, deletes } => {
                    self.flush(
                        &mut pending,
                        &serving,
                        &cached,
                        &corpus,
                        &replicated,
                        &mut state,
                    );
                    for _ in 0..inserts {
                        if insert_cursor >= insert_stream.len() {
                            break;
                        }
                        let v = insert_stream.get(insert_cursor);
                        insert_cursor += 1;
                        let id = corpus.insert(v);
                        debug_assert_eq!(id as usize, mirror.len());
                        mirror.push(Some(v.to_vec()));
                        inserts_applied += 1;
                    }
                    for _ in 0..deletes {
                        let id = delete_rng.gen_range(0..mirror.len() as u64);
                        if mirror[id as usize].is_some() {
                            corpus.delete(id);
                            mirror[id as usize] = None;
                            deletes_applied += 1;
                        }
                    }
                    if let Some(c) = &cached {
                        c.cache()
                            .set_generation(corpus.generation() + fleet_generation(&replicated));
                    }
                }
            }
        }
        self.flush(
            &mut pending,
            &serving,
            &cached,
            &corpus,
            &replicated,
            &mut state,
        );

        // --- fold the trace plane -------------------------------------
        let spans = ring.snapshot();
        let mut counts = [0u64; 9];
        let mut total_ns = [0u64; 9];
        let mut names = [""; 9];
        for s in &spans {
            let c = s.kind.code() as usize;
            counts[c] += 1;
            total_ns[c] += s.elapsed_ns;
            names[c] = s.kind.name();
        }
        let trace_summary = TraceSummary {
            traces: trace_ids.len() as u64,
            dropped: ring.dropped(),
            span_counts: (1..9)
                .filter(|&c| counts[c] > 0)
                .map(|c| (names[c].to_string(), counts[c]))
                .collect(),
            stage_ms: (1..9)
                .filter(|&c| counts[c] > 0)
                .map(|c| (names[c].to_string(), total_ns[c] as f64 / 1e6))
                .collect(),
        };
        let traces: Vec<Json> = collect_traces(&ring, &trace_ids);

        // --- SLO burn rates over virtual ticks --------------------------
        // Replay the run's outcomes through the burn-rate tracker on the
        // arrival-tick clock — the same count-driven evaluation the live
        // servers run on wall time, here a pure function of
        // `(spec, topology)` so the whole `slo` section is structural.
        let burn = BurnConfig::default();
        let mut tracker = SloTracker::new(
            burn,
            vec![
                // Fraction of requests answered `Overloaded` (admission
                // shed); without an admission policy every query is good.
                Objective::new("shed_fraction", 0.05),
                // Fraction of oracle-checked result slots missing the
                // exact answer.
                Objective::new("recall_deficit", 0.25),
            ],
        );
        let shed_idx = tracker.index_of("shed_fraction").unwrap();
        let recall_idx = tracker.index_of("recall_deficit").unwrap();
        let horizon = query_ticks
            .iter()
            .copied()
            .chain(state.recall_obs.iter().map(|&(t, _, _)| t))
            .max()
            .map_or(1, |t| t + 1);
        let mut shed_by_tick: Vec<(u64, u64)> = vec![(0, 0); horizon];
        for (i, &tick) in query_ticks.iter().enumerate() {
            let admitted = admission.as_ref().is_none_or(|(o, _)| o[i].admitted);
            if admitted {
                shed_by_tick[tick].0 += 1;
            } else {
                shed_by_tick[tick].1 += 1;
            }
        }
        let mut recall_by_tick: Vec<(u64, u64)> = vec![(0, 0); horizon];
        for &(tick, hit, miss) in &state.recall_obs {
            recall_by_tick[tick].0 += hit;
            recall_by_tick[tick].1 += miss;
        }
        for tick in 0..horizon {
            tracker.observe(shed_idx, shed_by_tick[tick].0, shed_by_tick[tick].1);
            tracker.observe(recall_idx, recall_by_tick[tick].0, recall_by_tick[tick].1);
            tracker.tick();
        }
        let slo = tracker.summary();
        {
            // Scrapes of a live scenario process see the latest run's SLO
            // verdict next to its counters.
            let snapshot = slo.clone();
            registry.register_source("scenario.slo", move || snapshot.to_json());
        }

        // --- report ----------------------------------------------------
        let queries = state.all_latencies.len() as u64;
        let synthetic = BatchReport {
            latencies_ms: state.all_latencies.clone(),
            ..BatchReport::default()
        };
        let tenants = (0..spec.tenants.max(1))
            .map(|t| TenantSummary {
                tenant: t,
                queries: state.tenant_indices[t as usize].len() as u64,
                latency: synthetic.latency_of(state.tenant_indices[t as usize].iter().copied()),
            })
            .collect();
        let mut config = spec.config_pairs();
        config.push(("threads".into(), Json::uint(threads as u64)));
        let report = BenchReport {
            scenario: self.name.clone(),
            seed: spec.seed,
            topology: self.topology.label(spec, self.cache_capacity),
            config,
            queries,
            wall_seconds: state.wall_seconds,
            qps: if state.wall_seconds > 0.0 {
                queries as f64 / state.wall_seconds
            } else {
                0.0
            },
            latency: synthetic.latency(),
            k: spec.k,
            recall_samples: state.recall_samples,
            recall_at_k: if state.recall_samples == 0 {
                1.0
            } else {
                state.recall_sum / state.recall_samples as f64
            },
            cache: cached.as_ref().map(|c| {
                let s = c.cache().stats();
                CacheSummary {
                    hits: s.hits,
                    misses: s.misses,
                    uncacheable: s.uncacheable,
                }
            }),
            failover: replicated.as_ref().map(|r| r.failover_stats()),
            transport: (!transports.is_empty()).then(|| {
                transport_summary(&transports.iter().map(|t| t.stats()).collect::<Vec<_>>())
            }),
            admission: admission.as_ref().map(|(_, s)| *s),
            profile: state.profile,
            slo: Some(slo),
            trace: Some(trace_summary),
            mutations: MutationSummary {
                inserts: inserts_applied,
                deletes: deletes_applied,
                generation: corpus.generation() + fleet_generation(&replicated),
            },
            tenants,
        };
        Ok((report, traces))
    }

    /// Runs the pending segment through a `BatchExecutor` and folds its
    /// latencies, per-tenant indices, and oracle checks into `state`.
    #[allow(clippy::type_complexity)]
    fn flush(
        &self,
        pending: &mut Vec<(SearchRequest, QueryEvent, Option<Vec<u64>>)>,
        serving: &Arc<dyn AnnIndex>,
        cached: &Option<Arc<CachedIndex>>,
        corpus: &Arc<ScenarioCorpus>,
        replicated: &Option<Arc<ReplicatedIndex>>,
        state: &mut RunState,
    ) {
        if pending.is_empty() {
            return;
        }
        if let Some(c) = cached {
            let fleet = replicated.as_ref().map_or(0, |r| r.generation());
            c.cache().set_generation(corpus.generation() + fleet);
        }
        let segment = std::mem::take(pending);
        let offset = state.all_latencies.len();
        let mut executor =
            BatchExecutor::new(Arc::clone(serving)).batch_size(self.spec.batch.max(1));
        executor.submit_all(segment.iter().map(|(req, _, _)| req.clone()));
        let report = executor.run();
        // The exact rerank pass runs inside the index internals; the
        // runner stamps its span (candidate-pool size) per traced query.
        if self.spec.rerank > 1 {
            for (req, _, _) in &segment {
                if let Some(trace) = &req.trace {
                    trace.record(SpanKind::Rerank {
                        pool: req.pool_k() as u64,
                    });
                }
            }
        }
        state.wall_seconds += report.qps.seconds;
        for (i, (_, q, oracle)) in segment.iter().enumerate() {
            state.tenant_indices[q.tenant as usize].push(offset + i);
            state.profile.add(&report.responses[i].profile);
            if let Some(oracle_ids) = oracle {
                let got = report.responses[i].ids();
                let hit = oracle_ids.iter().filter(|id| got.contains(id)).count() as u64;
                let denom = oracle_ids.len().max(1) as u64;
                state.recall_sum += hit as f64 / denom as f64;
                state.recall_samples += 1;
                state.recall_obs.push((q.tick, hit, denom - hit));
            }
        }
        state.all_latencies.extend(report.latencies_ms);
    }
}

/// One query's fate under the virtual-time admission policy.
#[derive(Debug, Clone, Copy, Default)]
struct AdmissionOutcome {
    /// Whether the request was ultimately executed (vs. answered
    /// `Overloaded` with its retries exhausted).
    admitted: bool,
    /// Queue depth observed when the request first arrived.
    depth: u64,
    /// Virtual ticks between the final arrival and the outcome.
    wait_ticks: u64,
}

/// Replays the admission policy of [`AdmissionSpec`] over the query
/// arrivals in virtual time: ticks are the clock, so the outcome of
/// every request — and all five summary counters — is a pure function
/// of `(policy, arrival ticks)`. This mirrors what the live
/// event-driven front-end does under wall-clock deadlines, in a form a
/// determinism check can diff.
fn simulate_admission(
    policy: &AdmissionSpec,
    query_ticks: &[usize],
) -> (Vec<AdmissionOutcome>, AdmissionSummary) {
    let mut outcomes = vec![AdmissionOutcome::default(); query_ticks.len()];
    let mut summary = AdmissionSummary {
        submitted: query_ticks.len() as u64,
        ..AdmissionSummary::default()
    };
    // arrivals[t] = requests (query index, attempt number) landing at t;
    // retries re-arrive one tick later.
    let horizon = query_ticks.iter().max().map_or(0, |t| t + 1);
    let mut arrivals: Vec<Vec<(usize, u32)>> = vec![Vec::new(); horizon + 1];
    for (idx, &tick) in query_ticks.iter().enumerate() {
        arrivals[tick].push((idx, 0));
    }
    let mut queue: std::collections::VecDeque<(usize, usize, u32)> =
        std::collections::VecDeque::new();
    let mut tick = 0usize;
    while tick < arrivals.len() || !queue.is_empty() {
        let mut shed_or_retry = Vec::new();
        if tick < arrivals.len() {
            for (idx, attempt) in std::mem::take(&mut arrivals[tick]) {
                if attempt == 0 {
                    outcomes[idx].depth = queue.len() as u64;
                }
                if queue.len() >= policy.max_queue {
                    shed_or_retry.push((idx, attempt)); // overflow at the door
                } else {
                    queue.push_back((idx, tick, attempt));
                }
            }
        }
        summary.max_depth = summary.max_depth.max(queue.len() as u64);
        // Deadline shed first (the live server checks at execute time),
        // then serve this tick's capacity. The queue is FIFO by arrival
        // tick, so expired entries are always at the front.
        while let Some(&(idx, arrived, attempt)) = queue.front() {
            if tick - arrived < policy.deadline_ticks {
                break;
            }
            queue.pop_front();
            outcomes[idx].wait_ticks = (tick - arrived) as u64;
            shed_or_retry.push((idx, attempt));
        }
        for _ in 0..policy.capacity_per_tick {
            let Some((idx, arrived, _)) = queue.pop_front() else {
                break;
            };
            outcomes[idx].admitted = true;
            outcomes[idx].wait_ticks = (tick - arrived) as u64;
            summary.admitted += 1;
        }
        for (idx, attempt) in shed_or_retry {
            if attempt < policy.retry_limit {
                summary.retried += 1;
                if arrivals.len() <= tick + 1 {
                    arrivals.resize(tick + 2, Vec::new());
                }
                arrivals[tick + 1].push((idx, attempt + 1));
            } else {
                outcomes[idx].admitted = false;
                summary.shed += 1;
            }
        }
        tick += 1;
    }
    debug_assert_eq!(
        summary.admitted + summary.shed,
        summary.submitted,
        "every request must end admitted or shed"
    );
    (outcomes, summary)
}

/// Exact top-`k` over the live mirror by `(dist, id)`, honoring the
/// even-id predicate when `filtered`.
fn oracle_top_k(mirror: &[Option<Vec<f32>>], query: &[f32], k: usize, filtered: bool) -> Vec<u64> {
    let mut scored: Vec<(f32, u64)> = mirror
        .iter()
        .enumerate()
        .filter_map(|(id, v)| {
            let v = v.as_ref()?;
            let id = id as u64;
            if filtered && !id.is_multiple_of(2) {
                return None;
            }
            Some((simdops::l2_sq(query, v), id))
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_respects_filter_and_tombstones() {
        let mirror: Vec<Option<Vec<f32>>> = (0..6)
            .map(|i| {
                if i == 2 {
                    None // deleted
                } else {
                    Some(vec![i as f32])
                }
            })
            .collect();
        let top = oracle_top_k(&mirror, &[0.0], 3, false);
        assert_eq!(top, vec![0, 1, 3]);
        let even = oracle_top_k(&mirror, &[0.0], 3, true);
        assert_eq!(even, vec![0, 4]); // 2 is deleted, odds filtered
    }

    #[test]
    fn admission_simulation_is_deterministic_and_total() {
        let policy = AdmissionSpec {
            capacity_per_tick: 2,
            max_queue: 3,
            deadline_ticks: 2,
            retry_limit: 1,
        };
        // Eight arrivals in tick 0 against capacity 2 and a 3-deep queue:
        // some admit, some retry, some shed — and all eight resolve.
        let ticks = [0usize; 8];
        let (outcomes, summary) = simulate_admission(&policy, &ticks);
        assert_eq!(summary.submitted, 8);
        assert_eq!(summary.admitted + summary.shed, 8, "none may hang");
        assert!(summary.shed > 0, "this burst must overwhelm the queue");
        assert!(summary.retried > 0, "overflow must trigger retries");
        assert!(summary.max_depth <= policy.max_queue as u64);
        assert_eq!(outcomes.len(), 8);
        assert_eq!(
            outcomes.iter().filter(|o| o.admitted).count() as u64,
            summary.admitted
        );
        // Pure function of (policy, ticks): replays match exactly.
        let (again, summary2) = simulate_admission(&policy, &ticks);
        assert_eq!(summary, summary2);
        for (a, b) in outcomes.iter().zip(&again) {
            assert_eq!(
                (a.admitted, a.depth, a.wait_ticks),
                (b.admitted, b.depth, b.wait_ticks)
            );
        }
        // An uncontended trickle admits everything with zero waits.
        let sparse: Vec<usize> = (0..5).map(|i| i * 10).collect();
        let (all_in, quiet) = simulate_admission(&policy, &sparse);
        assert_eq!(quiet.admitted, 5);
        assert_eq!(quiet.shed + quiet.retried, 0);
        assert!(all_in.iter().all(|o| o.admitted && o.wait_ticks == 0));
    }

    #[test]
    fn overload_scenario_counters_reproduce_across_runs() {
        let scenario = crate::named::by_name("overload", true).unwrap();
        let run = |seed| {
            let (report, _) = scenario.runner(seed).run_traced().unwrap();
            report
        };
        let a = run(7);
        let b = run(7);
        let sa = a.admission.expect("overload reports admission");
        assert_eq!(Some(sa), b.admission, "counters must reproduce per seed");
        assert!(sa.shed > 0, "the bursts must shed");
        assert!(sa.retried > 0, "sheds must retry before giving up");
        assert_eq!(
            sa.admitted + sa.shed,
            sa.submitted,
            "every request answered or answered Overloaded"
        );
        assert_eq!(a.queries, sa.admitted, "only admitted queries execute");
        // The queue_wait span is structural: one per submitted query.
        let t = a.trace.as_ref().expect("trace summary present");
        let queue_waits = t
            .span_counts
            .iter()
            .find(|(name, _)| name == "queue_wait")
            .map(|(_, n)| *n);
        assert_eq!(queue_waits, Some(sa.submitted));
        // Full strip_timings stability, not just the admission block.
        assert_eq!(
            metrics::strip_timings(&a.to_json()),
            metrics::strip_timings(&b.to_json())
        );
    }

    #[test]
    fn topology_labels_are_stable() {
        let spec = WorkloadSpec::base(1);
        assert_eq!(TopologySpec::Flat.label(&spec, 0), "flat");
        assert_eq!(
            TopologySpec::Sharded { shards: 4 }.label(&spec, 256),
            "sharded:4+cache:256"
        );
        assert_eq!(
            TopologySpec::Replicated {
                shards: 2,
                replicas: 2
            }
            .label(&spec, 0),
            "replicated:2x2:round-robin"
        );
        assert!(TopologySpec::Flat.supports_predicates());
        assert!(!TopologySpec::Remote {
            nodes: vec![],
            timeout_ms: 100
        }
        .supports_predicates());
    }
}
