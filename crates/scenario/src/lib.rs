//! Deterministic workload generation + scenario harness.
//!
//! This crate closes the loop between the workspace's serving stacks and
//! the paper's performance story: instead of one-off `search` benchmarks,
//! it replays *seeded, composable workloads* — Zipf-skewed query
//! popularity, diurnal/bursty arrival schedules, interleaved LSM
//! mutations, labeled and predicate-filtered queries, multi-tenant
//! streams, scripted fault storms — against any `AnnIndex`-shaped
//! topology, and emits a schema-stable `BENCH_<scenario>.json` so runs
//! can be diffed across commits (a perf trajectory, not a point sample).
//!
//! The pipeline, one module per stage:
//!
//! 1. [`spec`] — [`WorkloadSpec`] lowers to a deterministic [`Event`]
//!    stream: every random choice derives from the spec's seed through
//!    fixed sub-streams, so the same spec always yields the same bytes.
//! 2. [`corpus`] — [`ScenarioCorpus`] overlays the immutable serving
//!    topology with an LSM write path (inserts) and a tombstone set
//!    (deletes), keeping a generation counter for cache invalidation.
//! 3. [`runner`] — [`ScenarioRunner`] assembles topology → corpus →
//!    optional cache, replays the stream through `BatchExecutor`, checks
//!    sampled queries against a brute-force oracle, and folds counters
//!    into a `metrics::BenchReport`.
//! 4. [`named`] — the five-scenario catalog ([`SCENARIO_NAMES`]) with
//!    CI-sized smoke variants.
//!
//! Everything in the report except wall-clock timings (`qps`,
//! `wall_seconds`, `latency_ms`) is a pure function of
//! `(spec, topology)`; `metrics::strip_timings` removes exactly those
//! keys so two runs can be compared byte-for-byte.
//!
//! ```no_run
//! use scenario::by_name;
//!
//! let scenario = by_name("steady_zipf", true).unwrap();
//! let report = scenario.runner(42).run().unwrap();
//! println!("{}", report.to_pretty_string());
//! ```

pub mod corpus;
pub mod named;
pub mod runner;
pub mod spec;

pub use corpus::ScenarioCorpus;
pub use named::{all, by_name, Scenario, SCENARIO_NAMES};
pub use runner::{ScenarioRunner, TopologySpec};
pub use spec::{AdmissionSpec, ArrivalShape, Event, FaultStorm, QueryEvent, WorkloadSpec};
