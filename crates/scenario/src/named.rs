//! The named scenario catalog.
//!
//! Each preset binds a [`WorkloadSpec`] to the topology it is designed to
//! stress and the headline metric to read off its `BENCH_*.json`:
//!
//! | name            | stresses                                   | key metric            |
//! |-----------------|--------------------------------------------|-----------------------|
//! | `steady_zipf`   | sharded fan-out + `QueryCache` under a     | cache hit rate        |
//! |                 | Zipf-skewed popularity curve               |                       |
//! | `diurnal_burst` | batching/QPS through a raised-cosine day   | p99 / p999 latency    |
//! |                 | curve with trough-to-peak swings           |                       |
//! | `churn_lsm`     | LSM overlay merge + cache generation       | recall\@k under churn |
//! |                 | invalidation under insert/delete bursts    |                       |
//! | `fault_storm`   | replica failover: markdown, probing,       | recall parity +       |
//! |                 | recovery while replica 0 survives          | failover counters     |
//! | `overload`      | admission control under bursty arrivals:   | admitted/shed/retried |
//! |                 | virtual-time queueing, deadline shedding,  | counters              |
//! |                 | `Overloaded` retries                       |                       |
//!
//! Every preset has a `--smoke` variant: same shape and invariants,
//! shrunk an order of magnitude for CI.

use crate::runner::{ScenarioRunner, TopologySpec};
use crate::spec::{AdmissionSpec, ArrivalShape, FaultStorm, WorkloadSpec};
use vecstore::DatasetSpec;

/// Names every [`by_name`] accepts, in catalog order.
pub const SCENARIO_NAMES: [&str; 5] = [
    "steady_zipf",
    "diurnal_burst",
    "churn_lsm",
    "fault_storm",
    "overload",
];

/// A catalog entry: the workload plus its default stack.
pub struct Scenario {
    /// Catalog name (also the default `BENCH_<name>.json` stem).
    pub name: &'static str,
    /// What the scenario is designed to stress.
    pub stresses: &'static str,
    /// The headline metric to read off the report.
    pub key_metric: &'static str,
    /// The workload definition.
    pub spec: WorkloadSpec,
    /// Topology the scenario targets by default.
    pub default_topology: TopologySpec,
    /// Default `QueryCache` capacity (0 = no cache layer).
    pub default_cache: usize,
}

impl Scenario {
    /// A runner over the scenario's default stack with `seed` replacing
    /// the preset seed.
    pub fn runner(&self, seed: u64) -> ScenarioRunner {
        let mut spec = self.spec.clone();
        spec.seed = seed;
        ScenarioRunner::new(self.name, spec, self.default_topology.clone())
            .cache_capacity(self.default_cache)
    }
}

fn smoke_dataset() -> DatasetSpec {
    DatasetSpec::new(32, 16, 0.96, 0.5, 901)
}

fn steady_zipf(smoke: bool) -> Scenario {
    let mut spec = WorkloadSpec::base(0x51EAD);
    if smoke {
        spec.dataset = smoke_dataset();
        spec.base_n = 400;
        spec.query_pool = 64;
        spec.ticks = 10;
        spec.arrival = ArrivalShape::Steady { rate: 20.0 };
        spec.oracle_every = 8;
        spec.build_c = 32;
    } else {
        spec.base_n = 2_500;
        spec.ticks = 50;
        spec.arrival = ArrivalShape::Steady { rate: 40.0 };
    }
    Scenario {
        name: "steady_zipf",
        stresses: "sharded fan-out + QueryCache under Zipf-skewed popularity",
        key_metric: "cache hit rate",
        spec,
        default_topology: TopologySpec::Sharded { shards: 4 },
        default_cache: 256,
    }
}

fn diurnal_burst(smoke: bool) -> Scenario {
    let mut spec = WorkloadSpec::base(0xD1A1);
    spec.batch = 64;
    if smoke {
        spec.dataset = smoke_dataset();
        spec.base_n = 400;
        spec.query_pool = 64;
        spec.ticks = 12;
        spec.arrival = ArrivalShape::Diurnal {
            trough: 2.0,
            peak: 20.0,
            period: 6,
        };
        spec.oracle_every = 8;
        spec.build_c = 32;
    } else {
        spec.ticks = 72;
        spec.arrival = ArrivalShape::Diurnal {
            trough: 5.0,
            peak: 60.0,
            period: 24,
        };
    }
    Scenario {
        name: "diurnal_burst",
        stresses: "batch executor + QPS through trough-to-peak diurnal swings",
        key_metric: "p99/p999 latency",
        spec,
        default_topology: TopologySpec::Sharded { shards: 4 },
        default_cache: 0,
    }
}

fn churn_lsm(smoke: bool) -> Scenario {
    let mut spec = WorkloadSpec::base(0xC4A2);
    if smoke {
        spec.dataset = smoke_dataset();
        spec.base_n = 300;
        spec.query_pool = 64;
        spec.ticks = 12;
        spec.arrival = ArrivalShape::Steady { rate: 12.0 };
        spec.mutate_every = 4;
        spec.insert_burst = 10;
        spec.delete_burst = 5;
        spec.oracle_every = 8;
        spec.build_c = 32;
    } else {
        spec.ticks = 60;
        spec.arrival = ArrivalShape::Steady { rate: 25.0 };
        spec.mutate_every = 6;
        spec.insert_burst = 40;
        spec.delete_burst = 20;
        spec.oracle_every = 12;
    }
    Scenario {
        name: "churn_lsm",
        stresses: "LSM overlay merge + cache generation invalidation under churn",
        key_metric: "recall@k under churn",
        spec,
        default_topology: TopologySpec::Flat,
        default_cache: if smoke { 64 } else { 256 },
    }
}

fn fault_storm(smoke: bool) -> Scenario {
    let mut spec = WorkloadSpec::base(0xFA117);
    // batch = 1 serializes the stream: health transitions happen at exact
    // per-replica call counts, so failover counters are reproducible.
    spec.batch = 1;
    if smoke {
        spec.dataset = smoke_dataset();
        spec.base_n = 250;
        spec.query_pool = 64;
        spec.ticks = 10;
        spec.arrival = ArrivalShape::Steady { rate: 12.0 };
        spec.oracle_every = 8;
        spec.build_c = 32;
        spec.fault_storm = Some(FaultStorm {
            transient_at: 10,
            die_at: 30,
            revive_after: 4,
            stagger: 3,
        });
    } else {
        spec.base_n = 1_600;
        spec.ticks = 50;
        spec.arrival = ArrivalShape::Steady { rate: 20.0 };
        spec.fault_storm = Some(FaultStorm {
            transient_at: 40,
            die_at: 120,
            revive_after: 10,
            stagger: 7,
        });
    }
    Scenario {
        name: "fault_storm",
        stresses: "replica markdown, probing, and recovery with replica 0 surviving",
        key_metric: "recall parity + failover counters",
        spec,
        default_topology: TopologySpec::Replicated {
            shards: 2,
            replicas: 2,
        },
        default_cache: 0,
    }
}

fn overload(smoke: bool) -> Scenario {
    let mut spec = WorkloadSpec::base(0x0E71);
    if smoke {
        spec.dataset = smoke_dataset();
        spec.base_n = 300;
        spec.query_pool = 64;
        spec.ticks = 12;
        // Bursts arrive at ~6x the admission capacity; the trough drains.
        spec.arrival = ArrivalShape::Bursty {
            base: 4.0,
            burst: 60.0,
            every: 6,
            width: 2,
        };
        spec.oracle_every = 16;
        spec.build_c = 32;
        spec.admission = Some(AdmissionSpec {
            capacity_per_tick: 10,
            max_queue: 24,
            deadline_ticks: 3,
            retry_limit: 1,
        });
    } else {
        spec.base_n = 1_500;
        spec.ticks = 48;
        spec.arrival = ArrivalShape::Bursty {
            base: 10.0,
            burst: 160.0,
            every: 12,
            width: 3,
        };
        spec.admission = Some(AdmissionSpec {
            capacity_per_tick: 25,
            max_queue: 64,
            deadline_ticks: 4,
            retry_limit: 2,
        });
    }
    Scenario {
        name: "overload",
        stresses: "admission control: bursty queueing, deadline shedding, Overloaded retries",
        key_metric: "admitted/shed/retried counters",
        spec,
        default_topology: TopologySpec::Sharded { shards: 2 },
        default_cache: 0,
    }
}

/// Looks up a catalog scenario; `smoke` selects the CI-sized variant.
pub fn by_name(name: &str, smoke: bool) -> Result<Scenario, String> {
    match name {
        "steady_zipf" => Ok(steady_zipf(smoke)),
        "diurnal_burst" => Ok(diurnal_burst(smoke)),
        "churn_lsm" => Ok(churn_lsm(smoke)),
        "fault_storm" => Ok(fault_storm(smoke)),
        "overload" => Ok(overload(smoke)),
        other => Err(format!(
            "unknown scenario '{other}' (expected one of: {})",
            SCENARIO_NAMES.join(", ")
        )),
    }
}

/// The whole catalog, in [`SCENARIO_NAMES`] order.
pub fn all(smoke: bool) -> Vec<Scenario> {
    SCENARIO_NAMES
        .iter()
        .map(|n| by_name(n, smoke).expect("catalog names resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_resolves_every_name_and_rejects_unknowns() {
        for name in SCENARIO_NAMES {
            let full = by_name(name, false).unwrap();
            let smoke = by_name(name, true).unwrap();
            assert_eq!(full.name, name);
            assert_eq!(smoke.name, name);
            assert!(
                smoke.spec.base_n < full.spec.base_n,
                "{name}: smoke must shrink the corpus"
            );
        }
        assert!(by_name("nope", false).is_err());
        assert_eq!(all(true).len(), SCENARIO_NAMES.len());
    }

    #[test]
    fn fault_storm_keeps_deterministic_knobs() {
        for smoke in [false, true] {
            let s = by_name("fault_storm", smoke).unwrap();
            assert_eq!(s.spec.batch, 1, "storm counters need a serialized stream");
            let storm = s.spec.fault_storm.expect("storm scripted");
            assert!(
                storm.revive_after > 0,
                "victims must revive for recovery counters"
            );
            assert!(matches!(
                s.default_topology,
                TopologySpec::Replicated {
                    shards: 2,
                    replicas: 2
                }
            ));
        }
    }

    #[test]
    fn overload_saturates_its_admission_capacity() {
        for smoke in [false, true] {
            let s = by_name("overload", smoke).unwrap();
            let policy = s.spec.admission.expect("overload scripts admission");
            assert!(policy.capacity_per_tick > 0);
            assert!(policy.deadline_ticks > 0);
            let ArrivalShape::Bursty { burst, .. } = s.spec.arrival else {
                panic!("overload must be bursty");
            };
            assert!(
                burst > 2.0 * policy.capacity_per_tick as f64,
                "bursts must overwhelm the service rate or nothing sheds"
            );
        }
    }

    #[test]
    fn churn_lsm_actually_churns() {
        for smoke in [false, true] {
            let s = by_name("churn_lsm", smoke).unwrap();
            assert!(s.spec.mutate_every > 0);
            assert!(s.spec.insert_burst > 0);
            assert!(s.spec.delete_burst > 0);
            assert!(
                s.default_cache > 0,
                "churn scenario must exercise the cache"
            );
            assert!(s.spec.total_inserts() > 0);
        }
    }
}
