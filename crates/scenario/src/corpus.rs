//! A mutable corpus view over an immutable serving topology.
//!
//! The serving stacks under test (sharded, replicated, remote) are built
//! once over the base corpus and never change. Realistic traffic mutates,
//! though — so [`ScenarioCorpus`] overlays the static core with the
//! workspace's own LSM index, exactly the way a production deployment
//! fronts immutable segment servers with a write path:
//!
//! * **inserts** land in an [`LsmVectorIndex`] overlay (global ids
//!   `base_n..`), searched alongside the core and merged by exact
//!   `(dist, id)` order;
//! * **deletes** of core ids go into a tombstone set; core searches are
//!   widened by the tombstone count and filtered on gather, so deleted
//!   vectors can never resurface (overlay ids delete natively);
//! * [`ScenarioCorpus::generation`] combines the overlay's generation
//!   with a core-tombstone counter — the invalidation signal a
//!   `QueryCache` layered above must sync after every mutation burst.
//!
//! When nothing has mutated yet, search batches pass straight through to
//! the core (`search_batch_timed` fan-out included), so immutable
//! scenarios measure the underlying topology, not the wrapper.

use engine::{AnnIndex, Hit, SearchRequest, SearchResponse};
use maintenance::{LsmConfig, LsmVectorIndex};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// The static core plus its mutation overlay. See module docs.
pub struct ScenarioCorpus {
    core: Arc<dyn AnnIndex>,
    base_n: usize,
    dim: usize,
    overlay: RwLock<LsmVectorIndex>,
    /// Tombstoned core ids (`< base_n`).
    deleted: RwLock<HashSet<u64>>,
    /// Count of core tombstones ever created (generation component).
    core_deletes: AtomicU64,
}

impl ScenarioCorpus {
    /// Wraps `core`; `base_n` is its (fixed) vector count.
    pub fn new(core: Arc<dyn AnnIndex>) -> Self {
        let base_n = core.len();
        let dim = core.dim();
        Self {
            core,
            base_n,
            dim,
            overlay: RwLock::new(LsmVectorIndex::new(LsmConfig::for_dim(dim))),
            deleted: RwLock::new(HashSet::new()),
            core_deletes: AtomicU64::new(0),
        }
    }

    /// The wrapped serving core.
    pub fn core(&self) -> &Arc<dyn AnnIndex> {
        &self.core
    }

    /// Base-corpus size (ids `0..base_n` address the core).
    pub fn base_n(&self) -> usize {
        self.base_n
    }

    /// Inserts a vector, returning its global id (`base_n + overlay id`).
    pub fn insert(&self, v: &[f32]) -> u64 {
        let mut overlay = self.overlay.write().unwrap();
        self.base_n as u64 + overlay.insert(v)
    }

    /// Deletes a vector by global id; `false` if it was never live or is
    /// already gone.
    pub fn delete(&self, id: u64) -> bool {
        if id < self.base_n as u64 {
            let inserted = self.deleted.write().unwrap().insert(id);
            if inserted {
                self.core_deletes.fetch_add(1, Ordering::Release);
            }
            inserted
        } else {
            self.overlay
                .write()
                .unwrap()
                .delete(id - self.base_n as u64)
        }
    }

    /// Whether `id` is currently served.
    pub fn is_live(&self, id: u64) -> bool {
        if id < self.base_n as u64 {
            !self.deleted.read().unwrap().contains(&id)
        } else {
            self.overlay
                .read()
                .unwrap()
                .contains(id - self.base_n as u64)
        }
    }

    /// Mutation generation: overlay generation plus core tombstones.
    /// Monotonic; sync it into a `QueryCache` after every mutation burst.
    pub fn generation(&self) -> u64 {
        self.overlay.read().unwrap().generation() + self.core_deletes.load(Ordering::Acquire)
    }

    /// `(inserted, live_overlay, core_tombstones)` counters for reports.
    pub fn mutation_counts(&self) -> (u64, u64, u64) {
        let overlay = self.overlay.read().unwrap();
        let stats = overlay.stats();
        (
            overlay.next_id(),
            stats.live as u64,
            self.core_deletes.load(Ordering::Acquire),
        )
    }

    /// Whether any mutation has ever been applied (fast-path gate: a
    /// flushed-then-empty overlay still forces the merge path, which is
    /// fine — the gate only needs to be monotone).
    fn pristine(&self) -> bool {
        self.core_deletes.load(Ordering::Acquire) == 0
            && self.overlay.read().unwrap().next_id() == 0
    }

    /// The merge path: widened core search, tombstone filter, overlay
    /// merge, truncate to `k`.
    fn search_merged(&self, req: &SearchRequest) -> SearchResponse {
        let deleted = self.deleted.read().unwrap();
        let overlay = self.overlay.read().unwrap();

        // Widen the core request so tombstone filtering cannot under-fill
        // the pool, then let the core handle its own options (including
        // pushing a predicate filter down to shards).
        let mut core_req = req.clone();
        core_req.k = (req.k + deleted.len()).min(self.base_n.max(1));
        core_req.ef = req.ef.max(core_req.k);
        let core_resp = self.core.search(&core_req);
        let mut hits: Vec<Hit> = core_resp
            .hits
            .into_iter()
            .filter(|h| !deleted.contains(&h.id))
            .collect();

        // Overlay hits: exact distances over the write path, ids offset
        // into the global space, with the request's predicate applied to
        // the *global* id (the overlay itself only knows local ids).
        let pool = req.pool_k().max(req.ef).max(req.k);
        let overlay_hits = LsmVectorIndex::search(&overlay, &req.query, pool, req.ef.max(pool));
        for mut h in overlay_hits {
            h.id += self.base_n as u64;
            if req.filter.as_ref().is_none_or(|f| f(h.id)) {
                hits.push(h);
            }
        }

        hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        hits.truncate(req.k);
        let mut response = SearchResponse::from_hits(hits);
        response.stats = core_resp.stats;
        response
    }
}

impl AnnIndex for ScenarioCorpus {
    fn len(&self) -> usize {
        let tombstones = self.deleted.read().unwrap().len();
        let overlay_live = self.overlay.read().unwrap().stats().live;
        self.base_n - tombstones + overlay_live
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, req: &SearchRequest) -> SearchResponse {
        if self.pristine() {
            return self.core.search(req);
        }
        self.search_merged(req)
    }

    fn search_batch(&self, requests: &[SearchRequest]) -> Vec<SearchResponse> {
        if self.pristine() {
            return self.core.search_batch(requests);
        }
        requests.iter().map(|r| self.search_merged(r)).collect()
    }

    fn search_batch_timed(&self, requests: &[SearchRequest]) -> Vec<(SearchResponse, Duration)> {
        if self.pristine() {
            // Pass the whole batch through so a sharded core keeps its
            // concurrent fan-out and per-query critical-path timing.
            return self.core.search_batch_timed(requests);
        }
        requests
            .iter()
            .map(|r| {
                let t0 = std::time::Instant::now();
                let response = self.search_merged(r);
                (response, t0.elapsed())
            })
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.core.memory_bytes() + self.overlay.read().unwrap().bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::FlatIndex;
    use vecstore::VectorSet;

    fn corpus(n: usize) -> (ScenarioCorpus, VectorSet) {
        let mut set = VectorSet::new(4);
        for i in 0..n {
            set.push(&[i as f32, 0.0, 0.0, 0.0]);
        }
        let core: Arc<dyn AnnIndex> = Arc::new(FlatIndex::new(set.clone()));
        (ScenarioCorpus::new(core), set)
    }

    #[test]
    fn pristine_corpus_is_a_passthrough() {
        let (corpus, set) = corpus(20);
        let req = SearchRequest::new(set.get(3).to_vec(), 5);
        let direct = corpus.core().search(&req);
        let via = corpus.search(&req);
        assert_eq!(direct.ids(), via.ids());
        assert_eq!(corpus.len(), 20);
        assert_eq!(corpus.generation(), 0);
    }

    #[test]
    fn deleted_core_ids_never_resurface() {
        let (corpus, _) = corpus(20);
        assert!(corpus.delete(3));
        assert!(!corpus.delete(3), "double delete reports false");
        let req = SearchRequest::new(vec![3.0, 0.0, 0.0, 0.0], 5);
        let resp = corpus.search(&req);
        assert!(!resp.ids().contains(&3));
        assert_eq!(resp.hits.len(), 5, "widened pool backfills the gap");
        assert_eq!(corpus.len(), 19);
        assert!(corpus.generation() > 0);
        assert!(!corpus.is_live(3));
    }

    #[test]
    fn inserts_merge_by_exact_distance() {
        let (corpus, _) = corpus(10);
        // A vector closer to the query than any core vector.
        let id = corpus.insert(&[100.25, 0.0, 0.0, 0.0]);
        assert_eq!(id, 10);
        assert!(corpus.is_live(id));
        let resp = corpus.search(&SearchRequest::new(vec![100.0, 0.0, 0.0, 0.0], 3));
        assert_eq!(resp.hits[0].id, 10, "overlay hit must win the merge");
        assert_eq!(corpus.len(), 11);
        // Deleting the overlay vector removes it again.
        assert!(corpus.delete(10));
        let resp = corpus.search(&SearchRequest::new(vec![100.0, 0.0, 0.0, 0.0], 3));
        assert!(!resp.ids().contains(&10));
    }

    #[test]
    fn predicate_filters_apply_to_overlay_ids() {
        let (corpus, _) = corpus(10);
        let odd = corpus.insert(&[50.5, 0.0, 0.0, 0.0]); // id 10 (even)
        let _ = corpus.insert(&[50.25, 0.0, 0.0, 0.0]); // id 11 (odd)
        assert_eq!(odd, 10);
        let req = SearchRequest::new(vec![50.0, 0.0, 0.0, 0.0], 4).filter(|id| id % 2 == 0);
        let ids = corpus.search(&req).ids();
        assert!(ids.contains(&10));
        assert!(!ids.contains(&11), "filter must see global overlay ids");
    }

    #[test]
    fn generation_moves_with_every_mutation_kind() {
        let (corpus, _) = corpus(10);
        let g0 = corpus.generation();
        corpus.insert(&[1.0, 2.0, 3.0, 4.0]);
        let g1 = corpus.generation();
        assert!(g1 > g0);
        corpus.delete(0);
        let g2 = corpus.generation();
        assert!(g2 > g1);
    }
}
