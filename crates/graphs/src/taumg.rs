//! τ-MG — the τ-monotonic graph (Peng et al., reproduced for the paper's
//! Figure 14 generality experiment).
//!
//! τ-MG relaxes the MRNG pruning rule with a slack term so that, for any
//! query within τ of a database vector, a monotonic search path to it
//! exists. Construction therefore keeps *more* edges than NSG: a candidate
//! is pruned only if a selected neighbor is closer to it by a 3τ margin.
//! Like NSG, the whole pipeline runs on [`DistanceProvider`] distances, so
//! Flash plugs in unchanged.

use crate::flat_build::{build_flat, search_flat, FlatParams, TauRule};
use crate::graph::FlatGraph;
use crate::provider::DistanceProvider;
use crate::Hit;

/// τ-MG construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct TauMgParams {
    /// Shared CA/NS parameters.
    pub flat: FlatParams,
    /// Monotonicity slack τ (in distance units, not squared).
    pub tau: f32,
}

impl Default for TauMgParams {
    fn default() -> Self {
        Self {
            flat: FlatParams::default(),
            tau: 0.1,
        }
    }
}

/// A built τ-MG index.
pub struct TauMg<P: DistanceProvider> {
    provider: P,
    graph: FlatGraph,
    params: TauMgParams,
}

impl<P: DistanceProvider> TauMg<P> {
    /// Builds the index with the τ-relaxed pruning rule.
    pub fn build(provider: P, params: TauMgParams) -> Self {
        let rule = TauRule { tau: params.tau };
        let (graph, provider) = build_flat(provider, params.flat, &rule);
        Self {
            provider,
            graph,
            params,
        }
    }

    /// The navigating graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }

    /// The distance provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Construction parameters.
    pub fn params(&self) -> &TauMgParams {
        &self.params
    }

    /// k-NN search from the medoid.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        search_flat(&self.provider, &self.graph, query, k, ef)
    }

    /// Index size: adjacency + provider auxiliary bytes.
    pub fn index_bytes(&self) -> usize {
        self.graph.adjacency_bytes() + self.provider.aux_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsg::{Nsg, NsgParams};
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    #[test]
    fn taumg_finds_nearest_on_grid() {
        let index = TauMg::build(
            FullPrecision::new(grid(10)),
            TauMgParams {
                flat: FlatParams {
                    r: 8,
                    c: 32,
                    seed: 3,
                },
                tau: 0.2,
            },
        );
        let hits = index.search(&[7.2, 2.9], 1, 32);
        assert_eq!(hits[0].id, 73);
    }

    #[test]
    fn taumg_connected() {
        let index = TauMg::build(
            FullPrecision::new(grid(9)),
            TauMgParams {
                flat: FlatParams {
                    r: 8,
                    c: 24,
                    seed: 5,
                },
                tau: 0.2,
            },
        );
        assert_eq!(index.graph().reachable_from_entry(), 81);
    }

    #[test]
    fn tau_slack_yields_denser_graph_than_nsg() {
        let base = grid(10);
        let nsg = Nsg::build(
            FullPrecision::new(base.clone()),
            NsgParams {
                r: 8,
                c: 32,
                seed: 11,
            },
        );
        let taumg = TauMg::build(
            FullPrecision::new(base),
            TauMgParams {
                flat: FlatParams {
                    r: 8,
                    c: 32,
                    seed: 11,
                },
                tau: 0.5,
            },
        );
        assert!(
            taumg.graph().edges() >= nsg.graph().edges(),
            "τ-MG {} edges vs NSG {}",
            taumg.graph().edges(),
            nsg.graph().edges()
        );
    }
}
