//! KGraph — approximate K-nearest-neighbor graphs via NN-descent
//! (Dong, Charikar & Li, WWW 2011; the paradigm behind the paper's KGraph
//! and NGT citations).
//!
//! NN-descent refines random initial neighbor lists by the *local join*:
//! any two vertices sharing a neighbor are likely neighbors themselves, so
//! each round compares neighbors-of-neighbors and keeps improvements. All
//! distances route through [`DistanceProvider`], so the builder benefits
//! from compact codes exactly like the other graph algorithms — and a
//! KNN graph is the classical substrate NSG-style builders start from.

use crate::provider::DistanceProvider;
use crate::OrdF32;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters of the NN-descent construction.
#[derive(Debug, Clone, Copy)]
pub struct KGraphParams {
    /// Neighbors per vertex (`K`).
    pub k: usize,
    /// Maximum NN-descent rounds.
    pub iters: usize,
    /// Per-round sample of candidates considered per vertex; bounds the
    /// local-join cost (ρ·K in the original paper's notation).
    pub sample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KGraphParams {
    fn default() -> Self {
        Self {
            k: 16,
            iters: 8,
            sample: 24,
            seed: 0x6E0,
        }
    }
}

/// An approximate KNN graph: `neighbors[v]` holds up to `K` (distance, id)
/// pairs sorted ascending.
pub struct KGraph {
    /// Sorted neighbor lists.
    pub neighbors: Vec<Vec<(f32, u32)>>,
    /// Rounds actually run.
    pub rounds: usize,
}

impl KGraph {
    /// Builds the KNN graph with NN-descent over the provider's distances.
    pub fn build<P: DistanceProvider>(provider: &P, params: KGraphParams) -> Self {
        let n = provider.len();
        let k = params.k.min(n.saturating_sub(1));
        if n == 0 || k == 0 {
            return Self {
                neighbors: vec![Vec::new(); n],
                rounds: 0,
            };
        }

        // Random initialization.
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut neighbors: Vec<Vec<(f32, u32)>> = (0..n as u32)
            .map(|v| {
                let mut list = Vec::with_capacity(k);
                let mut seen = vec![v];
                while list.len() < k {
                    let cand = rng.gen_range(0..n) as u32;
                    if seen.contains(&cand) {
                        continue;
                    }
                    seen.push(cand);
                    list.push((provider.dist_between(v, cand), cand));
                }
                list.sort_by(|a, b| a.0.total_cmp(&b.0));
                list
            })
            .collect();

        let mut rounds = 0;
        for iter in 0..params.iters {
            rounds = iter + 1;
            // Reverse lists: who points at v.
            let mut reverse: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (v, list) in neighbors.iter().enumerate() {
                for &(_, u) in list {
                    reverse[u as usize].push(v as u32);
                }
            }

            // Local join: for each vertex, gather forward + reverse
            // neighbors (bounded sample) and propose cross pairs.
            let seed = params.seed.wrapping_add(iter as u64);
            let proposals: Vec<Vec<(u32, u32)>> = (0..n)
                .into_par_iter()
                .map(|v| {
                    let mut local: Vec<u32> = neighbors[v].iter().map(|&(_, u)| u).collect();
                    local.extend(reverse[v].iter().copied());
                    local.sort_unstable();
                    local.dedup();
                    if local.len() > params.sample {
                        // Deterministic subsample.
                        let mut lrng = SmallRng::seed_from_u64(seed.wrapping_add(v as u64));
                        for i in (1..local.len()).rev() {
                            local.swap(i, lrng.gen_range(0..=i));
                        }
                        local.truncate(params.sample);
                    }
                    let mut out = Vec::new();
                    for (i, &a) in local.iter().enumerate() {
                        for &b in local.iter().skip(i + 1) {
                            if a != b {
                                out.push((a, b));
                            }
                        }
                    }
                    out
                })
                .collect();

            // Apply improvements serially (lists are small; the join above
            // carried the parallel distance work via dist_between below —
            // evaluate distances in parallel first).
            let scored: Vec<(u32, u32, f32)> = proposals
                .par_iter()
                .flat_map_iter(|pairs| pairs.iter().copied())
                .map(|(a, b)| (a, b, provider.dist_between(a, b)))
                .collect();

            let mut updates = 0usize;
            for (a, b, d) in scored {
                updates += usize::from(try_insert(&mut neighbors[a as usize], k, d, b));
                updates += usize::from(try_insert(&mut neighbors[b as usize], k, d, a));
            }
            if updates == 0 {
                break;
            }
        }

        Self { neighbors, rounds }
    }

    /// Exact-KNN agreement of the lists against brute force, averaged over
    /// a sample of vertices (graph-quality diagnostic).
    pub fn knn_recall<P: DistanceProvider>(&self, provider: &P, sample: usize) -> f64 {
        let n = provider.len();
        if n < 2 {
            return 1.0;
        }
        let step = (n / sample.max(1)).max(1);
        let mut hit = 0usize;
        let mut total = 0usize;
        for v in (0..n).step_by(step) {
            let k = self.neighbors[v].len();
            if k == 0 {
                continue;
            }
            let mut exact: Vec<(OrdF32, u32)> = (0..n as u32)
                .filter(|&u| u != v as u32)
                .map(|u| (OrdF32(provider.dist_between(v as u32, u)), u))
                .collect();
            exact.sort();
            let truth: Vec<u32> = exact[..k].iter().map(|&(_, u)| u).collect();
            for &(_, u) in &self.neighbors[v] {
                total += 1;
                if truth.contains(&u) {
                    hit += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        }
    }
}

/// Inserts `(d, id)` into a sorted bounded list; returns true if inserted.
fn try_insert(list: &mut Vec<(f32, u32)>, k: usize, d: f32, id: u32) -> bool {
    if list.iter().any(|&(_, u)| u == id) {
        return false;
    }
    if list.len() >= k && d >= list[list.len() - 1].0 {
        return false;
    }
    let pos = list.partition_point(|&(ld, _)| ld < d);
    list.insert(pos, (d, id));
    if list.len() > k {
        list.pop();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    #[test]
    fn nn_descent_converges_on_grid() {
        let provider = FullPrecision::new(grid(12));
        let g = KGraph::build(
            &provider,
            KGraphParams {
                k: 8,
                iters: 10,
                sample: 24,
                seed: 3,
            },
        );
        let recall = g.knn_recall(&provider, 30);
        assert!(recall > 0.9, "KNN recall {recall}");
    }

    #[test]
    fn lists_are_sorted_and_unique() {
        let provider = FullPrecision::new(grid(8));
        let g = KGraph::build(
            &provider,
            KGraphParams {
                k: 6,
                iters: 5,
                sample: 16,
                seed: 5,
            },
        );
        for (v, list) in g.neighbors.iter().enumerate() {
            assert_eq!(list.len(), 6);
            for w in list.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
            let mut ids: Vec<u32> = list.iter().map(|&(_, u)| u).collect();
            assert!(!ids.contains(&(v as u32)), "self loop at {v}");
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 6, "duplicates at {v}");
        }
    }

    #[test]
    fn better_than_random_after_one_round() {
        let provider = FullPrecision::new(grid(10));
        let random = KGraph::build(
            &provider,
            KGraphParams {
                k: 8,
                iters: 0,
                sample: 0,
                seed: 7,
            },
        );
        let refined = KGraph::build(
            &provider,
            KGraphParams {
                k: 8,
                iters: 2,
                sample: 24,
                seed: 7,
            },
        );
        assert!(refined.knn_recall(&provider, 25) > random.knn_recall(&provider, 25));
    }

    #[test]
    fn tiny_inputs_are_safe() {
        let mut s = VectorSet::new(2);
        s.push(&[0.0, 0.0]);
        let provider = FullPrecision::new(s);
        let g = KGraph::build(&provider, KGraphParams::default());
        assert_eq!(g.neighbors.len(), 1);
        assert!(g.neighbors[0].is_empty());
    }

    #[test]
    fn try_insert_respects_bound_and_order() {
        let mut list = vec![(1.0, 1), (2.0, 2)];
        assert!(try_insert(&mut list, 2, 1.5, 3));
        assert_eq!(list, vec![(1.0, 1), (1.5, 3)]);
        assert!(
            !try_insert(&mut list, 2, 9.0, 4),
            "worse than tail must be rejected"
        );
        assert!(
            !try_insert(&mut list, 2, 0.5, 1),
            "duplicate id must be rejected"
        );
    }
}
