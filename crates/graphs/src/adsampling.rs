//! ADSampling search (Gao & Long 2023), reproduced for the paper's
//! Figure 13 generality experiment.
//!
//! ADSampling rotates the space by a random orthogonal matrix and evaluates
//! distances *progressively*: after the first `d` coordinates the partial
//! squared distance is an unbiased `d/D` fraction of the total, so a
//! candidate provably worse than the current threshold can be abandoned
//! early with a hypothesis test. The construction path of the index is the
//! standard one — which is exactly why Flash composes with it.
//!
//! Implementation notes vs. the original: rotation is applied in blocks of
//! ≤ 64 dimensions (orthogonal per block, distance-preserving, O(64·D) per
//! vector instead of O(D²)); the test uses the original paper's
//! `(1 + ε₀/√d)²` inflation factor at fixed checkpoints.

use crate::graph::GraphLayers;
use crate::scratch::with_scratch;
use crate::Hit;
use crate::OrdF32;
use linalg::random_orthogonal;
use std::cmp::Reverse;
use vecstore::VectorSet;

/// A searcher holding block-rotated vectors and the abandon test settings.
pub struct AdSampler {
    rotated: VectorSet,
    block: usize,
    rotation: linalg::Matrix,
    /// Confidence inflation ε₀ (the original paper suggests ~2.1).
    pub epsilon0: f32,
    /// Dimensions evaluated between hypothesis tests.
    pub delta_d: usize,
}

/// Counters describing how much work the progressive evaluation skipped.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdStats {
    /// Distance evaluations started.
    pub evals: u64,
    /// Evaluations abandoned before the last dimension.
    pub abandoned: u64,
}

impl AdSampler {
    /// Rotates `base` and prepares the searcher.
    pub fn new(base: &VectorSet, epsilon0: f32, delta_d: usize, seed: u64) -> Self {
        let d = base.dim();
        let block = d.min(64);
        let rotation = random_orthogonal(block, seed);
        let mut rotated = VectorSet::with_capacity(d, base.len());
        let mut buf = vec![0.0f32; d];
        for v in base.iter() {
            rotate_into(&rotation, block, v, &mut buf);
            rotated.push(&buf);
        }
        Self {
            rotated,
            block,
            rotation,
            epsilon0,
            delta_d: delta_d.max(8),
        }
    }

    /// Rotates a query into the sampler's basis.
    pub fn rotate_query(&self, q: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; q.len()];
        rotate_into(&self.rotation, self.block, q, &mut out);
        out
    }

    /// Progressive distance with early abandon: returns `None` when the
    /// hypothesis test concludes the true distance exceeds `threshold`.
    pub fn dist_or_abandon(&self, q_rot: &[f32], id: u32, threshold: f32) -> Option<f32> {
        let v = self.rotated.get(id as usize);
        let d_total = v.len();
        let mut partial = 0.0f32;
        let mut d_seen = 0usize;
        while d_seen < d_total {
            let step = self.delta_d.min(d_total - d_seen);
            partial += simdops::l2_sq(&q_rot[d_seen..d_seen + step], &v[d_seen..d_seen + step]);
            d_seen += step;
            if d_seen < d_total && threshold.is_finite() {
                // Abandon if the scaled partial already clears the inflated
                // threshold: partial > thr * (d/D) * (1 + ε0/√d)².
                let ratio = d_seen as f32 / d_total as f32;
                let infl = 1.0 + self.epsilon0 / (d_seen as f32).sqrt();
                if partial > threshold * ratio * infl * infl {
                    return None;
                }
            }
        }
        Some(partial)
    }

    /// HNSW-style search over a frozen graph with progressive distances.
    /// Returns the hits and the abandon statistics.
    pub fn search(
        &self,
        graph: &GraphLayers,
        query: &[f32],
        k: usize,
        ef: usize,
    ) -> (Vec<Hit>, AdStats) {
        let mut stats = AdStats::default();
        if graph.is_empty() {
            return (Vec::new(), stats);
        }
        let ef = ef.max(k);
        let q_rot = self.rotate_query(query);

        // Greedy descent through upper layers with full distances (cheap:
        // few hops) — abandonment only pays off in the base-layer beam.
        let mut profile = metrics::QueryProfile::new();
        let mut cur = graph.entry;
        let mut cur_d = simdops::l2_sq(&q_rot, self.rotated.get(cur as usize));
        profile.dist_exact += 1;
        for layer in (1..=graph.max_layer).rev() {
            loop {
                let mut improved = false;
                profile.hops_upper += 1;
                for &nb in graph.neighbors(layer, cur) {
                    let d = simdops::l2_sq(&q_rot, self.rotated.get(nb as usize));
                    stats.evals += 1;
                    profile.dist_exact += 1;
                    if d < cur_d {
                        cur = nb;
                        cur_d = d;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        crate::scratch::profile_record(profile);

        // Base-layer beam with early abandon. Per-query state is pooled;
        // the progressive evaluation itself cannot be block-batched (each
        // neighbor's threshold depends on the admissions before it), so
        // only the visited set and heaps change — the loop is untouched.
        with_scratch::<(), _>(|scratch| {
            scratch.visited.begin(graph.len());
            scratch.visited.check_and_mark(cur);
            scratch.profile.visited_inserts += 1;
            let mut top = scratch.take_results();
            let mut frontier = scratch.take_frontier();
            top.push((OrdF32(cur_d), cur));
            frontier.push((Reverse(OrdF32(cur_d)), cur));

            while let Some((Reverse(OrdF32(d)), u)) = frontier.pop() {
                let worst = top.peek().map(|&(OrdF32(w), _)| w).unwrap_or(f32::INFINITY);
                if d > worst && top.len() >= ef {
                    break;
                }
                if let Some(&(Reverse(_), next)) = frontier.peek() {
                    simdops::prefetch_slice(self.rotated.get(next as usize));
                }
                scratch.profile.hops_base += 1;
                for &nb in graph.neighbors(0, u) {
                    if scratch.visited.check_and_mark(nb) {
                        continue;
                    }
                    scratch.profile.visited_inserts += 1;
                    scratch.profile.dist_exact += 1;
                    let threshold = if top.len() >= ef {
                        top.peek().map(|&(OrdF32(w), _)| w).unwrap_or(f32::INFINITY)
                    } else {
                        f32::INFINITY
                    };
                    stats.evals += 1;
                    match self.dist_or_abandon(&q_rot, nb, threshold) {
                        Some(nd) => {
                            if top.len() < ef || nd < threshold {
                                top.push((OrdF32(nd), nb));
                                if top.len() > ef {
                                    top.pop();
                                }
                                frontier.push((Reverse(OrdF32(nd)), nb));
                            }
                        }
                        None => stats.abandoned += 1,
                    }
                }
            }

            let mut out: Vec<Hit> = top
                .drain()
                .map(|(OrdF32(dist), id)| Hit {
                    id: u64::from(id),
                    dist,
                })
                .collect();
            out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
            out.truncate(k);
            frontier.clear();
            scratch.put_results(top);
            scratch.put_frontier(frontier);
            (out, stats)
        })
    }
}

/// Applies the block rotation to `v`, writing into `out` (tail dimensions
/// beyond the last full block are copied unrotated).
fn rotate_into(rotation: &linalg::Matrix, block: usize, v: &[f32], out: &mut [f32]) {
    let mut i = 0;
    while i + block <= v.len() {
        let rotated = rotation.matvec(&v[i..i + block]);
        out[i..i + block].copy_from_slice(&rotated);
        i += block;
    }
    out[i..].copy_from_slice(&v[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::{Hnsw, HnswParams};
    use crate::providers::FullPrecision;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(4);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32, (i + j) as f32 * 0.5, 0.0]);
            }
        }
        s
    }

    #[test]
    fn rotation_preserves_distances() {
        let base = grid(8);
        let sampler = AdSampler::new(&base, 2.1, 16, 1);
        let q = [1.5f32, 2.5, 2.0, 0.0];
        let q_rot = sampler.rotate_query(&q);
        for id in 0..10u32 {
            let exact = simdops::l2_sq(&q, base.get(id as usize));
            let rotated = sampler
                .dist_or_abandon(&q_rot, id, f32::INFINITY)
                .expect("infinite threshold never abandons");
            assert!(
                (exact - rotated).abs() < 1e-3 * (1.0 + exact),
                "{exact} vs {rotated}"
            );
        }
    }

    #[test]
    fn abandons_far_points_with_tight_threshold() {
        // Need D > delta_d so intermediate checkpoints exist.
        let mut base = VectorSet::new(32);
        base.push(&[0.0; 32]); // the query's twin
        base.push(&[100.0; 32]); // a very far point
        let sampler = AdSampler::new(&base, 2.1, 8, 2);
        let q_rot = sampler.rotate_query(&[0.0; 32]);
        assert!(
            sampler.dist_or_abandon(&q_rot, 1, 0.01).is_none(),
            "far point must abandon under a tight threshold"
        );
        assert!(
            sampler.dist_or_abandon(&q_rot, 0, 0.01).is_some(),
            "the exact match must complete"
        );
    }

    #[test]
    fn search_matches_plain_hnsw_top1() {
        let base = grid(12);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 4,
            },
        );
        let graph = index.freeze();
        let sampler = AdSampler::new(&base, 2.1, 16, 5);
        for q in [[3.2f32, 4.1, 3.6, 0.0], [7.9, 0.2, 4.0, 0.0]] {
            let plain = index.search(&q, 1, 48);
            let (ad, _) = sampler.search(&graph, &q, 1, 48);
            assert_eq!(plain[0].id, ad[0].id);
        }
    }
}
