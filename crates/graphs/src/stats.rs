//! Graph-quality statistics and the instrumented provider wrapper.
//!
//! [`GraphStats`] summarizes degree structure and connectivity of a built
//! index; [`Instrumented`] wraps any [`DistanceProvider`] with wall-clock
//! accounting of distance computation vs. everything else, which is how the
//! harness reproduces the paper's indexing-time profiles (Figures 1 and 15)
//! without hardware counters.

use crate::graph::GraphLayers;
use crate::provider::DistanceProvider;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use vecstore::VectorSet;

/// Degree/connectivity summary of the base layer.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Directed edge count (base layer).
    pub edges: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Nodes with zero out-degree.
    pub isolated: usize,
    /// Nodes reachable from the entry point over the base layer.
    pub reachable: usize,
}

impl GraphStats {
    /// Computes stats over a frozen multi-layer graph's base layer.
    ///
    /// Degrees come straight from the CSR row lengths — no nested
    /// materialization — and the BFS walks the packed rows in place.
    pub fn from_layers(graph: &GraphLayers) -> Self {
        let n = graph.len();
        let base = graph.layer(0);
        let edges = base.edges();
        let mut max_degree = 0;
        let mut isolated = 0;
        for node in 0..n {
            let deg = base.degree(node);
            max_degree = max_degree.max(deg);
            if deg == 0 {
                isolated += 1;
            }
        }
        // BFS from entry on layer 0.
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        let mut reachable = 0;
        if n > 0 {
            seen[graph.entry as usize] = true;
            reachable = 1;
            queue.push_back(graph.entry);
            while let Some(u) = queue.pop_front() {
                for &v in graph.neighbors(0, u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        reachable += 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        Self {
            nodes: n,
            edges,
            avg_degree: if n == 0 { 0.0 } else { edges as f64 / n as f64 },
            max_degree,
            isolated,
            reachable,
        }
    }
}

/// Wall-clock accounting collected by [`Instrumented`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ProviderTimings {
    /// Nanoseconds inside distance computations (CA + NS).
    pub dist_ns: u64,
    /// Number of distance computations (a batch of `B` counts as one call).
    pub dist_calls: u64,
    /// Nanoseconds preparing insert/query contexts (encoding, ADT build).
    pub prepare_ns: u64,
    /// Nanoseconds synchronizing node payloads (Flash layout maintenance).
    pub sync_ns: u64,
}

impl ProviderTimings {
    /// Fraction of `total_ns` spent in distance computation.
    pub fn dist_fraction(&self, total_ns: u64) -> f64 {
        if total_ns == 0 {
            0.0
        } else {
            self.dist_ns as f64 / total_ns as f64
        }
    }
}

/// Decorator measuring where a provider's time goes. Timing overhead is two
/// `Instant` reads per call (~40 ns), small against the D-dimensional float
/// kernels being profiled and amortized across a 16-wide batch on the Flash
/// path.
pub struct Instrumented<P> {
    inner: P,
    dist_ns: AtomicU64,
    dist_calls: AtomicU64,
    prepare_ns: AtomicU64,
    sync_ns: AtomicU64,
}

impl<P> Instrumented<P> {
    /// Wraps a provider.
    pub fn new(inner: P) -> Self {
        Self {
            inner,
            dist_ns: AtomicU64::new(0),
            dist_calls: AtomicU64::new(0),
            prepare_ns: AtomicU64::new(0),
            sync_ns: AtomicU64::new(0),
        }
    }

    /// Snapshot of the counters.
    pub fn timings(&self) -> ProviderTimings {
        ProviderTimings {
            dist_ns: self.dist_ns.load(Ordering::Relaxed),
            dist_calls: self.dist_calls.load(Ordering::Relaxed),
            prepare_ns: self.prepare_ns.load(Ordering::Relaxed),
            sync_ns: self.sync_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters.
    pub fn reset(&self) {
        self.dist_ns.store(0, Ordering::Relaxed);
        self.dist_calls.store(0, Ordering::Relaxed);
        self.prepare_ns.store(0, Ordering::Relaxed);
        self.sync_ns.store(0, Ordering::Relaxed);
    }

    /// The wrapped provider.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    #[inline]
    fn time<T>(counter: &AtomicU64, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        counter.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }
}

impl<P: DistanceProvider> DistanceProvider for Instrumented<P> {
    type QueryCtx = P::QueryCtx;
    type NodePayload = P::NodePayload;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn base(&self) -> &VectorSet {
        self.inner.base()
    }

    fn prepare_insert(&self, id: u32) -> Self::QueryCtx {
        Self::time(&self.prepare_ns, || self.inner.prepare_insert(id))
    }

    fn prepare_query(&self, v: &[f32]) -> Self::QueryCtx {
        Self::time(&self.prepare_ns, || self.inner.prepare_query(v))
    }

    fn dist_to(&self, ctx: &Self::QueryCtx, id: u32) -> f32 {
        self.dist_calls.fetch_add(1, Ordering::Relaxed);
        Self::time(&self.dist_ns, || self.inner.dist_to(ctx, id))
    }

    fn dist_between(&self, a: u32, b: u32) -> f32 {
        self.dist_calls.fetch_add(1, Ordering::Relaxed);
        Self::time(&self.dist_ns, || self.inner.dist_between(a, b))
    }

    fn dist_to_neighbors(
        &self,
        ctx: &Self::QueryCtx,
        ids: &[u32],
        payload: &Self::NodePayload,
        out: &mut Vec<f32>,
    ) {
        self.dist_calls.fetch_add(1, Ordering::Relaxed);
        Self::time(&self.dist_ns, || {
            self.inner.dist_to_neighbors(ctx, ids, payload, out)
        })
    }

    fn sync_payload(&self, payload: &mut Self::NodePayload, ids: &[u32]) {
        Self::time(&self.sync_ns, || self.inner.sync_payload(payload, ids))
    }

    fn prefetch(&self, id: u32) {
        // Untimed: a prefetch hint is fire-and-forget, timing it would cost
        // more than the hint itself.
        self.inner.prefetch(id);
    }

    fn aux_bytes(&self) -> usize {
        self.inner.aux_bytes()
    }

    fn payload_bytes(&self, cap: usize) -> usize {
        self.inner.payload_bytes(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::{Hnsw, HnswParams};
    use crate::providers::FullPrecision;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    #[test]
    fn stats_of_built_graph() {
        let index = Hnsw::build(
            FullPrecision::new(grid(10)),
            HnswParams {
                c: 32,
                r: 8,
                seed: 1,
            },
        );
        let stats = GraphStats::from_layers(&index.freeze());
        assert_eq!(stats.nodes, 100);
        assert_eq!(stats.reachable, 100);
        assert_eq!(stats.isolated, 0);
        assert!(stats.avg_degree > 1.0);
        assert!(stats.max_degree <= 16);
    }

    #[test]
    fn stats_over_csr_match_nested_materialization() {
        // The CSR-direct degree/edge accounting must agree with the naive
        // computation over a nested copy of the same adjacency.
        let index = Hnsw::build(
            FullPrecision::new(grid(9)),
            HnswParams {
                c: 32,
                r: 8,
                seed: 17,
            },
        );
        let graph = index.freeze();
        let stats = GraphStats::from_layers(&graph);
        let nested = graph.layer(0).to_nested();
        let edges: usize = nested.iter().map(Vec::len).sum();
        let max_degree = nested.iter().map(Vec::len).max().unwrap_or(0);
        let isolated = nested.iter().filter(|n| n.is_empty()).count();
        assert_eq!(stats.edges, edges);
        assert_eq!(stats.max_degree, max_degree);
        assert_eq!(stats.isolated, isolated);
        assert_eq!(stats.nodes, nested.len());
        assert!((stats.avg_degree - edges as f64 / nested.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn instrumented_counts_distance_work() {
        let provider = Instrumented::new(FullPrecision::new(grid(8)));
        let index = Hnsw::build(
            provider,
            HnswParams {
                c: 16,
                r: 4,
                seed: 2,
            },
        );
        let t = index.provider().timings();
        assert!(t.dist_calls > 0, "construction must compute distances");
        assert!(t.dist_ns > 0);
        assert!(t.prepare_ns > 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let provider = Instrumented::new(FullPrecision::new(grid(4)));
        let ctx = provider.prepare_insert(0);
        let _ = provider.dist_to(&ctx, 1);
        provider.reset();
        let t = provider.timings();
        assert_eq!(t.dist_calls, 0);
        assert_eq!(t.dist_ns, 0);
    }

    #[test]
    fn instrumented_distances_match_inner() {
        let plain = FullPrecision::new(grid(5));
        let wrapped = Instrumented::new(FullPrecision::new(grid(5)));
        let c1 = plain.prepare_insert(3);
        let c2 = wrapped.prepare_insert(3);
        assert_eq!(plain.dist_to(&c1, 7), wrapped.dist_to(&c2, 7));
        assert_eq!(plain.dist_between(2, 9), wrapped.dist_between(2, 9));
    }
}
