//! Reusable epoch-stamped visited sets.
//!
//! Every CA search needs a "have I seen this vertex" set. Allocating a
//! bitmap per insert would dominate small-graph builds, so we pool
//! epoch-stamped arrays: marking writes the current epoch, and a new
//! traversal just bumps the epoch instead of clearing.

use parking_lot::Mutex;

/// One epoch-stamped visited array.
pub struct VisitedList {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedList {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            stamps: vec![0; n],
            epoch: 0,
        }
    }

    /// Starts a fresh traversal (O(1) except on epoch wrap).
    pub fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: clear once every 2^32 traversals.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `id` visited; returns `true` if it was already visited.
    #[inline]
    pub fn check_and_mark(&mut self, id: u32) -> bool {
        let slot = &mut self.stamps[id as usize];
        let seen = *slot == self.epoch;
        *slot = self.epoch;
        seen
    }

    /// Whether `id` is marked in the current traversal.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn is_visited(&self, id: u32) -> bool {
        self.stamps[id as usize] == self.epoch
    }
}

/// Pool of [`VisitedList`]s shared across builder threads.
pub struct VisitedPool {
    n: usize,
    free: Mutex<Vec<VisitedList>>,
}

impl VisitedPool {
    /// Creates a pool for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            free: Mutex::new(Vec::new()),
        }
    }

    /// Borrows a list (allocating if the pool is dry). Return it with
    /// [`VisitedPool::put`].
    pub fn take(&self) -> VisitedList {
        let mut list = self
            .free
            .lock()
            .pop()
            .unwrap_or_else(|| VisitedList::new(self.n));
        list.begin(self.n);
        list
    }

    /// Returns a list to the pool.
    pub fn put(&self, list: VisitedList) {
        self.free.lock().push(list);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_and_checks() {
        let pool = VisitedPool::new(10);
        let mut v = pool.take();
        assert!(!v.check_and_mark(3));
        assert!(v.check_and_mark(3));
        assert!(v.is_visited(3));
        assert!(!v.is_visited(4));
    }

    #[test]
    fn reuse_resets_marks() {
        let pool = VisitedPool::new(4);
        let mut v = pool.take();
        v.check_and_mark(1);
        pool.put(v);
        let v2 = pool.take();
        assert!(!v2.is_visited(1), "recycled list must start clean");
    }

    #[test]
    fn epoch_wrap_is_safe() {
        let mut v = VisitedList::new(3);
        v.epoch = u32::MAX - 1;
        v.begin(3);
        v.check_and_mark(0);
        v.begin(3); // wraps to 0 → cleared, epoch = 1
        assert!(!v.is_visited(0));
        assert!(!v.check_and_mark(0));
        assert!(v.is_visited(0));
    }

    #[test]
    fn grows_for_larger_graphs() {
        let mut v = VisitedList::new(2);
        v.begin(10);
        assert!(!v.check_and_mark(9));
    }
}
