//! VBase-style search termination (Zhang et al., OSDI 2023), reproduced for
//! the paper's Figure 13 generality experiment.
//!
//! VBase's observation ("relaxed monotonicity"): once a graph traversal has
//! entered the query's neighborhood, the distances of newly expanded
//! vertices stop improving on the running result set; instead of expanding
//! until the fixed `ef` beam is exhausted, terminate when a window of `W`
//! consecutive expansions yields no improvement to the top-k. Construction
//! is untouched, so Flash-built graphs benefit directly.

use crate::graph::GraphLayers;
use crate::provider::DistanceProvider;
use crate::scratch::with_scratch;
use crate::Hit;
use crate::OrdF32;
use std::cmp::Reverse;

/// Search with relaxed-monotonicity termination.
///
/// Expands vertices best-first; terminates when either the frontier is
/// exhausted or the last `window` expansions failed to improve the k-th
/// best distance. `window` plays the role the beam width `ef` plays in
/// standard HNSW search (bigger → higher recall, slower).
///
/// Like [`crate::search_layers`], per-query state is pooled and each
/// expansion scores its unvisited neighbors as one
/// [`DistanceProvider::dist_to_neighbors`] block — bit-identical to the
/// per-neighbor loop, since the windowed-termination decisions depend only
/// on the distances, not on when they were computed.
pub fn search_vbase<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    query: &[f32],
    k: usize,
    window: usize,
) -> Vec<Hit> {
    if graph.is_empty() {
        return Vec::new();
    }
    let window = window.max(1);
    let ctx = provider.prepare_query(query);
    let cf = provider.coded() as u64;

    with_scratch::<P::NodePayload, _>(|scratch| {
        let (cur, cur_d) = crate::layers_search::descend(provider, graph, &ctx, scratch);

        // Base-layer expansion with windowed termination.
        scratch.visited.begin(graph.len());
        scratch.visited.check_and_mark(cur);
        scratch.profile.visited_inserts += 1;
        let mut topk = scratch.take_results();
        let mut frontier = scratch.take_frontier();
        topk.push((OrdF32(cur_d), cur));
        frontier.push((Reverse(OrdF32(cur_d)), cur));

        let mut since_improvement = 0usize;
        while let Some((Reverse(OrdF32(_)), u)) = frontier.pop() {
            if since_improvement >= window {
                break;
            }
            scratch.ids.clear();
            for &nb in graph.neighbors(0, u) {
                if !scratch.visited.check_and_mark(nb) {
                    scratch.ids.push(nb);
                }
            }
            scratch.profile.hops_base += 1;
            scratch.profile.visited_inserts += scratch.ids.len() as u64;
            let mut improved = false;
            if !scratch.ids.is_empty() {
                if let Some(&(Reverse(_), next)) = frontier.peek() {
                    provider.prefetch(next);
                    simdops::prefetch_slice(graph.neighbors(0, next));
                }
                provider.sync_payload(&mut scratch.payload, &scratch.ids);
                provider.dist_to_neighbors(
                    &ctx,
                    &scratch.ids,
                    &scratch.payload,
                    &mut scratch.dists,
                );
                let n = scratch.ids.len() as u64;
                scratch.profile.rows_scored += 1;
                scratch.profile.dist_coded += n * cf;
                scratch.profile.dist_exact += n * (1 - cf);
                scratch.profile.codeword_bytes += provider.payload_bytes(scratch.ids.len()) as u64;
                for (&nb, &nd) in scratch.ids.iter().zip(&scratch.dists) {
                    let kth = topk
                        .peek()
                        .map(|&(OrdF32(w), _)| w)
                        .unwrap_or(f32::INFINITY);
                    if topk.len() < k || nd < kth {
                        topk.push((OrdF32(nd), nb));
                        if topk.len() > k {
                            topk.pop();
                        }
                        improved = true;
                    }
                    // Frontier admission stays generous so the walk can cross
                    // plateaus; the window handles termination.
                    frontier.push((Reverse(OrdF32(nd)), nb));
                }
            }
            if improved {
                since_improvement = 0;
            } else {
                since_improvement += 1;
            }
        }

        let mut out: Vec<Hit> = topk
            .drain()
            .map(|(OrdF32(dist), id)| Hit {
                id: u64::from(id),
                dist,
            })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        frontier.clear();
        scratch.put_results(topk);
        scratch.put_frontier(frontier);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::{Hnsw, HnswParams};
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    #[test]
    fn finds_nearest_with_reasonable_window() {
        let base = grid(12);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 2,
            },
        );
        let graph = index.freeze();
        let hits = search_vbase(index.provider(), &graph, &[6.2, 3.9], 1, 24);
        assert_eq!(hits[0].id, 6 * 12 + 4);
    }

    #[test]
    fn bigger_window_never_hurts_recall() {
        let base = grid(14);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 3,
            },
        );
        let graph = index.freeze();
        let gt = vecstore::ground_truth(&base, &base.slice(0, 20), 5);
        let recall = |window: usize| -> f64 {
            let mut hit = 0;
            for (qi, truth) in gt.iter().enumerate() {
                let found = search_vbase(index.provider(), &graph, base.get(qi), 5, window);
                let ids: Vec<u64> = found.iter().map(|r| r.id).collect();
                hit += truth
                    .iter()
                    .filter(|t| ids.contains(&u64::from(t.id)))
                    .count();
            }
            hit as f64 / (20.0 * 5.0)
        };
        let small = recall(2);
        let large = recall(40);
        assert!(
            large >= small,
            "window 40 recall {large} < window 2 recall {small}"
        );
        assert!(large > 0.9, "large-window recall {large}");
    }

    #[test]
    fn returns_at_most_k() {
        let base = grid(6);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 16,
                r: 4,
                seed: 4,
            },
        );
        let graph = index.freeze();
        let hits = search_vbase(index.provider(), &graph, &[2.0, 2.0], 3, 16);
        assert!(hits.len() <= 3);
        assert!(!hits.is_empty());
    }
}
