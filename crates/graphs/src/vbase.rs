//! VBase-style search termination (Zhang et al., OSDI 2023), reproduced for
//! the paper's Figure 13 generality experiment.
//!
//! VBase's observation ("relaxed monotonicity"): once a graph traversal has
//! entered the query's neighborhood, the distances of newly expanded
//! vertices stop improving on the running result set; instead of expanding
//! until the fixed `ef` beam is exhausted, terminate when a window of `W`
//! consecutive expansions yields no improvement to the top-k. Construction
//! is untouched, so Flash-built graphs benefit directly.

use crate::graph::GraphLayers;
use crate::provider::DistanceProvider;
use crate::Hit;
use crate::OrdF32;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Search with relaxed-monotonicity termination.
///
/// Expands vertices best-first; terminates when either the frontier is
/// exhausted or the last `window` expansions failed to improve the k-th
/// best distance. `window` plays the role the beam width `ef` plays in
/// standard HNSW search (bigger → higher recall, slower).
pub fn search_vbase<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    query: &[f32],
    k: usize,
    window: usize,
) -> Vec<Hit> {
    if graph.is_empty() {
        return Vec::new();
    }
    let window = window.max(1);
    let ctx = provider.prepare_query(query);

    // Greedy descent through upper layers.
    let mut cur = graph.entry;
    let mut cur_d = provider.dist_to(&ctx, cur);
    for layer in (1..=graph.max_layer).rev() {
        loop {
            let mut improved = false;
            for &nb in graph.neighbors(layer, cur) {
                let d = provider.dist_to(&ctx, nb);
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    // Base-layer expansion with windowed termination.
    let mut visited = vec![false; graph.len()];
    visited[cur as usize] = true;
    let mut topk: BinaryHeap<(OrdF32, u32)> = BinaryHeap::with_capacity(k + 1);
    let mut frontier: BinaryHeap<(Reverse<OrdF32>, u32)> = BinaryHeap::new();
    topk.push((OrdF32(cur_d), cur));
    frontier.push((Reverse(OrdF32(cur_d)), cur));

    let mut since_improvement = 0usize;
    while let Some((Reverse(OrdF32(_)), u)) = frontier.pop() {
        if since_improvement >= window {
            break;
        }
        let mut improved = false;
        for &nb in graph.neighbors(0, u) {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            let nd = provider.dist_to(&ctx, nb);
            let kth = topk
                .peek()
                .map(|&(OrdF32(w), _)| w)
                .unwrap_or(f32::INFINITY);
            if topk.len() < k || nd < kth {
                topk.push((OrdF32(nd), nb));
                if topk.len() > k {
                    topk.pop();
                }
                improved = true;
            }
            // Frontier admission stays generous so the walk can cross
            // plateaus; the window handles termination.
            frontier.push((Reverse(OrdF32(nd)), nb));
        }
        if improved {
            since_improvement = 0;
        } else {
            since_improvement += 1;
        }
    }

    let mut out: Vec<Hit> = topk
        .into_iter()
        .map(|(OrdF32(dist), id)| Hit {
            id: u64::from(id),
            dist,
        })
        .collect();
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::{Hnsw, HnswParams};
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    #[test]
    fn finds_nearest_with_reasonable_window() {
        let base = grid(12);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 2,
            },
        );
        let graph = index.freeze();
        let hits = search_vbase(index.provider(), &graph, &[6.2, 3.9], 1, 24);
        assert_eq!(hits[0].id, 6 * 12 + 4);
    }

    #[test]
    fn bigger_window_never_hurts_recall() {
        let base = grid(14);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 3,
            },
        );
        let graph = index.freeze();
        let gt = vecstore::ground_truth(&base, &base.slice(0, 20), 5);
        let recall = |window: usize| -> f64 {
            let mut hit = 0;
            for (qi, truth) in gt.iter().enumerate() {
                let found = search_vbase(index.provider(), &graph, base.get(qi), 5, window);
                let ids: Vec<u64> = found.iter().map(|r| r.id).collect();
                hit += truth
                    .iter()
                    .filter(|t| ids.contains(&u64::from(t.id)))
                    .count();
            }
            hit as f64 / (20.0 * 5.0)
        };
        let small = recall(2);
        let large = recall(40);
        assert!(
            large >= small,
            "window 40 recall {large} < window 2 recall {small}"
        );
        assert!(large > 0.9, "large-window recall {large}");
    }

    #[test]
    fn returns_at_most_k() {
        let base = grid(6);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 16,
                r: 4,
                seed: 4,
            },
        );
        let graph = index.freeze();
        let hits = search_vbase(index.provider(), &graph, &[2.0, 2.0], 3, 16);
        assert!(hits.len() <= 3);
        assert!(!hits.is_empty());
    }
}
