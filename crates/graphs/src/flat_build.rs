//! Shared construction skeleton for the flat (single-layer) graph methods.
//!
//! NSG and τ-MG differ from HNSW only in their edge-selection rule and in
//! being single-layer with a medoid entry point (paper Section 2.1.1: all
//! of them share the CA + NS skeleton). This module implements that shared
//! skeleton once:
//!
//! 1. build a helper HNSW over the same [`DistanceProvider`] (its CA stage
//!    *is* the candidate acquisition the flat builders need);
//! 2. compute the medoid (vector closest to the dataset mean);
//! 3. for every vertex, acquire a candidate pool via beam search and prune
//!    it with the method-specific rule;
//! 4. repair connectivity so every vertex is reachable from the medoid.
//!
//! Because every distance flows through the provider, plugging in Flash
//! accelerates NSG and τ-MG exactly as the paper's Figure 14 reports.

use crate::graph::FlatGraph;
use crate::hnsw::{Hnsw, HnswParams};
use crate::provider::DistanceProvider;
use crate::scratch::with_scratch;
use crate::Hit;
use crate::OrdF32;
use rayon::prelude::*;
use std::cmp::Reverse;

/// Shared parameters of the flat builders.
#[derive(Debug, Clone, Copy)]
pub struct FlatParams {
    /// Maximum out-degree `R`.
    pub r: usize,
    /// Candidate pool size `C` used during CA (also the helper HNSW's `C`).
    pub c: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlatParams {
    fn default() -> Self {
        Self {
            r: 16,
            c: 128,
            seed: 0x5eed,
        }
    }
}

/// An edge-pruning rule: given the candidate's distance to the inserted
/// vertex (`d_xv`) and its distance to an already-selected neighbor
/// (`d_uv`), decide whether the candidate is *dominated* (pruned).
pub trait PruneRule: Sync {
    /// Returns `true` if the candidate should be pruned.
    fn dominated(&self, d_xv: f32, d_uv: f32) -> bool;
}

/// MRNG rule (NSG): prune `v` when some selected `u` satisfies
/// `δ(u,v) < δ(x,v)`.
pub struct MrngRule;

impl PruneRule for MrngRule {
    #[inline]
    fn dominated(&self, d_xv: f32, d_uv: f32) -> bool {
        d_uv < d_xv
    }
}

/// τ-MG rule: prune `v` only when `δ(u,v) < δ(x,v) − 3τ` (distances, not
/// squares), retaining extra edges that guarantee τ-monotonic search paths.
/// We adapt the rule to squared-distance bookkeeping by comparing square
/// roots, which is exact.
pub struct TauRule {
    /// The monotonicity slack τ (in distance units).
    pub tau: f32,
}

impl PruneRule for TauRule {
    #[inline]
    fn dominated(&self, d_xv: f32, d_uv: f32) -> bool {
        let margin = d_xv.max(0.0).sqrt() - 3.0 * self.tau;
        margin > 0.0 && d_uv.max(0.0).sqrt() < margin
    }
}

/// Vamana's α-RNG rule (DiskANN): prune `v` when some selected `u`
/// satisfies `α · δ(u,v) ≤ δ(x,v)`. With squared-distance bookkeeping this
/// is `α² · d_uv ≤ d_xv`. `α = 1` coincides with [`MrngRule`] (up to the
/// boundary case); `α > 1` keeps longer "highway" edges that shorten
/// search paths at the cost of degree.
pub struct AlphaRule {
    /// α² — the rule compares squared distances, so the slack is squared
    /// once at construction time.
    pub alpha_sq: f32,
}

impl AlphaRule {
    /// Builds the rule from the DiskANN-style α (distance units, `α ≥ 1`).
    pub fn new(alpha: f32) -> Self {
        assert!(alpha >= 1.0, "Vamana requires α ≥ 1, got {alpha}");
        Self {
            alpha_sq: alpha * alpha,
        }
    }
}

impl PruneRule for AlphaRule {
    #[inline]
    fn dominated(&self, d_xv: f32, d_uv: f32) -> bool {
        self.alpha_sq * d_uv <= d_xv
    }
}

/// Builds a flat graph with the given pruning rule. Returns the graph and
/// hands the provider back to the caller.
pub fn build_flat<P: DistanceProvider, Rule: PruneRule>(
    provider: P,
    params: FlatParams,
    rule: &Rule,
) -> (FlatGraph, P) {
    let (adj, entry, provider) = build_flat_nested(provider, params, rule);
    (FlatGraph::from_nested(&adj, entry), provider)
}

/// [`build_flat`] stopping just before the CSR freeze: returns the nested
/// adjacency, the entry point, and the provider. Builders that post-process
/// edges (Vamana's α-pass) mutate the nested form and freeze once at the
/// end.
pub(crate) fn build_flat_nested<P: DistanceProvider, Rule: PruneRule>(
    provider: P,
    params: FlatParams,
    rule: &Rule,
) -> (Vec<Vec<u32>>, u32, P) {
    let n = provider.len();
    if n == 0 {
        return (Vec::new(), 0, provider);
    }

    // Step 1: helper HNSW supplies the candidate pools.
    let helper = Hnsw::build(
        provider,
        HnswParams {
            c: params.c,
            r: params.r.max(8),
            seed: params.seed,
        },
    );

    // Step 2: medoid = vector nearest the dataset mean.
    let medoid = {
        let base = helper.provider().base();
        let dim = base.dim();
        let mut mean = vec![0.0f64; dim];
        for v in base.iter() {
            for (m, &x) in mean.iter_mut().zip(v.iter()) {
                *m += f64::from(x);
            }
        }
        let mean_f32: Vec<f32> = mean.iter().map(|&m| (m / n as f64) as f32).collect();
        let hits = helper.search(&mean_f32, 1, params.c);
        hits.first().map(|h| h.id as u32).unwrap_or(0)
    };

    // Step 3: per-vertex CA (beam search from the medoid side via the
    // helper index) + NS with the method's rule.
    let helper_ref = &helper;
    let adj: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|x| {
            let base = helper_ref.provider().base();
            let pool: Vec<Hit> = helper_ref.search(base.get(x as usize), params.c, params.c);
            let provider = helper_ref.provider();
            let mut selected: Vec<(f32, u32)> = Vec::with_capacity(params.r);
            for hit in pool.iter().filter(|h| h.id != u64::from(x)) {
                if selected.len() >= params.r {
                    break;
                }
                let dominated = selected.iter().any(|&(_, u)| {
                    rule.dominated(hit.dist, provider.dist_between(u, hit.id as u32))
                });
                if !dominated {
                    selected.push((hit.dist, hit.id as u32));
                }
            }
            selected.into_iter().map(|(_, v)| v).collect()
        })
        .collect();

    let mut adj = adj;

    // Step 4: connectivity repair — attach unreachable vertices to their
    // nearest reachable candidate (NSG's tree-linking step, simplified).
    for _round in 0..8 {
        let reached = reachable_mask(&adj, medoid);
        let todo: Vec<u32> = (0..n as u32).filter(|&i| !reached[i as usize]).collect();
        if todo.is_empty() {
            break;
        }
        for x in todo {
            let base = helper.provider().base();
            let pool = helper.search(base.get(x as usize), params.c, params.c);
            let anchor = pool
                .iter()
                .find(|h| h.id != u64::from(x) && reached[h.id as usize])
                .map(|h| h.id as u32)
                .unwrap_or(medoid);
            adj[anchor as usize].push(x);
        }
    }

    (adj, medoid, helper.into_provider())
}

/// BFS reachability over nested adjacency (the builders' pre-freeze form).
pub(crate) fn reachable_mask(adj: &[Vec<u32>], entry: u32) -> Vec<bool> {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[entry as usize] = true;
    queue.push_back(entry);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Beam search over a flat graph (shared by NSG and τ-MG search).
pub fn search_flat<P: DistanceProvider>(
    provider: &P,
    graph: &FlatGraph,
    query: &[f32],
    k: usize,
    ef: usize,
) -> Vec<Hit> {
    // With an accept-all predicate every admitted vertex enters the result
    // set, so the filtered beam *is* the plain beam.
    search_flat_filtered(provider, graph, query, k, ef, &|_| true)
}

/// [`search_flat`] restricted to vectors accepted by `accept`: the beam
/// traverses every vertex, only accepted ones enter the result set (same
/// contract as [`crate::Hnsw::search_filtered`]).
///
/// Per-query state comes from the pooled [`crate::scratch::SearchScratch`]
/// and each expansion's unvisited neighbors are scored as one
/// [`DistanceProvider::dist_to_neighbors`] block — bit-identical to the
/// per-neighbor loop (see [`crate::search_layers_filtered`]).
pub fn search_flat_filtered<P: DistanceProvider>(
    provider: &P,
    graph: &FlatGraph,
    query: &[f32],
    k: usize,
    ef: usize,
    accept: &(dyn Fn(u32) -> bool + Sync),
) -> Vec<Hit> {
    if graph.is_empty() {
        return Vec::new();
    }
    let ef = ef.max(k);
    let ctx = provider.prepare_query(query);
    let cf = provider.coded() as u64;

    with_scratch::<P::NodePayload, _>(|scratch| {
        let entry = graph.entry;
        let d0 = provider.dist_to(&ctx, entry);
        scratch.visited.begin(graph.len());
        scratch.visited.check_and_mark(entry);
        scratch.profile.dist_coded += cf;
        scratch.profile.dist_exact += 1 - cf;
        scratch.profile.visited_inserts += 1;

        let mut results = scratch.take_results();
        let mut frontier = scratch.take_frontier();
        if accept(entry) {
            results.push((OrdF32(d0), entry));
        }
        frontier.push((Reverse(OrdF32(d0)), entry));

        while let Some((Reverse(OrdF32(d)), u)) = frontier.pop() {
            let worst = results
                .peek()
                .map(|&(OrdF32(w), _)| w)
                .unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            scratch.ids.clear();
            for &nb in graph.neighbors(u) {
                if !scratch.visited.check_and_mark(nb) {
                    scratch.ids.push(nb);
                }
            }
            scratch.profile.hops_base += 1;
            scratch.profile.visited_inserts += scratch.ids.len() as u64;
            if scratch.ids.is_empty() {
                continue;
            }
            if let Some(&(Reverse(_), next)) = frontier.peek() {
                provider.prefetch(next);
                simdops::prefetch_slice(graph.neighbors(next));
            }
            provider.sync_payload(&mut scratch.payload, &scratch.ids);
            provider.dist_to_neighbors(&ctx, &scratch.ids, &scratch.payload, &mut scratch.dists);
            let n = scratch.ids.len() as u64;
            scratch.profile.rows_scored += 1;
            scratch.profile.dist_coded += n * cf;
            scratch.profile.dist_exact += n * (1 - cf);
            scratch.profile.codeword_bytes += provider.payload_bytes(scratch.ids.len()) as u64;
            for (&nb, &nd) in scratch.ids.iter().zip(&scratch.dists) {
                let worst = results
                    .peek()
                    .map(|&(OrdF32(w), _)| w)
                    .unwrap_or(f32::INFINITY);
                // `<=`: quantized providers tie heavily (see hnsw::search_layer).
                if results.len() < ef || nd <= worst {
                    if accept(nb) {
                        results.push((OrdF32(nd), nb));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                    frontier.push((Reverse(OrdF32(nd)), nb));
                }
            }
        }

        let mut out: Vec<Hit> = results
            .drain()
            .map(|(OrdF32(dist), id)| Hit {
                id: u64::from(id),
                dist,
            })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        out.truncate(k);
        frontier.clear();
        scratch.put_results(results);
        scratch.put_frontier(frontier);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mrng_rule_is_strict_domination() {
        let r = MrngRule;
        assert!(r.dominated(1.0, 0.5));
        assert!(!r.dominated(1.0, 1.5));
        assert!(!r.dominated(1.0, 1.0));
    }

    #[test]
    fn tau_rule_keeps_more_edges_than_mrng() {
        let mrng = MrngRule;
        let tau = TauRule { tau: 0.5 };
        // A candidate MRNG would prune (d_uv < d_xv) survives with slack.
        let d_xv = 4.0; // distance 2.0
        let d_uv = 3.0; // distance ~1.73 < 2.0 → MRNG prunes
        assert!(mrng.dominated(d_xv, d_uv));
        assert!(!tau.dominated(d_xv, d_uv), "slack 3τ = 1.5 must retain it");
    }

    #[test]
    fn tau_rule_still_prunes_far_dominated_edges() {
        let tau = TauRule { tau: 0.1 };
        // d_xv = 100 (dist 10), d_uv = 1 (dist 1) → 1 < 10 - 0.3 → pruned.
        assert!(tau.dominated(100.0, 1.0));
    }
}
