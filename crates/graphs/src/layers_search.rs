//! Standard HNSW beam search over a frozen [`GraphLayers`] topology.
//!
//! [`crate::Hnsw::search`] traverses the index's internal locked node
//! records; this module provides the same search over the *persisted*
//! representation ([`GraphLayers`], the format `persist` writes), so a
//! topology built overnight can be reloaded and served without carrying
//! the builder's data structures — the deployment the paper's maintenance
//! scenario implies. Any [`DistanceProvider`] works: rebuild the provider
//! deterministically from the dataset (codecs re-train/encode from the
//! same seed) and pair it with the loaded graph.

use crate::graph::GraphLayers;
use crate::provider::DistanceProvider;
use crate::Hit;
use crate::OrdF32;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// k-NN beam search (greedy upper-layer descent, `ef`-wide base beam)
/// over a frozen topology.
pub fn search_layers<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    query: &[f32],
    k: usize,
    ef: usize,
) -> Vec<Hit> {
    // The filtered beam with an accept-all predicate *is* the plain beam:
    // every admitted vertex enters the result set, so the two loops are
    // identical. Delegating keeps one copy of the descent + beam.
    search_layers_filtered(provider, graph, query, k, ef, &|_| true)
}

/// k-NN beam search over a frozen topology restricted to vectors accepted
/// by `accept` (the frozen-graph counterpart of
/// [`crate::Hnsw::search_filtered`]): the beam *traverses* every vertex —
/// rejected vertices still route the search — but only accepted vertices
/// enter the result set.
pub fn search_layers_filtered<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    query: &[f32],
    k: usize,
    ef: usize,
    accept: &(dyn Fn(u32) -> bool + Sync),
) -> Vec<Hit> {
    if graph.is_empty() {
        return Vec::new();
    }
    let ef = ef.max(k).max(1);
    let ctx = provider.prepare_query(query);

    let mut cur = graph.entry;
    let mut cur_d = provider.dist_to(&ctx, cur);
    for layer in (1..=graph.max_layer).rev() {
        loop {
            let mut improved = false;
            for &nb in graph.neighbors(layer, cur) {
                let d = provider.dist_to(&ctx, nb);
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    let mut visited = vec![false; graph.len()];
    visited[cur as usize] = true;
    // `results` holds only accepted vertices; `frontier` expands all.
    let mut results: BinaryHeap<(OrdF32, u32)> = BinaryHeap::with_capacity(ef + 1);
    let mut frontier: BinaryHeap<(Reverse<OrdF32>, u32)> = BinaryHeap::new();
    if accept(cur) {
        results.push((OrdF32(cur_d), cur));
    }
    frontier.push((Reverse(OrdF32(cur_d)), cur));

    while let Some((Reverse(OrdF32(d)), u)) = frontier.pop() {
        let worst = results
            .peek()
            .map(|&(OrdF32(w), _)| w)
            .unwrap_or(f32::INFINITY);
        if d > worst && results.len() >= ef {
            break;
        }
        for &nb in graph.neighbors(0, u) {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            let nd = provider.dist_to(&ctx, nb);
            let worst = results
                .peek()
                .map(|&(OrdF32(w), _)| w)
                .unwrap_or(f32::INFINITY);
            if results.len() < ef || nd <= worst {
                if accept(nb) {
                    results.push((OrdF32(nd), nb));
                    if results.len() > ef {
                        results.pop();
                    }
                }
                frontier.push((Reverse(OrdF32(nd)), nb));
            }
        }
    }

    let mut out: Vec<Hit> = results
        .into_iter()
        .map(|(OrdF32(dist), id)| Hit {
            id: u64::from(id),
            dist,
        })
        .collect();
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    out.truncate(k);
    out
}

/// [`search_layers`] followed by exact reranking on the provider's raw
/// vectors (the paper's Flash search pipeline).
pub fn search_layers_rerank<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    query: &[f32],
    k: usize,
    ef: usize,
    rerank_factor: usize,
) -> Vec<Hit> {
    let pool = search_layers(
        provider,
        graph,
        query,
        (k * rerank_factor.max(1)).max(k),
        ef,
    );
    crate::rerank_exact(provider.base(), query, pool, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::{Hnsw, HnswParams};
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    #[test]
    fn frozen_search_matches_live_search() {
        let base = grid(12);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 5,
            },
        );
        let frozen = index.freeze();
        let provider = FullPrecision::new(base);
        for q in [[3.2f32, 7.1], [0.1, 0.1], [11.0, 11.0], [5.5, 5.5]] {
            let live: Vec<u64> = index.search(&q, 5, 48).iter().map(|r| r.id).collect();
            let cold: Vec<u64> = search_layers(&provider, &frozen, &q, 5, 48)
                .iter()
                .map(|r| r.id)
                .collect();
            assert_eq!(live, cold, "query {q:?}");
        }
    }

    #[test]
    fn empty_graph_returns_nothing() {
        let g = GraphLayers {
            layers: vec![vec![]],
            entry: 0,
            max_layer: 0,
        };
        let provider = FullPrecision::new(VectorSet::new(2));
        assert!(search_layers(&provider, &g, &[0.0, 0.0], 3, 8).is_empty());
    }

    #[test]
    fn rerank_orders_exactly() {
        let base = grid(9);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 32,
                r: 8,
                seed: 9,
            },
        );
        let frozen = index.freeze();
        let provider = FullPrecision::new(base);
        let hits = search_layers_rerank(&provider, &frozen, &[4.4, 4.4], 4, 32, 3);
        assert_eq!(hits[0].id, 4 * 9 + 4);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }
}
