//! Standard HNSW beam search over a frozen [`GraphLayers`] topology.
//!
//! [`crate::Hnsw::search`] traverses the index's internal locked node
//! records; this module provides the same search over the *persisted*
//! representation ([`GraphLayers`], the format `persist` writes), so a
//! topology built overnight can be reloaded and served without carrying
//! the builder's data structures — the deployment the paper's maintenance
//! scenario implies. Any [`DistanceProvider`] works: rebuild the provider
//! deterministically from the dataset (codecs re-train/encode from the
//! same seed) and pair it with the loaded graph.
//!
//! The kernel is allocation-free in steady state: per-query state lives in
//! a pooled [`crate::scratch::SearchScratch`], and each expanded candidate's
//! unvisited neighbors are scored as one block through
//! [`DistanceProvider::dist_to_neighbors`] (register-resident LUT lookups on
//! the Flash path) while the next candidate's data is prefetched. Results
//! are bit-identical to the naive per-neighbor loop: gathering first and
//! scoring second changes neither the visit order nor any admission
//! decision, because distances carry no side effects.

use crate::graph::GraphLayers;
use crate::provider::DistanceProvider;
use crate::scratch::{with_scratch, SearchScratch};
use crate::Hit;
use crate::OrdF32;
use metrics::QueryProfile;
use std::cmp::Reverse;

/// Splits `n` distance evaluations coded-vs-exact with the provider's
/// hoisted `coded()` flag (`cf ∈ {0, 1}`) — a multiply instead of a
/// branch, so the profile costs nothing on the beam's hot loop.
#[inline]
fn add_evals(profile: &mut QueryProfile, n: u64, cf: u64) {
    profile.dist_coded += n * cf;
    profile.dist_exact += n * (1 - cf);
}

/// k-NN beam search (greedy upper-layer descent, `ef`-wide base beam)
/// over a frozen topology.
pub fn search_layers<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    query: &[f32],
    k: usize,
    ef: usize,
) -> Vec<Hit> {
    // The filtered beam with an accept-all predicate *is* the plain beam:
    // every admitted vertex enters the result set, so the two loops are
    // identical. Delegating keeps one copy of the descent + beam.
    search_layers_filtered(provider, graph, query, k, ef, &|_| true)
}

/// Greedy descent through the upper layers, scoring each neighbor row as
/// one block. Returns the layer-0 entry candidate and its distance.
pub(crate) fn descend<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    ctx: &P::QueryCtx,
    scratch: &mut SearchScratch<P::NodePayload>,
) -> (u32, f32) {
    let cf = provider.coded() as u64;
    let mut cur = graph.entry;
    let mut cur_d = provider.dist_to(ctx, cur);
    add_evals(&mut scratch.profile, 1, cf);
    for layer in (1..=graph.max_layer).rev() {
        loop {
            let row = graph.neighbors(layer, cur);
            if row.is_empty() {
                break;
            }
            scratch.ids.clear();
            scratch.ids.extend_from_slice(row);
            provider.sync_payload(&mut scratch.payload, &scratch.ids);
            provider.dist_to_neighbors(ctx, &scratch.ids, &scratch.payload, &mut scratch.dists);
            scratch.profile.hops_upper += 1;
            scratch.profile.rows_scored += 1;
            scratch.profile.codeword_bytes += provider.payload_bytes(row.len()) as u64;
            add_evals(&mut scratch.profile, row.len() as u64, cf);
            let mut improved = false;
            for (&nb, &d) in scratch.ids.iter().zip(&scratch.dists) {
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }
    (cur, cur_d)
}

/// k-NN beam search over a frozen topology restricted to vectors accepted
/// by `accept` (the frozen-graph counterpart of
/// [`crate::Hnsw::search_filtered`]): the beam *traverses* every vertex —
/// rejected vertices still route the search — but only accepted vertices
/// enter the result set.
pub fn search_layers_filtered<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    query: &[f32],
    k: usize,
    ef: usize,
    accept: &(dyn Fn(u32) -> bool + Sync),
) -> Vec<Hit> {
    if graph.is_empty() {
        return Vec::new();
    }
    let ef = ef.max(k).max(1);
    let ctx = provider.prepare_query(query);
    let cf = provider.coded() as u64;

    with_scratch::<P::NodePayload, _>(|scratch| {
        let (cur, cur_d) = descend(provider, graph, &ctx, scratch);

        scratch.visited.begin(graph.len());
        scratch.visited.check_and_mark(cur);
        scratch.profile.visited_inserts += 1;
        // `results` holds only accepted vertices; `frontier` expands all.
        let mut results = scratch.take_results();
        let mut frontier = scratch.take_frontier();
        if accept(cur) {
            results.push((OrdF32(cur_d), cur));
        }
        frontier.push((Reverse(OrdF32(cur_d)), cur));

        while let Some((Reverse(OrdF32(d)), u)) = frontier.pop() {
            let worst = results
                .peek()
                .map(|&(OrdF32(w), _)| w)
                .unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            // Gather the unvisited neighbors, then score them as one block.
            scratch.ids.clear();
            for &nb in graph.neighbors(0, u) {
                if !scratch.visited.check_and_mark(nb) {
                    scratch.ids.push(nb);
                }
            }
            scratch.profile.hops_base += 1;
            scratch.profile.visited_inserts += scratch.ids.len() as u64;
            if scratch.ids.is_empty() {
                continue;
            }
            // Overlap the next candidate's misses with this block's scoring.
            if let Some(&(Reverse(_), next)) = frontier.peek() {
                provider.prefetch(next);
                simdops::prefetch_slice(graph.neighbors(0, next));
            }
            provider.sync_payload(&mut scratch.payload, &scratch.ids);
            provider.dist_to_neighbors(&ctx, &scratch.ids, &scratch.payload, &mut scratch.dists);
            scratch.profile.rows_scored += 1;
            scratch.profile.codeword_bytes += provider.payload_bytes(scratch.ids.len()) as u64;
            add_evals(&mut scratch.profile, scratch.ids.len() as u64, cf);
            for (&nb, &nd) in scratch.ids.iter().zip(&scratch.dists) {
                let worst = results
                    .peek()
                    .map(|&(OrdF32(w), _)| w)
                    .unwrap_or(f32::INFINITY);
                if results.len() < ef || nd <= worst {
                    if accept(nb) {
                        results.push((OrdF32(nd), nb));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                    frontier.push((Reverse(OrdF32(nd)), nb));
                }
            }
        }

        let mut out: Vec<Hit> = results
            .drain()
            .map(|(OrdF32(dist), id)| Hit {
                id: u64::from(id),
                dist,
            })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        out.truncate(k);
        frontier.clear();
        scratch.put_results(results);
        scratch.put_frontier(frontier);
        out
    })
}

/// Per-node payload blocks for a frozen graph's base layer, built once at
/// load/freeze time — the serving-side half of the paper's access-aware
/// layout (Section 3.3.4). [`search_layers`] must rebuild the expanded
/// node's codeword block from the global code table on every expansion
/// (the frozen topology stores adjacency only); with a sidecar the block
/// is a plain read, so steady-state serving does no layout work at all.
pub struct NodePayloads<PL> {
    rows: Vec<PL>,
}

impl<PL: Default> NodePayloads<PL> {
    /// Builds the base-layer payload block of every node.
    pub fn build<P: DistanceProvider<NodePayload = PL>>(provider: &P, graph: &GraphLayers) -> Self {
        let rows = (0..graph.len())
            .map(|node| {
                let mut payload = PL::default();
                provider.sync_payload(&mut payload, graph.neighbors(0, node as u32));
                payload
            })
            .collect();
        Self { rows }
    }

    /// The prebuilt payload block of `node`'s base-layer neighbor row.
    #[inline]
    pub fn row(&self, node: u32) -> &PL {
        &self.rows[node as usize]
    }

    /// Number of node rows covered.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// [`search_layers`] over prebuilt [`NodePayloads`]: identical `(dist, id)`
/// results, but each expansion scores its *whole* neighbor row against the
/// node's resident block instead of gathering unvisited ids and rebuilding
/// a block for them. Scoring already-visited lanes is redundant work, but
/// it is batched SIMD work on data the expansion touches anyway — cheaper
/// than the per-expansion gather + block rebuild it replaces. Bit-exact
/// because distances carry no side effects and the admission loop walks
/// the row in order, skipping visited lanes exactly where the gathering
/// kernel never queued them.
pub fn search_layers_cached<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    payloads: &NodePayloads<P::NodePayload>,
    query: &[f32],
    k: usize,
    ef: usize,
) -> Vec<Hit> {
    if graph.is_empty() {
        return Vec::new();
    }
    let ef = ef.max(k).max(1);
    let ctx = provider.prepare_query(query);
    let cf = provider.coded() as u64;

    with_scratch::<P::NodePayload, _>(|scratch| {
        let (cur, cur_d) = descend(provider, graph, &ctx, scratch);

        scratch.visited.begin(graph.len());
        scratch.visited.check_and_mark(cur);
        scratch.profile.visited_inserts += 1;
        let mut results = scratch.take_results();
        let mut frontier = scratch.take_frontier();
        results.push((OrdF32(cur_d), cur));
        frontier.push((Reverse(OrdF32(cur_d)), cur));

        while let Some((Reverse(OrdF32(d)), u)) = frontier.pop() {
            let worst = results
                .peek()
                .map(|&(OrdF32(w), _)| w)
                .unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            let row = graph.neighbors(0, u);
            if row.is_empty() {
                continue;
            }
            if let Some(&(Reverse(_), next)) = frontier.peek() {
                provider.prefetch(next);
                simdops::prefetch_slice(graph.neighbors(0, next));
            }
            provider.dist_to_neighbors(&ctx, row, payloads.row(u), &mut scratch.dists);
            // Whole-row scoring: every lane is evaluated, visited or not,
            // and the prebuilt block is read in full.
            scratch.profile.hops_base += 1;
            scratch.profile.rows_scored += 1;
            scratch.profile.codeword_bytes += provider.payload_bytes(row.len()) as u64;
            add_evals(&mut scratch.profile, row.len() as u64, cf);
            for (&nb, &nd) in row.iter().zip(&scratch.dists) {
                if scratch.visited.check_and_mark(nb) {
                    continue;
                }
                scratch.profile.visited_inserts += 1;
                let worst = results
                    .peek()
                    .map(|&(OrdF32(w), _)| w)
                    .unwrap_or(f32::INFINITY);
                if results.len() < ef || nd <= worst {
                    results.push((OrdF32(nd), nb));
                    if results.len() > ef {
                        results.pop();
                    }
                    frontier.push((Reverse(OrdF32(nd)), nb));
                }
            }
        }

        let mut out: Vec<Hit> = results
            .drain()
            .map(|(OrdF32(dist), id)| Hit {
                id: u64::from(id),
                dist,
            })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        out.truncate(k);
        frontier.clear();
        scratch.put_results(results);
        scratch.put_frontier(frontier);
        out
    })
}

/// [`search_layers`] followed by exact reranking on the provider's raw
/// vectors (the paper's Flash search pipeline).
pub fn search_layers_rerank<P: DistanceProvider>(
    provider: &P,
    graph: &GraphLayers,
    query: &[f32],
    k: usize,
    ef: usize,
    rerank_factor: usize,
) -> Vec<Hit> {
    let pool = search_layers(
        provider,
        graph,
        query,
        (k * rerank_factor.max(1)).max(k),
        ef,
    );
    crate::rerank_exact(provider.base(), query, pool, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::{Hnsw, HnswParams};
    use crate::providers::FullPrecision;
    use vecstore::VectorSet;

    fn grid(side: usize) -> VectorSet {
        let mut s = VectorSet::new(2);
        for i in 0..side {
            for j in 0..side {
                s.push(&[i as f32, j as f32]);
            }
        }
        s
    }

    #[test]
    fn frozen_search_matches_live_search() {
        let base = grid(12);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 5,
            },
        );
        let frozen = index.freeze();
        let provider = FullPrecision::new(base);
        for q in [[3.2f32, 7.1], [0.1, 0.1], [11.0, 11.0], [5.5, 5.5]] {
            let live: Vec<u64> = index.search(&q, 5, 48).iter().map(|r| r.id).collect();
            let cold: Vec<u64> = search_layers(&provider, &frozen, &q, 5, 48)
                .iter()
                .map(|r| r.id)
                .collect();
            assert_eq!(live, cold, "query {q:?}");
        }
    }

    #[test]
    fn cached_payloads_match_plain_search() {
        let base = grid(11);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 48,
                r: 8,
                seed: 3,
            },
        );
        let frozen = index.freeze();
        let provider = FullPrecision::new(base);
        let payloads = NodePayloads::build(&provider, &frozen);
        assert_eq!(payloads.len(), frozen.len());
        for q in [[2.3f32, 8.8], [0.0, 10.9], [5.5, 5.4], [10.1, 0.2]] {
            let plain = search_layers(&provider, &frozen, &q, 6, 40);
            let cached = search_layers_cached(&provider, &frozen, &payloads, &q, 6, 40);
            assert_eq!(plain.len(), cached.len(), "query {q:?}");
            for (a, b) in plain.iter().zip(&cached) {
                assert_eq!((a.id, a.dist), (b.id, b.dist), "query {q:?}");
            }
        }
    }

    #[test]
    fn empty_graph_returns_nothing() {
        let g = GraphLayers::from_nested(vec![vec![]], 0, 0);
        let provider = FullPrecision::new(VectorSet::new(2));
        assert!(search_layers(&provider, &g, &[0.0, 0.0], 3, 8).is_empty());
    }

    #[test]
    fn rerank_orders_exactly() {
        let base = grid(9);
        let index = Hnsw::build(
            FullPrecision::new(base.clone()),
            HnswParams {
                c: 32,
                r: 8,
                seed: 9,
            },
        );
        let frozen = index.freeze();
        let provider = FullPrecision::new(base);
        let hits = search_layers_rerank(&provider, &frozen, &[4.4, 4.4], 4, 32, 3);
        assert_eq!(hits[0].id, 4 * 9 + 4);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }
}
