//! Graph-based ANNS algorithms with pluggable distance computation.
//!
//! Every graph method the paper touches — HNSW, NSG, τ-MG — shares the same
//! construction skeleton (Section 2.1.1): **Candidate Acquisition** (CA,
//! a greedy beam search collecting the top-`C` candidates for each inserted
//! vertex) followed by **Neighbor Selection** (NS, a pruning heuristic that
//! keeps at most `R` diverse neighbors). Distance computation inside CA and
//! NS is the 90 %+ cost the paper attacks, so this crate routes *every*
//! distance through the [`DistanceProvider`] trait:
//!
//! * [`providers::FullPrecision`] — the standard float path (baseline HNSW);
//! * [`providers::PqProvider`] — HNSW-PQ (ADC in CA, SDC in NS);
//! * [`providers::SqProvider`] — HNSW-SQ (integer codes);
//! * [`providers::PcaProvider`] — HNSW-PCA (projected vectors);
//! * `flash::FlashProvider` (in the `flash` crate) — the paper's method,
//!   which additionally overrides the *batched* neighbor-distance hook and
//!   maintains per-node codeword blocks through [`DistanceProvider::sync_payload`].
//!
//! Search-side optimizations evaluated in the paper's Figure 13 live in
//! [`adsampling`] and [`vbase`]; both operate on an already-built
//! [`GraphLayers`] and are orthogonal to the construction path.

pub mod adsampling;
pub mod filtered;
pub mod flat_build;
pub mod graph;
pub mod hcnng;
pub mod hnsw;
pub mod kgraph;
pub mod layers_search;
pub mod nsg;
pub mod persist;
pub mod provider;
pub mod providers;
pub mod scratch;
pub mod stats;
pub mod taumg;
pub mod vamana;
pub mod vbase;
mod visited;

pub use filtered::{LabeledHnsw, LabeledParams};
pub use graph::{CsrLayer, FlatGraph, GraphLayers, LINE_U32S};
pub use hcnng::{Hcnng, HcnngParams};
pub use hnsw::{Hnsw, HnswParams};
pub use kgraph::{KGraph, KGraphParams};
pub use layers_search::{
    search_layers, search_layers_cached, search_layers_filtered, search_layers_rerank, NodePayloads,
};
pub use metrics::QueryProfile;
pub use nsg::{Nsg, NsgParams};
pub use provider::DistanceProvider;
pub use scratch::{
    profile_record, profile_reset, profile_take, register_scratch_metrics, scratch_stats,
    scratch_stats_global, ScratchStats,
};
pub use taumg::{TauMg, TauMgParams};
pub use vamana::{Vamana, VamanaParams};

/// One search hit: a database vector id and its distance to the query.
///
/// This is the **single result type of the whole workspace**: every graph
/// search in this crate, the LSM maintenance layer, and the `engine`
/// serving API return it (it used to be split into `graphs::SearchResult`
/// with `u32` ids and `maintenance::Hit` with `u64` ids). Ids are `u64` so
/// externally-stable LSM ids and in-graph positional ids share one type;
/// in-graph ids always fit, since graphs address vertices with `u32`.
///
/// Every search path returns hits sorted ascending by `(dist, id)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Database vector id (graph-positional, or the stable external id for
    /// LSM searches).
    pub id: u64,
    /// Distance reported by the search path (squared L2; approximate for
    /// compressed providers unless reranked).
    pub dist: f32,
}

/// Deprecated alias for [`Hit`], kept so pre-engine call sites and the
/// paper-figure binaries keep compiling. New code should name [`Hit`]
/// (also re-exported as `engine::Hit`).
#[deprecated(note = "renamed to `Hit` (re-exported as `engine::Hit`)")]
pub type SearchResult = Hit;

/// Exact rerank shared by every search path in the workspace: rescore
/// `pool` with full-precision squared-L2 distances against `base`, sort
/// ascending by `(dist, id)`, and keep the best `k`. Centralized here so
/// the legacy inherent `search_rerank` methods, the frozen-topology
/// serving path, and the `engine` crate all share one formula.
pub fn rerank_exact(
    base: &vecstore::VectorSet,
    query: &[f32],
    pool: Vec<Hit>,
    k: usize,
) -> Vec<Hit> {
    scratch::profile_record(QueryProfile {
        dist_exact: pool.len() as u64,
        rerank_pool: pool.len() as u64,
        ..QueryProfile::new()
    });
    let mut exact: Vec<Hit> = pool
        .into_iter()
        .map(|h| Hit {
            id: h.id,
            dist: simdops::l2_sq(query, base.get(h.id as usize)),
        })
        .collect();
    exact.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    exact.truncate(k);
    exact
}

/// `f32` wrapper with a total order (via `f32::total_cmp`) so distances can
/// live in heaps. NaNs sort greatest; construction never produces them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF32(pub f32);

impl Eq for OrdF32 {}

impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf32_orders_like_floats() {
        let mut v = vec![OrdF32(3.0), OrdF32(-1.0), OrdF32(0.5)];
        v.sort();
        assert_eq!(v, vec![OrdF32(-1.0), OrdF32(0.5), OrdF32(3.0)]);
    }

    #[test]
    fn ordf32_handles_infinities() {
        assert!(OrdF32(f32::NEG_INFINITY) < OrdF32(0.0));
        assert!(OrdF32(f32::INFINITY) > OrdF32(1e30));
    }
}
